//! Automatic design-space exploration.
//!
//! The paper's methodology pitch is that "a variety of micro architectures
//! can be rapidly explored". This module automates the exploration the
//! paper's designer did by hand: sweep unroll factors (and optionally the
//! merge policy) over every loop, synthesize each point, and keep the
//! latency/area Pareto frontier.
//!
//! Three throughput levers keep large sweeps rapid:
//!
//! - **Memoization** — candidates are keyed by their canonicalized
//!   [`Directives`], so duplicate knob settings (common once per-loop
//!   refinement overlaps the uniform sweep) synthesize once.
//! - **Prefix memoization** — the loop-transform prefix of the pipeline
//!   depends only on the merge policy and loop directives, not on the
//!   clock, mappings or FU limits. Candidates sharing that prefix (every
//!   point of a clock sweep, notably) transform once and reuse the result
//!   through the pass manager's seeded transform pass.
//! - **Parallel evaluation** — with the `parallel` feature (on by
//!   default), unique candidates are synthesized across all available
//!   cores via scoped threads. Results are keyed by candidate index, so
//!   point order, failure order and the Pareto frontier are identical to
//!   the serial path ([`explore_serial`]) regardless of thread timing.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::directives::{Directives, MergePolicy, Unroll};
use crate::error::SynthesisError;
use crate::pipeline::{synthesize_traced_with_transform, PipelineConfig};
use crate::synthesize::synthesize;
use crate::tech::TechLibrary;
use crate::transform::{apply_loop_transforms, TransformResult};
use hls_ir::Function;

/// One explored design point.
#[derive(Debug, Clone)]
pub struct DesignPoint {
    /// The directives that produced it.
    pub directives: Directives,
    /// Human-readable description of the knob settings.
    pub label: String,
    /// Latency in cycles.
    pub latency_cycles: u64,
    /// Area (abstract units).
    pub area: f64,
}

impl DesignPoint {
    /// `true` if `self` dominates `other` (no worse on both axes, better on
    /// at least one).
    pub fn dominates(&self, other: &DesignPoint) -> bool {
        (self.latency_cycles <= other.latency_cycles && self.area <= other.area)
            && (self.latency_cycles < other.latency_cycles || self.area < other.area)
    }
}

/// How much of an explored design space to equivalence-check.
///
/// The checker itself lives downstream (the `hls-verify` crate proves or
/// fuzzes IR↔FSMD equivalence); this crate only carries the policy and the
/// [`explore_with_check`] hook so exploration results can be gated without
/// a dependency cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyLevel {
    /// No equivalence checking (the historical behavior).
    #[default]
    Off,
    /// Check only the latency/area Pareto frontier — the points a designer
    /// would actually pick.
    Pareto,
    /// Check every unique feasible point.
    All,
}

/// Exploration configuration.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Clock period for every point.
    pub clock_period_ns: f64,
    /// Additional clock periods to sweep. Empty (the default) means only
    /// [`ExploreConfig::clock_period_ns`] is explored; non-empty replaces
    /// it with this list. Points of a clock sweep share their
    /// loop-transform prefix, which runs once per unique knob setting.
    pub clock_periods_ns: Vec<f64>,
    /// Unroll factors to try per loop (1 = rolled). The sweep applies one
    /// factor to *all* loops of trip count ≥ factor per point, plus the
    /// per-loop refinements below.
    pub unroll_factors: Vec<u32>,
    /// Merge policies to try.
    pub merge_policies: Vec<MergePolicy>,
    /// Also try per-loop unrolling of each individual loop (on top of the
    /// uniform sweep) — finds asymmetric winners like the paper's fourth
    /// architecture.
    pub per_loop_refinement: bool,
    /// Which explored points [`explore_with_check`] equivalence-checks.
    /// Plain [`explore`]/[`explore_serial`] ignore this (they have no
    /// checker to run).
    pub verify: VerifyLevel,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            clock_period_ns: 10.0,
            clock_periods_ns: Vec::new(),
            unroll_factors: vec![1, 2, 4],
            merge_policies: vec![MergePolicy::Off, MergePolicy::AllowHazards],
            per_loop_refinement: true,
            verify: VerifyLevel::Off,
        }
    }
}

/// The exploration outcome.
#[derive(Debug, Clone)]
pub struct ExploreResult {
    /// Every feasible point evaluated, in candidate-generation order.
    pub points: Vec<DesignPoint>,
    /// Points that failed to synthesize, with their errors.
    pub failures: Vec<(String, SynthesisError)>,
    /// Unique directive sets actually synthesized (candidates whose
    /// canonicalized directives matched an earlier candidate reused its
    /// memoized result instead).
    pub evaluations: usize,
    /// Unique loop-transform prefixes actually computed. Candidates that
    /// differ only in clock, mappings or FU limits share one transform
    /// (see the module docs), so this is ≤ [`ExploreResult::evaluations`].
    pub transform_evaluations: usize,
    /// Points that synthesized but *failed the equivalence check*, as
    /// `(label, diagnosis)`. Always empty unless the result came from
    /// [`explore_with_check`] with [`ExploreConfig::verify`] enabled.
    pub verify_failures: Vec<(String, String)>,
}

impl ExploreResult {
    /// The latency/area Pareto frontier, sorted by latency.
    pub fn pareto(&self) -> Vec<&DesignPoint> {
        let mut frontier: Vec<&DesignPoint> = self
            .points
            .iter()
            .filter(|p| !self.points.iter().any(|q| q.dominates(p)))
            .collect();
        frontier.sort_by_key(|p| (p.latency_cycles, p.area as u64));
        frontier.dedup_by(|a, b| a.latency_cycles == b.latency_cycles && a.area == b.area);
        frontier
    }

    /// The fastest feasible point.
    pub fn fastest(&self) -> Option<&DesignPoint> {
        self.points.iter().min_by_key(|p| p.latency_cycles)
    }

    /// The smallest feasible point.
    pub fn smallest(&self) -> Option<&DesignPoint> {
        self.points
            .iter()
            .min_by(|a, b| a.area.partial_cmp(&b.area).expect("finite areas"))
    }
}

/// A canonical, order-independent rendering of a directive set, used as
/// the memo-cache key. The maps inside [`Directives`] are `BTreeMap`s, so
/// their debug rendering is already sorted; the clock is keyed by its
/// exact bit pattern rather than a rounded decimal.
fn canonical_key(d: &Directives) -> String {
    format!(
        "clk={:016x};merge={:?};loops={:?};arrays={:?};ifs={:?};fu={:?}",
        d.clock_period_ns.to_bits(),
        d.merge_policy,
        d.loops,
        d.arrays,
        d.interfaces,
        d.fu_limits,
    )
}

/// The part of a directive set the loop-transform prefix depends on.
/// Candidates sharing this key transform identically regardless of clock,
/// array/interface mappings or FU limits.
fn transform_key(d: &Directives) -> String {
    format!("merge={:?};loops={:?}", d.merge_policy, d.loops)
}

/// The latency/area outcome of synthesizing one unique directive set.
type JobOutcome = Result<(u64, f64), SynthesisError>;

/// One unique directive set to synthesize, with its (optionally) shared
/// precomputed transform prefix.
struct Job<'a> {
    directives: &'a Directives,
    transformed: Option<Arc<TransformResult>>,
}

fn run_job(func: &Function, job: &Job<'_>, lib: &TechLibrary) -> JobOutcome {
    let result = match &job.transformed {
        Some(t) => {
            synthesize_traced_with_transform(
                func,
                job.directives,
                lib,
                &PipelineConfig::default(),
                Arc::clone(t),
            )
            .0
        }
        None => synthesize(func, job.directives, lib),
    };
    result.map(|r| (r.metrics.latency_cycles, r.metrics.area))
}

fn run_jobs_serial(func: &Function, jobs: &[Job<'_>], lib: &TechLibrary) -> Vec<JobOutcome> {
    jobs.iter().map(|d| run_job(func, d, lib)).collect()
}

/// Evaluates the unique jobs across all available cores with scoped
/// threads. A shared atomic cursor hands out job indices; each outcome is
/// stored at its job's slot, so the returned order (and everything derived
/// from it) is independent of scheduling.
#[cfg(feature = "parallel")]
fn run_jobs_parallel(func: &Function, jobs: &[Job<'_>], lib: &TechLibrary) -> Vec<JobOutcome> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(jobs.len());
    if workers <= 1 {
        return run_jobs_serial(func, jobs, lib);
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<JobOutcome>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(d) = jobs.get(i) else { break };
                let outcome = run_job(func, d, lib);
                *slots[i].lock().expect("no panics hold this lock") = Some(outcome);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("worker finished")
                .expect("every job ran")
        })
        .collect()
}

fn candidates_for(func: &Function, config: &ExploreConfig) -> Vec<(String, Directives)> {
    let labels = func.loop_labels();
    let clocks: Vec<f64> = if config.clock_periods_ns.is_empty() {
        vec![config.clock_period_ns]
    } else {
        config.clock_periods_ns.clone()
    };
    let sweep = clocks.len() > 1;
    let mut candidates: Vec<(String, Directives)> = Vec::new();

    for &clk in &clocks {
        let suffix = if sweep {
            format!(" @{clk}ns")
        } else {
            String::new()
        };
        for &policy in &config.merge_policies {
            for &u in &config.unroll_factors {
                let mut d = Directives::new(clk).merge_policy(policy);
                if u > 1 {
                    for l in &labels {
                        d = d.unroll(l, Unroll::Factor(u));
                    }
                }
                candidates.push((format!("{policy:?} U{u} (all loops){suffix}"), d));
                if config.per_loop_refinement && u > 1 {
                    for target in &labels {
                        let d = Directives::new(clk)
                            .merge_policy(policy)
                            .unroll(target, Unroll::Factor(u));
                        candidates.push((format!("{policy:?} U{u} ({target}){suffix}"), d));
                    }
                }
            }
        }
    }
    candidates
}

fn explore_impl(
    func: &Function,
    config: &ExploreConfig,
    lib: &TechLibrary,
    parallel: bool,
) -> ExploreResult {
    let candidates = candidates_for(func, config);

    // Memoize: map every candidate to a unique job; duplicate knob
    // settings synthesize once and share the outcome.
    let mut uniques: Vec<&Directives> = Vec::new();
    let mut job_of_key: BTreeMap<String, usize> = BTreeMap::new();
    let job_of_candidate: Vec<usize> = candidates
        .iter()
        .map(|(_, d)| {
            *job_of_key.entry(canonical_key(d)).or_insert_with(|| {
                uniques.push(d);
                uniques.len() - 1
            })
        })
        .collect();

    // Prefix memoization: precompute one transform per unique
    // (merge policy, loop directives) combination, deterministically and
    // before the parallel fan-out, and share it across the jobs (clock
    // sweeps hit this hard: every clock reuses the same prefix). Skipped
    // when the IR is invalid — the pipeline's validate pass must report
    // that, and transforms assume validated IR.
    let mut transforms: BTreeMap<String, Arc<TransformResult>> = BTreeMap::new();
    if hls_ir::validate(func).is_empty() {
        for d in &uniques {
            transforms
                .entry(transform_key(d))
                .or_insert_with(|| Arc::new(apply_loop_transforms(func, d)));
        }
    }
    let transform_evaluations = transforms.len();

    let jobs: Vec<Job<'_>> = uniques
        .iter()
        .map(|d| Job {
            directives: d,
            transformed: transforms.get(&transform_key(d)).map(Arc::clone),
        })
        .collect();

    // Without the `parallel` feature the parallel path degrades to serial.
    #[cfg(not(feature = "parallel"))]
    use run_jobs_serial as run_jobs_parallel;

    let outcomes = if parallel {
        run_jobs_parallel(func, &jobs, lib)
    } else {
        run_jobs_serial(func, &jobs, lib)
    };
    let evaluations = jobs.len();

    let mut points = Vec::new();
    let mut failures = Vec::new();
    for ((label, d), job) in candidates.into_iter().zip(job_of_candidate) {
        match &outcomes[job] {
            Ok((latency_cycles, area)) => points.push(DesignPoint {
                directives: d,
                label,
                latency_cycles: *latency_cycles,
                area: *area,
            }),
            Err(e) => failures.push((label, e.clone())),
        }
    }
    ExploreResult {
        points,
        failures,
        evaluations,
        transform_evaluations,
        verify_failures: Vec::new(),
    }
}

/// Explores the design space of `func` under `config`.
///
/// With the `parallel` feature (enabled by default) candidates are
/// synthesized across all available cores; the result is deterministic
/// and identical to [`explore_serial`] either way.
pub fn explore(func: &Function, config: &ExploreConfig, lib: &TechLibrary) -> ExploreResult {
    explore_impl(func, config, lib, true)
}

/// Explores on the current thread only — the single-threaded reference
/// path for [`explore`], independent of the `parallel` feature.
pub fn explore_serial(func: &Function, config: &ExploreConfig, lib: &TechLibrary) -> ExploreResult {
    explore_impl(func, config, lib, false)
}

/// An equivalence checker for one design point: `Ok(())` if the
/// synthesized design provably (or empirically) implements `func` under
/// the given directives, `Err(diagnosis)` otherwise.
///
/// The real implementation lives in the `hls-verify` crate (which depends
/// on this one and on the RTL backend); keeping only the function shape
/// here avoids a dependency cycle.
pub type EquivChecker<'a> = dyn Fn(&Function, &Directives, &TechLibrary) -> Result<(), String> + 'a;

/// [`explore`], then equivalence-check the points selected by
/// [`ExploreConfig::verify`] using `check`. Failures land in
/// [`ExploreResult::verify_failures`]; the points themselves are kept so
/// callers can still see *what* was wrong with the frontier.
///
/// Checked directive sets are deduplicated by the same canonical key as
/// the synthesis memo cache, so a frontier full of memo-aliases costs one
/// check.
pub fn explore_with_check(
    func: &Function,
    config: &ExploreConfig,
    lib: &TechLibrary,
    check: &EquivChecker,
) -> ExploreResult {
    let mut result = explore(func, config, lib);
    let targets: Vec<(String, Directives)> = match config.verify {
        VerifyLevel::Off => Vec::new(),
        VerifyLevel::Pareto => result
            .pareto()
            .iter()
            .map(|p| (p.label.clone(), p.directives.clone()))
            .collect(),
        VerifyLevel::All => result
            .points
            .iter()
            .map(|p| (p.label.clone(), p.directives.clone()))
            .collect(),
    };
    let mut checked: BTreeMap<String, Result<(), String>> = BTreeMap::new();
    for (label, d) in targets {
        let outcome = checked
            .entry(canonical_key(&d))
            .or_insert_with(|| check(func, &d, lib));
        if let Err(msg) = outcome {
            result.verify_failures.push((label, msg.clone()));
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::{CmpOp, Expr, FunctionBuilder, Ty};

    fn two_loops() -> Function {
        let mut b = FunctionBuilder::new("t");
        let x = b.param_array("x", Ty::fixed(10, 0), 8);
        let y = b.param_array("y", Ty::fixed(10, 0), 16);
        let out = b.param_scalar("out", Ty::fixed(20, 6));
        let a1 = b.local("a1", Ty::fixed(20, 6));
        let a2 = b.local("a2", Ty::fixed(20, 6));
        b.assign(a1, Expr::int_const(0));
        b.for_loop("l1", 0, CmpOp::Lt, 8, 1, |b, k| {
            b.assign(a1, Expr::add(Expr::var(a1), Expr::load(x, Expr::var(k))));
        });
        b.assign(a2, Expr::int_const(0));
        b.for_loop("l2", 0, CmpOp::Lt, 16, 1, |b, k| {
            b.assign(a2, Expr::add(Expr::var(a2), Expr::load(y, Expr::var(k))));
        });
        b.assign(out, Expr::add(Expr::var(a1), Expr::var(a2)));
        b.build()
    }

    #[test]
    fn exploration_finds_points_and_frontier() {
        let f = two_loops();
        let r = explore(&f, &ExploreConfig::default(), &TechLibrary::asic_100mhz());
        assert!(r.points.len() >= 6, "{} points", r.points.len());
        let pareto = r.pareto();
        assert!(!pareto.is_empty());
        // Frontier is sorted by latency and strictly improving in area.
        for w in pareto.windows(2) {
            assert!(w[0].latency_cycles <= w[1].latency_cycles);
            assert!(w[0].area >= w[1].area, "frontier must trade area for speed");
        }
        // The fastest point is on the frontier.
        let fastest = r.fastest().expect("points exist");
        assert!(pareto
            .iter()
            .any(|p| p.latency_cycles == fastest.latency_cycles));
    }

    #[test]
    fn dominance_is_strict() {
        let a = DesignPoint {
            directives: Directives::new(10.0),
            label: "a".into(),
            latency_cycles: 10,
            area: 100.0,
        };
        let b = DesignPoint {
            latency_cycles: 10,
            area: 100.0,
            label: "b".into(),
            ..a.clone()
        };
        assert!(!a.dominates(&b), "equal points do not dominate");
        let c = DesignPoint {
            latency_cycles: 9,
            area: 100.0,
            label: "c".into(),
            ..a.clone()
        };
        assert!(c.dominates(&a));
        assert!(!a.dominates(&c));
    }

    #[test]
    fn parallel_exploration_matches_serial_exactly() {
        let f = two_loops();
        let cfg = ExploreConfig::default();
        let lib = TechLibrary::asic_100mhz();
        let par = explore(&f, &cfg, &lib);
        let ser = explore_serial(&f, &cfg, &lib);
        assert_eq!(par.points.len(), ser.points.len());
        for (p, s) in par.points.iter().zip(&ser.points) {
            assert_eq!(p.label, s.label);
            assert_eq!(p.latency_cycles, s.latency_cycles);
            assert_eq!(p.area, s.area);
            assert_eq!(p.directives, s.directives);
        }
        assert_eq!(par.failures.len(), ser.failures.len());
        assert_eq!(par.evaluations, ser.evaluations);
        assert_eq!(par.transform_evaluations, ser.transform_evaluations);
        // Identical points imply an identical Pareto frontier.
        let fp: Vec<_> = par
            .pareto()
            .iter()
            .map(|p| (p.latency_cycles, p.area))
            .collect();
        let fs: Vec<_> = ser
            .pareto()
            .iter()
            .map(|p| (p.latency_cycles, p.area))
            .collect();
        assert_eq!(fp, fs);
    }

    #[test]
    fn duplicate_directives_synthesize_once() {
        // With a single loop, "U=n on all loops" and "U=n on l1" are the
        // same directive set — the memo cache must collapse them.
        let mut b = FunctionBuilder::new("one");
        let x = b.param_array("x", Ty::fixed(10, 0), 8);
        let out = b.param_scalar("out", Ty::fixed(16, 6));
        let acc = b.local("acc", Ty::fixed(16, 6));
        b.assign(acc, Expr::int_const(0));
        b.for_loop("l1", 0, CmpOp::Lt, 8, 1, |b, k| {
            b.assign(acc, Expr::add(Expr::var(acc), Expr::load(x, Expr::var(k))));
        });
        b.assign(out, Expr::var(acc));
        let f = b.build();
        let r = explore(&f, &ExploreConfig::default(), &TechLibrary::asic_100mhz());
        let total = r.points.len() + r.failures.len();
        assert!(
            r.evaluations < total,
            "expected memo hits: {} evaluations for {} candidates",
            r.evaluations,
            total
        );
        // Duplicates share the memoized outcome bit for bit.
        let all = r
            .points
            .iter()
            .find(|p| p.label.contains("all loops") && p.label.contains("U2"));
        let one = r
            .points
            .iter()
            .find(|p| p.label.contains("(l1)") && p.label.contains("U2"));
        let (all, one) = (all.expect("uniform point"), one.expect("refined point"));
        assert_eq!(all.latency_cycles, one.latency_cycles);
        assert_eq!(all.area, one.area);
    }

    #[test]
    fn canonical_key_ignores_insertion_order() {
        let a = Directives::new(10.0)
            .unroll("l1", Unroll::Factor(2))
            .unroll("l2", Unroll::Factor(4));
        let b = Directives::new(10.0)
            .unroll("l2", Unroll::Factor(4))
            .unroll("l1", Unroll::Factor(2));
        assert_eq!(canonical_key(&a), canonical_key(&b));
        let c = Directives::new(10.0).unroll("l1", Unroll::Factor(2));
        assert_ne!(canonical_key(&a), canonical_key(&c));
    }

    #[test]
    fn clock_sweep_shares_transform_prefixes() {
        let f = two_loops();
        let lib = TechLibrary::asic_100mhz();
        let one_clock = ExploreConfig::default();
        let swept = ExploreConfig {
            clock_periods_ns: vec![5.0, 10.0, 20.0],
            ..ExploreConfig::default()
        };
        let base = explore(&f, &one_clock, &lib);
        let r = explore(&f, &swept, &lib);
        // Three clocks triple the synthesis work but NOT the transform
        // work: the prefix memo collapses them onto one transform per
        // unique (merge, loops) combination.
        assert_eq!(r.evaluations, 3 * base.evaluations);
        assert_eq!(r.transform_evaluations, base.transform_evaluations);
        assert!(r.transform_evaluations < r.evaluations);
        // Every clock's points are present and labelled with their clock.
        for clk in ["@5ns", "@10ns", "@20ns"] {
            assert!(
                r.points.iter().any(|p| p.label.contains(clk)),
                "missing points for {clk}"
            );
        }
        // The 10 ns sweep slice agrees exactly with the single-clock run.
        for p in base.points.iter() {
            let swept_twin = r
                .points
                .iter()
                .find(|q| q.label == format!("{} @10ns", p.label))
                .expect("swept twin exists");
            assert_eq!(p.latency_cycles, swept_twin.latency_cycles);
            assert_eq!(p.area, swept_twin.area);
        }
    }

    #[test]
    fn seeded_transform_prefix_changes_no_point() {
        // The prefix memo must be invisible: points computed through the
        // seeded transform pass equal a fresh unseeded synthesis.
        let f = two_loops();
        let lib = TechLibrary::asic_100mhz();
        let r = explore(&f, &ExploreConfig::default(), &lib);
        assert!(r.transform_evaluations <= r.evaluations);
        for p in &r.points {
            let fresh = crate::synthesize::synthesize(&f, &p.directives, &lib).expect("feasible");
            assert_eq!(
                p.latency_cycles, fresh.metrics.latency_cycles,
                "{}",
                p.label
            );
            assert_eq!(p.area, fresh.metrics.area, "{}", p.label);
        }
    }

    #[test]
    fn merging_appears_on_the_frontier() {
        // For back-to-back independent loops, merging is pure win on
        // latency; the frontier must include a merged point as its fast end
        // relative to the unmerged rolled design.
        let f = two_loops();
        let cfg = ExploreConfig {
            unroll_factors: vec![1],
            merge_policies: vec![MergePolicy::Off, MergePolicy::AllowHazards],
            per_loop_refinement: false,
            ..ExploreConfig::default()
        };
        let r = explore(&f, &cfg, &TechLibrary::asic_100mhz());
        let off = r
            .points
            .iter()
            .find(|p| p.label.contains("Off"))
            .expect("off point");
        let merged = r
            .points
            .iter()
            .find(|p| p.label.contains("AllowHazards"))
            .expect("merged point");
        assert!(merged.latency_cycles < off.latency_cycles);
    }
}
