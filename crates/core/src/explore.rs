//! Automatic design-space exploration.
//!
//! The paper's methodology pitch is that "a variety of micro architectures
//! can be rapidly explored". This module automates the exploration the
//! paper's designer did by hand: sweep unroll factors (and optionally the
//! merge policy) over every loop, synthesize each point, and keep the
//! latency/area Pareto frontier.
//!
//! Sweeps come in two shapes: the classic uniform sweep (one unroll
//! factor applied to every loop, plus single-loop refinements) and the
//! combinatorial per-loop grid ([`LoopGrid`]) that crosses each loop's own
//! unroll factors and pipeline-II choices with the clock grid — the shape
//! that reaches 10k+ points on the paper's decoder.
//!
//! Five throughput levers keep large sweeps rapid:
//!
//! - **Memoization** — candidates are keyed by their canonicalized
//!   [`Directives`], so duplicate knob settings (common once per-loop
//!   refinement overlaps the uniform sweep) synthesize once.
//! - **Prefix memoization** — the loop-transform prefix of the pipeline
//!   depends only on the merge policy and loop directives, not on the
//!   clock, mappings or FU limits — and the lowering right after it is
//!   equally clock-independent. Candidates sharing that prefix (every
//!   point of a clock sweep, notably) transform *and lower* once, reusing
//!   both through the pass manager's seeded prefix passes; a clock-only
//!   twin re-runs nothing upstream of the scheduler.
//! - **Parallel evaluation** — with the `parallel` feature (on by
//!   default), unique candidates are synthesized across all available
//!   cores via scoped threads. Results are keyed by candidate index, so
//!   point order, failure order and the Pareto frontier are identical to
//!   the serial path ([`explore_serial`]) regardless of thread timing.
//! - **Branch-and-bound pruning** — with an [`ExploreBudget`], each
//!   transform prefix yields one resource-aware [`BoundProfile`]
//!   ([`crate::bound::bound_profile`]), specialized per clock into an
//!   admissible envelope of latency/area corners tracing the candidate's
//!   feasible schedule-depth trade-off. A candidate is pruned when
//!   *every* corner is strictly dominated by a completed design point:
//!   admissibility puts some corner componentwise below the candidate's
//!   actual point, so that corner's dominator strictly dominates the
//!   actual too and the Pareto frontier never loses a member. Candidates
//!   run in deterministic waves (geometrically growing, so early points
//!   start pruning while late waves amortize), pruning only consults
//!   points completed in *earlier* waves, and a per-pass cost model
//!   fitted from already-run candidates refuses to prune candidates
//!   whose modeled back-end cost is below
//!   [`ExploreBudget::min_prune_cost_ns`] (pruning something cheaper than
//!   the bound computation is a loss). Every pruned candidate records its
//!   corners and the completed points that dominated them
//!   ([`PrunedCandidate`]), and per-wave efficacy lands in
//!   [`ExploreResult::wave_stats`].
//! - **Fused synthesize + verify** — [`explore_with_check`] runs the
//!   equivalence checker *inside* the synthesis worker pool, reusing each
//!   candidate's just-built [`SynthesisResult`] instead of re-synthesizing
//!   it after the frontier is known. At [`VerifyLevel::All`] proofs
//!   overlap synthesis; at [`VerifyLevel::Pareto`] the frontier's stored
//!   results fan back out across the pool. The pre-fusion serial flow
//!   survives as [`explore_with_check_serial`] for reference benchmarks.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use crate::bound::{bound_from_profile, bound_profile, BoundProfile, DesignBound};
use crate::directives::{Directives, MergePolicy, Unroll};
use crate::error::SynthesisError;
use crate::lower::{lower, Lowered};
use crate::pipeline::{
    synthesize_traced, synthesize_traced_with_prefix, synthesize_traced_with_transform,
    PipelineConfig,
};
use crate::synthesize::SynthesisResult;
use crate::tech::TechLibrary;
use crate::transform::{apply_loop_transforms, TransformResult};
use hls_ir::Function;

/// One explored design point.
#[derive(Debug, Clone)]
pub struct DesignPoint {
    /// The directives that produced it.
    pub directives: Directives,
    /// Human-readable description of the knob settings.
    pub label: String,
    /// Latency in cycles.
    pub latency_cycles: u64,
    /// Area (abstract units).
    pub area: f64,
}

impl DesignPoint {
    /// `true` if `self` dominates `other` (no worse on both axes, better on
    /// at least one).
    pub fn dominates(&self, other: &DesignPoint) -> bool {
        (self.latency_cycles <= other.latency_cycles && self.area <= other.area)
            && (self.latency_cycles < other.latency_cycles || self.area < other.area)
    }
}

/// How much of an explored design space to equivalence-check.
///
/// The checker itself lives downstream (the `hls-verify` crate proves or
/// fuzzes IR↔FSMD equivalence); this crate only carries the policy and the
/// [`explore_with_check`] hook so exploration results can be gated without
/// a dependency cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyLevel {
    /// No equivalence checking (the historical behavior).
    #[default]
    Off,
    /// Check only the latency/area Pareto frontier — the points a designer
    /// would actually pick.
    Pareto,
    /// Check every unique feasible point.
    All,
}

/// Branch-and-bound pruning policy for [`ExploreConfig::budget`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExploreBudget {
    /// A candidate is only pruned when its *modeled* back-end cost — the
    /// mean scheduled-pass wall time per bounded operation observed so
    /// far, times the candidate's own operation count — reaches this many
    /// nanoseconds. Cheap candidates run even when dominated: skipping
    /// them saves less than the bookkeeping costs, and running them keeps
    /// the cost model fed. `0` prunes every dominated candidate (useful
    /// for deterministic tests); the default skips only candidates worth
    /// at least ~50 µs of back-end work.
    pub min_prune_cost_ns: u64,
}

impl Default for ExploreBudget {
    fn default() -> Self {
        ExploreBudget {
            min_prune_cost_ns: 50_000,
        }
    }
}

/// A per-loop grid sweep: each listed loop sweeps its *own* unroll
/// factors and pipeline-II choices, and the candidate set is the full
/// cross product of every axis (× the clock grid × the merge policies).
/// This is the combinatorial alternative to [`ExploreConfig::unroll_factors`]'
/// uniform sweep — six loops with three factors each already give 729
/// unroll assignments before clocks and policies multiply in.
///
/// Axes with an empty choice list are ignored; factor `1` and II `None`
/// are the defaults, so including them in an axis is how a grid also
/// covers the rolled/unpipelined corner.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoopGrid {
    /// Unroll factors per loop, as `(label, factors)`.
    pub unroll: Vec<(String, Vec<u32>)>,
    /// Pipeline-II choices per loop, as `(label, choices)`; `None` leaves
    /// the loop unpipelined.
    pub pipeline: Vec<(String, Vec<Option<u32>>)>,
}

impl LoopGrid {
    /// The number of candidates this grid contributes per (clock, policy)
    /// pair — the product of every non-empty axis.
    pub fn points_per_clock(&self) -> usize {
        let u: usize = self
            .unroll
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(_, v)| v.len())
            .product();
        let p: usize = self
            .pipeline
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(_, v)| v.len())
            .product();
        u * p
    }
}

/// Exploration configuration.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Clock period for every point.
    pub clock_period_ns: f64,
    /// Additional clock periods to sweep. Empty (the default) means only
    /// [`ExploreConfig::clock_period_ns`] is explored; non-empty replaces
    /// it with this list. Points of a clock sweep share their
    /// loop-transform prefix, which runs once per unique knob setting.
    pub clock_periods_ns: Vec<f64>,
    /// Unroll factors to try per loop (1 = rolled). The sweep applies one
    /// factor to *all* loops of trip count ≥ factor per point, plus the
    /// per-loop refinements below.
    pub unroll_factors: Vec<u32>,
    /// Merge policies to try.
    pub merge_policies: Vec<MergePolicy>,
    /// Also try per-loop unrolling of each individual loop (on top of the
    /// uniform sweep) — finds asymmetric winners like the paper's fourth
    /// architecture.
    pub per_loop_refinement: bool,
    /// A combinatorial per-loop grid. `None` (the default) runs the
    /// uniform sweep above; `Some` **replaces** it — candidates become the
    /// cross product of the grid's axes with the clock grid and the merge
    /// policies, and [`ExploreConfig::unroll_factors`]/
    /// [`ExploreConfig::per_loop_refinement`] are ignored.
    pub loop_grids: Option<LoopGrid>,
    /// Which explored points [`explore_with_check`] equivalence-checks.
    /// Plain [`explore`]/[`explore_serial`] ignore this (they have no
    /// checker to run).
    pub verify: VerifyLevel,
    /// Branch-and-bound pruning. `None` (the default) evaluates every
    /// unique candidate; `Some` skips the back end of candidates whose
    /// admissible lower bounds are already strictly dominated by a
    /// completed point. Pruning never changes the Pareto frontier, the
    /// fastest point's latency or the smallest point's area — only
    /// dominated interior points can disappear (into
    /// [`ExploreResult::pruned`]).
    pub budget: Option<ExploreBudget>,
    /// A shared content-addressed pass cache
    /// ([`crate::passcache::PassCache`]). When set, the sweep's prefix
    /// memoization and every synthesized point consult it, so repeated
    /// sweeps (and sweeps sharing stage inputs across calls) reuse results
    /// instead of recomputing them. `None` (the default) keeps the classic
    /// in-sweep memoization only.
    pub cache: Option<Arc<crate::passcache::PassCache>>,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            clock_period_ns: 10.0,
            clock_periods_ns: Vec::new(),
            unroll_factors: vec![1, 2, 4],
            merge_policies: vec![MergePolicy::Off, MergePolicy::AllowHazards],
            per_loop_refinement: true,
            loop_grids: None,
            verify: VerifyLevel::Off,
            budget: None,
            cache: None,
        }
    }
}

impl ExploreConfig {
    /// This configuration with default branch-and-bound pruning enabled.
    pub fn budgeted(self) -> Self {
        ExploreConfig {
            budget: Some(ExploreBudget::default()),
            ..self
        }
    }
}

/// A candidate whose back end was skipped by branch-and-bound pruning:
/// its admissible bounds were already strictly dominated by a completed
/// design point, so its actual latency/area could not have reached the
/// Pareto frontier.
#[derive(Debug, Clone)]
pub struct PrunedCandidate {
    /// Human-readable description of the knob settings.
    pub label: String,
    /// The candidate's admissible latency lower bound (its actual latency
    /// would have been at least this).
    pub latency_bound_cycles: u64,
    /// The candidate's admissible area lower bound.
    pub area_bound: f64,
    /// The candidate's full bound envelope — admissible `(latency, area)`
    /// corners tracing its feasible schedule-depth trade-off. Every corner
    /// was strictly dominated by a completed point, which is exactly why
    /// the candidate was pruned.
    pub corners: Vec<(u64, f64)>,
    /// The labels of the completed design points that dominated the
    /// corners (deduplicated, in corner order) — enough to diagnose any
    /// prune decision from a serialized result alone.
    pub dominated_by: Vec<String>,
}

/// Pruning efficacy of one evaluation wave.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaveStats {
    /// Unique jobs whose back end ran in this wave.
    pub evaluated: usize,
    /// Unique jobs pruned at this wave's admission check.
    pub pruned: usize,
}

/// The exploration outcome.
#[derive(Debug, Clone)]
pub struct ExploreResult {
    /// Every feasible point evaluated, in candidate-generation order.
    pub points: Vec<DesignPoint>,
    /// Points that failed to synthesize, with their errors.
    pub failures: Vec<(String, SynthesisError)>,
    /// Unique directive sets actually synthesized. Candidates whose
    /// canonicalized directives matched an earlier candidate reused its
    /// memoized result, and candidates pruned by the budget never ran.
    pub evaluations: usize,
    /// Unique loop-transform prefixes actually computed. Candidates that
    /// differ only in clock, mappings or FU limits share one transform
    /// (see the module docs), so this is ≤ [`ExploreResult::evaluations`].
    pub transform_evaluations: usize,
    /// Points that synthesized but *failed the equivalence check*, as
    /// `(label, diagnosis)`. Always empty unless the result came from
    /// [`explore_with_check`] with [`ExploreConfig::verify`] enabled.
    pub verify_failures: Vec<(String, String)>,
    /// Candidates skipped by branch-and-bound pruning, in
    /// candidate-generation order. Always empty without
    /// [`ExploreConfig::budget`].
    pub pruned: Vec<PrunedCandidate>,
    /// Per-wave pruning efficacy, in wave order (unique jobs, not
    /// candidate aliases). Empty without [`ExploreConfig::budget`].
    pub wave_stats: Vec<WaveStats>,
}

impl ExploreResult {
    /// The latency/area Pareto frontier, sorted by latency.
    pub fn pareto(&self) -> Vec<&DesignPoint> {
        let mut frontier: Vec<&DesignPoint> = self
            .points
            .iter()
            .filter(|p| !self.points.iter().any(|q| q.dominates(p)))
            .collect();
        frontier.sort_by_key(|p| (p.latency_cycles, p.area as u64));
        frontier.dedup_by(|a, b| a.latency_cycles == b.latency_cycles && a.area == b.area);
        frontier
    }

    /// The fastest feasible point.
    pub fn fastest(&self) -> Option<&DesignPoint> {
        self.points.iter().min_by_key(|p| p.latency_cycles)
    }

    /// The smallest feasible point.
    pub fn smallest(&self) -> Option<&DesignPoint> {
        self.points
            .iter()
            .min_by(|a, b| a.area.partial_cmp(&b.area).expect("finite areas"))
    }

    /// The fraction of wave-scheduled unique jobs that pruning skipped
    /// (`0.0` when no budget ran).
    pub fn prune_rate(&self) -> f64 {
        let evaluated: usize = self.wave_stats.iter().map(|w| w.evaluated).sum();
        let pruned: usize = self.wave_stats.iter().map(|w| w.pruned).sum();
        if evaluated + pruned == 0 {
            0.0
        } else {
            pruned as f64 / (evaluated + pruned) as f64
        }
    }
}

/// A canonical, order-independent rendering of a directive set, used as
/// the memo-cache key. The maps inside [`Directives`] are `BTreeMap`s, so
/// their debug rendering is already sorted; the clock is keyed by its
/// exact bit pattern rather than a rounded decimal.
fn canonical_key(d: &Directives) -> String {
    format!(
        "clk={:016x};merge={:?};loops={:?};arrays={:?};ifs={:?};fu={:?}",
        d.clock_period_ns.to_bits(),
        d.merge_policy,
        d.loops,
        d.arrays,
        d.interfaces,
        d.fu_limits,
    )
}

/// The part of a directive set the loop-transform prefix depends on.
/// Candidates sharing this key transform identically regardless of clock,
/// array/interface mappings or FU limits. Public so sweep-scoped caches
/// (notably `hls-verify`'s `ExploreProver`) can group design points by
/// their shared transformed function without re-deriving it.
pub fn transform_signature(d: &Directives) -> String {
    format!("merge={:?};loops={:?}", d.merge_policy, d.loops)
}

/// The latency/area outcome of synthesizing one unique directive set.
type JobOutcome = Result<(u64, f64), SynthesisError>;

/// One unique directive set to synthesize, with its (optionally) shared
/// precomputed prefix: the transform result and the lowering, both
/// clock-independent and shared across every job of one transform
/// signature.
struct Job<'a> {
    directives: &'a Directives,
    transformed: Option<Arc<TransformResult>>,
    lowered: Option<Arc<Lowered>>,
}

/// An equivalence checker for one design point: `Ok(())` if the
/// synthesized design provably (or empirically) implements `func` under
/// the given directives, `Err(diagnosis)` otherwise.
///
/// Unlike the legacy [`EquivChecker`], the checker receives the
/// [`SynthesisResult`] the explorer already built for the point, so it
/// never has to re-synthesize — and it must be `Sync`, because
/// [`explore_with_check`] runs it inside the synthesis worker pool.
///
/// The real implementation lives in the `hls-verify` crate (which depends
/// on this one and on the RTL backend); keeping only the function shape
/// here avoids a dependency cycle.
pub type PointChecker<'a> = dyn Fn(&Function, &Directives, &TechLibrary, &SynthesisResult) -> Result<(), String>
    + Sync
    + 'a;

/// The pre-fusion equivalence-checker shape: no synthesis result, so the
/// checker re-synthesizes internally. Kept for
/// [`explore_with_check_serial`], the serial reference flow.
pub type EquivChecker<'a> = dyn Fn(&Function, &Directives, &TechLibrary) -> Result<(), String> + 'a;

/// What a synthesis worker does with a successful result, beyond
/// extracting the metrics.
#[derive(Clone, Copy)]
enum CheckOp<'c, 'f> {
    /// Nothing — plain exploration.
    None,
    /// Run the equivalence checker inline ([`VerifyLevel::All`]): the
    /// proof overlaps other workers' synthesis.
    Inline(&'c PointChecker<'f>),
    /// Keep the full [`SynthesisResult`] ([`VerifyLevel::Pareto`]): the
    /// frontier's checks fan out over the stored results afterwards.
    Store,
}

/// Everything one synthesis worker produced for one unique job.
struct JobResult {
    outcome: JobOutcome,
    /// The inline equivalence verdict ([`CheckOp::Inline`] only).
    check: Option<Result<(), String>>,
    /// The full result ([`CheckOp::Store`] only).
    stored: Option<SynthesisResult>,
    /// Wall time of the back-end passes (lower/schedule/allocate/metrics)
    /// — the part of the pipeline pruning would have skipped; feeds the
    /// explorer's cost model.
    tail_ns: u64,
}

/// The pipeline passes branch-and-bound pruning skips; their wall time is
/// what the cost model predicts.
const TAIL_PASSES: [&str; 4] = ["lower", "schedule", "allocate", "metrics"];

fn run_job(
    func: &Function,
    job: &Job<'_>,
    lib: &TechLibrary,
    check: CheckOp<'_, '_>,
    cache: Option<&Arc<crate::passcache::PassCache>>,
) -> JobResult {
    let pipeline_config = PipelineConfig {
        cache: cache.cloned(),
        // The sweep only reads pass timings and memo flags from the
        // traces; the per-pass design-size snapshots would cost more
        // than a fully memo-served job.
        skip_trace_stats: true,
        ..PipelineConfig::default()
    };
    let (result, run) = match (&job.transformed, &job.lowered) {
        (Some(t), Some(l)) => synthesize_traced_with_prefix(
            func,
            job.directives,
            lib,
            &pipeline_config,
            Arc::clone(t),
            Arc::clone(l),
        ),
        (Some(t), None) => synthesize_traced_with_transform(
            func,
            job.directives,
            lib,
            &pipeline_config,
            Arc::clone(t),
        ),
        _ => synthesize_traced(func, job.directives, lib, &pipeline_config),
    };
    let tail_ns = run
        .trace
        .passes
        .iter()
        .filter(|p| TAIL_PASSES.contains(&p.pass.as_str()))
        .map(|p| p.wall_ns)
        .sum();
    match result {
        Ok(r) => {
            let metrics = (r.metrics.latency_cycles, r.metrics.area);
            let (check, stored) = match check {
                CheckOp::None => (None, None),
                CheckOp::Inline(c) => (Some(c(func, job.directives, lib, &r)), None),
                CheckOp::Store => (None, Some(r)),
            };
            JobResult {
                outcome: Ok(metrics),
                check,
                stored,
                tail_ns,
            }
        }
        Err(e) => JobResult {
            outcome: Err(e),
            check: None,
            stored: None,
            tail_ns,
        },
    }
}

/// Maps `f` over `0..n`, across the worker pool when `parallel` (and the
/// `parallel` feature) allow it. A shared atomic cursor hands out indices;
/// each value lands at its own slot, so the returned order is independent
/// of thread scheduling.
fn par_map<T, F>(parallel: bool, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    #[cfg(feature = "parallel")]
    {
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(n);
        if parallel && workers > 1 {
            use std::sync::atomic::{AtomicUsize, Ordering};
            use std::sync::Mutex;

            let next = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let v = f(i);
                        *slots[i].lock().expect("no panics hold this lock") = Some(v);
                    });
                }
            });
            return slots
                .into_iter()
                .map(|m| {
                    m.into_inner()
                        .expect("worker finished")
                        .expect("every index ran")
                })
                .collect();
        }
    }
    #[cfg(not(feature = "parallel"))]
    let _ = parallel;
    (0..n).map(f).collect()
}

/// Every assignment of one choice index per axis, in odometer order (last
/// axis fastest). `lens` must be all non-zero; an empty `lens` yields the
/// single empty assignment.
fn cross(lens: &[usize]) -> Vec<Vec<usize>> {
    let total: usize = lens.iter().product();
    let mut combos = Vec::with_capacity(total);
    let mut idx = vec![0usize; lens.len()];
    loop {
        combos.push(idx.clone());
        let mut k = lens.len();
        loop {
            if k == 0 {
                return combos;
            }
            k -= 1;
            idx[k] += 1;
            if idx[k] < lens[k] {
                break;
            }
            idx[k] = 0;
        }
    }
}

/// Enumerates the per-loop grid sweep: clock × merge policy × the cross
/// product of every loop's unroll factors × every loop's pipeline-II
/// choices, in deterministic order with self-describing labels.
fn grid_candidates(config: &ExploreConfig, grid: &LoopGrid) -> Vec<(String, Directives)> {
    let clocks: Vec<f64> = if config.clock_periods_ns.is_empty() {
        vec![config.clock_period_ns]
    } else {
        config.clock_periods_ns.clone()
    };
    let sweep = clocks.len() > 1;
    let u_axes: Vec<(&str, &[u32])> = grid
        .unroll
        .iter()
        .filter(|(_, v)| !v.is_empty())
        .map(|(l, v)| (l.as_str(), v.as_slice()))
        .collect();
    let ii_axes: Vec<(&str, &[Option<u32>])> = grid
        .pipeline
        .iter()
        .filter(|(_, v)| !v.is_empty())
        .map(|(l, v)| (l.as_str(), v.as_slice()))
        .collect();
    let u_lens: Vec<usize> = u_axes.iter().map(|(_, v)| v.len()).collect();
    let ii_lens: Vec<usize> = ii_axes.iter().map(|(_, v)| v.len()).collect();
    let u_combos = cross(&u_lens);
    let ii_combos = cross(&ii_lens);

    let mut candidates = Vec::new();
    for &clk in &clocks {
        let suffix = if sweep {
            format!(" @{clk}ns")
        } else {
            String::new()
        };
        for &policy in &config.merge_policies {
            for ui in &u_combos {
                let unroll: Vec<(&str, u32)> = u_axes
                    .iter()
                    .zip(ui)
                    .map(|(&(l, fs), &i)| (l, fs[i]))
                    .collect();
                let u_label: Vec<String> = unroll.iter().map(|(l, f)| format!("{l}={f}")).collect();
                for pi in &ii_combos {
                    let pipeline: Vec<(&str, Option<u32>)> = ii_axes
                        .iter()
                        .zip(pi)
                        .map(|(&(l, iis), &i)| (l, iis[i]))
                        .collect();
                    let d = Directives::new(clk)
                        .merge_policy(policy)
                        .grid_point(&unroll, &pipeline);
                    let mut label = format!("{policy:?} U[{}]", u_label.join(","));
                    if !pipeline.is_empty() {
                        let ii_label: Vec<String> = pipeline
                            .iter()
                            .map(|(l, ii)| match ii {
                                Some(ii) => format!("{l}={ii}"),
                                None => format!("{l}=-"),
                            })
                            .collect();
                        label.push_str(&format!(" II[{}]", ii_label.join(",")));
                    }
                    label.push_str(&suffix);
                    candidates.push((label, d));
                }
            }
        }
    }
    candidates
}

fn candidates_for(func: &Function, config: &ExploreConfig) -> Vec<(String, Directives)> {
    if let Some(grid) = &config.loop_grids {
        return grid_candidates(config, grid);
    }
    let labels = func.loop_labels();
    let clocks: Vec<f64> = if config.clock_periods_ns.is_empty() {
        vec![config.clock_period_ns]
    } else {
        config.clock_periods_ns.clone()
    };
    let sweep = clocks.len() > 1;
    let mut candidates: Vec<(String, Directives)> = Vec::new();

    for &clk in &clocks {
        let suffix = if sweep {
            format!(" @{clk}ns")
        } else {
            String::new()
        };
        for &policy in &config.merge_policies {
            for &u in &config.unroll_factors {
                let mut d = Directives::new(clk).merge_policy(policy);
                if u > 1 {
                    for l in &labels {
                        d = d.unroll(l, Unroll::Factor(u));
                    }
                }
                candidates.push((format!("{policy:?} U{u} (all loops){suffix}"), d));
                if config.per_loop_refinement && u > 1 {
                    for target in &labels {
                        let d = Directives::new(clk)
                            .merge_policy(policy)
                            .unroll(target, Unroll::Factor(u));
                        candidates.push((format!("{policy:?} U{u} ({target}){suffix}"), d));
                    }
                }
            }
        }
    }
    candidates
}

/// How many candidates the first pruning wave evaluates. Small enough
/// that the first completed points start pruning early; later waves grow
/// geometrically (×2 up to [`MAX_PRUNE_WAVE`]) so a 10k-point sweep is
/// not serialized into thousands of tiny barriers.
const PRUNE_WAVE: usize = 8;

/// The geometric wave-growth cap: large enough to keep every worker of
/// the pool saturated, small enough that fresh frontier points keep
/// feeding the prune check across a dense sweep.
const MAX_PRUNE_WAVE: usize = 512;

/// If every corner of the candidate's bound envelope is strictly
/// dominated by some completed frontier point, returns the dominating
/// jobs (deduplicated, in corner order); otherwise `None`.
///
/// Per-corner witnesses may differ. This is still sound: admissibility
/// guarantees some corner sits componentwise at-or-below the candidate's
/// actual point, so that corner's dominator `p` satisfies
/// `p ≤ corner ≤ actual` with strictness surviving on the strict axis —
/// `p` strictly dominates the actual point wherever it lands, and
/// anything the pruned point could have dominated, `p` dominates too
/// (transitivity through the corner). The frontier is unchanged.
fn dominating_witnesses(frontier: &[(u64, f64, usize)], b: &DesignBound) -> Option<Vec<usize>> {
    let mut witnesses: Vec<usize> = Vec::new();
    for &(cl, ca) in &b.corners {
        let &(_, _, job) = frontier
            .iter()
            .find(|&&(lat, area, _)| lat <= cl && area <= ca && (lat < cl || area < ca))?;
        if !witnesses.contains(&job) {
            witnesses.push(job);
        }
    }
    Some(witnesses)
}

/// Folds a completed point into the running frontier of completed points
/// — the only points the prune check needs to consult: any point they
/// weakly dominate can only strictly dominate a corner they also strictly
/// dominate. Keeping the scan list Pareto-minimal is what keeps the
/// per-corner witness search cheap across 10k-point sweeps.
fn push_frontier(frontier: &mut Vec<(u64, f64, usize)>, lat: u64, area: f64, job: usize) {
    if frontier.iter().any(|&(l, a, _)| l <= lat && a <= area) {
        return; // weakly dominated (or duplicate): adds no pruning power
    }
    frontier.retain(|&(l, a, _)| !(lat <= l && area <= a));
    frontier.push((lat, area, job));
}

/// The deterministic evaluation order under pruning: the latency-sorted
/// and area-sorted rankings of the bound minima, interleaved. Both ends
/// of the eventual frontier complete in the earliest waves, so the prune
/// check has extremal points to consult across the whole latency/area
/// span — not just one corner of it. Ties break on the lower index;
/// unbounded jobs (no transform prefix) run last in index order.
fn eval_order(bounds: &[Option<DesignBound>]) -> Vec<usize> {
    let n = bounds.len();
    let bounded: Vec<usize> = (0..n).filter(|&i| bounds[i].is_some()).collect();
    let mut by_lat = bounded.clone();
    by_lat.sort_by_key(|&i| (bounds[i].as_ref().expect("bounded").latency_cycles, i));
    let mut by_area = bounded;
    by_area.sort_by(|&i, &j| {
        let (bi, bj) = (
            bounds[i].as_ref().expect("bounded"),
            bounds[j].as_ref().expect("bounded"),
        );
        bi.area.total_cmp(&bj.area).then(i.cmp(&j))
    });
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    for k in 0..by_lat.len() {
        for &i in &[by_lat[k], by_area[k]] {
            if !used[i] {
                used[i] = true;
                order.push(i);
            }
        }
    }
    order.extend((0..n).filter(|&i| !used[i]));
    order
}

/// The resolution of one unique job after the wave loop: pruned (with the
/// bound envelope and the dominating jobs) or done.
enum Slot {
    Pruned(DesignBound, Vec<usize>),
    Done(Box<JobResult>),
}

fn explore_impl(
    func: &Function,
    config: &ExploreConfig,
    lib: &TechLibrary,
    parallel: bool,
    check: Option<&PointChecker<'_>>,
) -> ExploreResult {
    let candidates = candidates_for(func, config);

    // Memoize: map every candidate to a unique job; duplicate knob
    // settings synthesize once and share the outcome.
    let mut uniques: Vec<&Directives> = Vec::new();
    let mut job_of_key: BTreeMap<String, usize> = BTreeMap::new();
    let job_of_candidate: Vec<usize> = candidates
        .iter()
        .map(|(_, d)| {
            *job_of_key.entry(canonical_key(d)).or_insert_with(|| {
                uniques.push(d);
                uniques.len() - 1
            })
        })
        .collect();

    // Prefix memoization: precompute one transform per unique
    // (merge policy, loop directives) combination, deterministically and
    // before the parallel fan-out, and share it across the jobs (clock
    // sweeps hit this hard: every clock reuses the same prefix). Skipped
    // when the IR is invalid — the pipeline's validate pass must report
    // that, and transforms assume validated IR.
    let mut transforms: BTreeMap<String, Arc<TransformResult>> = BTreeMap::new();
    let base_key = if hls_ir::validate(func).is_empty() {
        config
            .cache
            .as_ref()
            .map(|_| crate::passcache::base_key(func))
    } else {
        None
    };
    if hls_ir::validate(func).is_empty() {
        for d in &uniques {
            transforms.entry(transform_signature(d)).or_insert_with(|| {
                if let (Some(cache), Some(base)) = (&config.cache, &base_key) {
                    let key = crate::passcache::transform_key(base, d);
                    if let Some(t) = cache.get_transform(&key) {
                        return t;
                    }
                    let t = Arc::new(apply_loop_transforms(func, d));
                    cache.put_transform(&key, &t);
                    t
                } else {
                    Arc::new(apply_loop_transforms(func, d))
                }
            });
        }
    }
    let transform_evaluations = transforms.len();

    // One lowering per transform prefix: lowering depends on the
    // transformed function and the lowering-relevant directives — the
    // per-loop pipeline IIs, which are part of the signature; the
    // explorer never varies interface or array mappings — but not on the
    // clock, so every clock twin shares it. Under a budget, the bound
    // profile rides along: one resource-aware profile per prefix,
    // specialized per clock below.
    let mut lowerings: BTreeMap<String, Arc<Lowered>> = BTreeMap::new();
    let mut profiles: BTreeMap<String, BoundProfile> = BTreeMap::new();
    for d in &uniques {
        let sig = transform_signature(d);
        let Some(t) = transforms.get(&sig) else {
            continue;
        };
        let low = lowerings.entry(sig.clone()).or_insert_with(|| {
            if let (Some(cache), Some(base)) = (&config.cache, &base_key) {
                let key = crate::passcache::lower_key(&crate::passcache::transform_key(base, d), d);
                if let Some(l) = cache.get_lowered(&key) {
                    return l;
                }
                let l = Arc::new(lower(&t.func, d));
                cache.put_lowered(&key, &l);
                l
            } else {
                Arc::new(lower(&t.func, d))
            }
        });
        if config.budget.is_some() && !profiles.contains_key(&sig) {
            // Profile the netlist synthesis will actually schedule: the
            // pipeline's netlist-opt pass shrinks the seeded lowering, so
            // an unoptimized profile would overestimate the lower bound
            // and wrongly prune feasible points. The grid never varies
            // the opt level, so one optimized profile per prefix is safe.
            let mut opt = (**low).clone();
            crate::netlist::optimize_lowered(&mut opt, &d.netlist_opt, lib);
            let p = bound_profile(&opt, d, lib);
            profiles.insert(sig, p);
        }
    }

    let jobs: Vec<Job<'_>> = uniques
        .iter()
        .map(|d| {
            let sig = transform_signature(d);
            Job {
                directives: d,
                transformed: transforms.get(&sig).map(Arc::clone),
                lowered: lowerings.get(&sig).map(Arc::clone),
            }
        })
        .collect();

    let check_op = match (config.verify, check) {
        (VerifyLevel::All, Some(c)) => CheckOp::Inline(c),
        (VerifyLevel::Pareto, Some(_)) => CheckOp::Store,
        _ => CheckOp::None,
    };

    // Bounds exist only under a budget and only for candidates whose
    // transform prefix ran (an invalid-IR run has nothing to bound — and
    // nothing to prune, since every job just reports the validation
    // error). Each is a cheap per-clock specialization of its prefix's
    // shared profile.
    let bounds: Vec<Option<DesignBound>> = if config.budget.is_some() {
        jobs.iter()
            .map(|j| {
                profiles
                    .get(&transform_signature(j.directives))
                    .map(|p| bound_from_profile(p, j.directives))
            })
            .collect()
    } else {
        vec![None; jobs.len()]
    };

    // A representative label per unique job (the first candidate that
    // mapped to it) — the name pruning reports as a dominating witness.
    let mut job_label: Vec<&str> = vec![""; jobs.len()];
    for ((label, _), &job) in candidates.iter().zip(&job_of_candidate) {
        if job_label[job].is_empty() {
            job_label[job] = label.as_str();
        }
    }

    // The wave loop. Without a budget there is a single wave holding every
    // job — exactly the old fan-out. With one, candidates run in
    // deterministic waves of geometrically growing size; before each wave,
    // candidates whose bound envelope is corner-for-corner strictly
    // dominated by points completed in *earlier* waves (and whose modeled
    // back-end cost clears the budget's floor) are pruned. Consulting only
    // earlier waves keeps the prune set — and with
    // `min_prune_cost_ns == 0` even its exact membership — independent of
    // thread timing; a nonzero floor lets wall-clock noise shift which
    // *dominated* candidates are skipped, but dominated candidates are
    // interior by construction, so the frontier never moves.
    let order: Vec<usize> = if config.budget.is_some() {
        eval_order(&bounds)
    } else {
        (0..jobs.len()).collect()
    };

    let mut slots: Vec<Option<Slot>> = (0..jobs.len()).map(|_| None).collect();
    let mut frontier: Vec<(u64, f64, usize)> = Vec::new();
    let mut wave_stats: Vec<WaveStats> = Vec::new();
    let mut tail_ns_sum: u64 = 0;
    let mut ops_sum: u64 = 0;
    let mut start = 0usize;
    let mut wave_len = if config.budget.is_some() {
        PRUNE_WAVE
    } else {
        order.len().max(1)
    };
    while start < order.len() {
        let wave = &order[start..order.len().min(start + wave_len)];
        start += wave.len();
        wave_len = (wave_len * 2).clamp(1, MAX_PRUNE_WAVE);
        let mut to_run: Vec<usize> = Vec::new();
        for &i in wave {
            let witnesses = match (&config.budget, &bounds[i]) {
                (Some(budget), Some(b)) => {
                    let modeled_ns = if ops_sum > 0 {
                        tail_ns_sum as f64 / ops_sum as f64 * b.ops as f64
                    } else {
                        0.0
                    };
                    if modeled_ns >= budget.min_prune_cost_ns as f64 {
                        dominating_witnesses(&frontier, b)
                    } else {
                        None
                    }
                }
                _ => None,
            };
            match witnesses {
                Some(w) => {
                    let b = bounds[i].clone().expect("pruned jobs have bounds");
                    slots[i] = Some(Slot::Pruned(b, w));
                }
                None => to_run.push(i),
            }
        }
        if config.budget.is_some() {
            wave_stats.push(WaveStats {
                evaluated: to_run.len(),
                pruned: wave.len() - to_run.len(),
            });
        }
        let results = par_map(parallel, to_run.len(), |k| {
            run_job(func, &jobs[to_run[k]], lib, check_op, config.cache.as_ref())
        });
        for (&i, r) in to_run.iter().zip(results) {
            if let Ok((lat, area)) = &r.outcome {
                push_frontier(&mut frontier, *lat, *area, i);
                if let Some(b) = &bounds[i] {
                    tail_ns_sum += r.tail_ns;
                    ops_sum += b.ops as u64;
                }
            }
            slots[i] = Some(Slot::Done(Box::new(r)));
        }
    }
    let evaluations = slots
        .iter()
        .filter(|s| matches!(s, Some(Slot::Done(_))))
        .count();

    // Assemble in candidate order, exactly as the serial reference does.
    let mut points = Vec::new();
    let mut point_jobs: Vec<usize> = Vec::new();
    let mut failures = Vec::new();
    let mut pruned = Vec::new();
    for ((label, d), &job) in candidates.iter().zip(&job_of_candidate) {
        match slots[job].as_ref().expect("every job resolved") {
            Slot::Pruned(b, witnesses) => pruned.push(PrunedCandidate {
                label: label.clone(),
                latency_bound_cycles: b.latency_cycles,
                area_bound: b.area,
                corners: b.corners.clone(),
                dominated_by: witnesses
                    .iter()
                    .map(|&j| job_label[j].to_string())
                    .collect(),
            }),
            Slot::Done(r) => match &r.outcome {
                Ok((latency_cycles, area)) => {
                    point_jobs.push(job);
                    points.push(DesignPoint {
                        directives: d.clone(),
                        label: label.clone(),
                        latency_cycles: *latency_cycles,
                        area: *area,
                    });
                }
                Err(e) => failures.push((label.clone(), e.clone())),
            },
        }
    }

    // Harvest the fused equivalence verdicts.
    let mut verify_failures: Vec<(String, String)> = Vec::new();
    match check_op {
        CheckOp::None => {}
        CheckOp::Inline(_) => {
            // Every point's job carries its inline verdict; report
            // failures per candidate label, in point order.
            for (p, &job) in points.iter().zip(&point_jobs) {
                let Some(Slot::Done(r)) = slots[job].as_ref() else {
                    unreachable!("points come from completed jobs")
                };
                if let Some(Err(msg)) = &r.check {
                    verify_failures.push((p.label.clone(), msg.clone()));
                }
            }
        }
        CheckOp::Store => {
            // Fan the frontier's checks back out over the stored results,
            // deduplicated per unique job.
            let frontier = frontier_indices(&points);
            let unique_jobs: Vec<usize> = frontier
                .iter()
                .map(|&pi| point_jobs[pi])
                .collect::<BTreeSet<usize>>()
                .into_iter()
                .collect();
            let checker = check.expect("Store implies a checker");
            let verdicts: Vec<Result<(), String>> = par_map(parallel, unique_jobs.len(), |k| {
                let job = unique_jobs[k];
                let Some(Slot::Done(r)) = slots[job].as_ref() else {
                    unreachable!("frontier points come from completed jobs")
                };
                let stored = r.stored.as_ref().expect("Store keeps every result");
                checker(func, jobs[job].directives, lib, stored)
            });
            let verdict_of_job: BTreeMap<usize, &Result<(), String>> =
                unique_jobs.iter().copied().zip(verdicts.iter()).collect();
            for &pi in &frontier {
                if let Err(msg) = verdict_of_job[&point_jobs[pi]] {
                    verify_failures.push((points[pi].label.clone(), msg.clone()));
                }
            }
        }
    }

    ExploreResult {
        points,
        failures,
        evaluations,
        transform_evaluations,
        verify_failures,
        pruned,
        wave_stats,
    }
}

/// The indices into `points` of the Pareto frontier, in the order
/// [`ExploreResult::pareto`] reports it (sorted by latency, duplicate
/// latency/area pairs collapsed).
fn frontier_indices(points: &[DesignPoint]) -> Vec<usize> {
    let mut frontier: Vec<usize> = (0..points.len())
        .filter(|&i| !points.iter().any(|q| q.dominates(&points[i])))
        .collect();
    frontier.sort_by_key(|&i| (points[i].latency_cycles, points[i].area as u64));
    frontier.dedup_by(|a, b| {
        points[*a].latency_cycles == points[*b].latency_cycles && points[*a].area == points[*b].area
    });
    frontier
}

/// Explores the design space of `func` under `config`.
///
/// With the `parallel` feature (enabled by default) candidates are
/// synthesized across all available cores; the result is deterministic
/// and identical to [`explore_serial`] either way.
pub fn explore(func: &Function, config: &ExploreConfig, lib: &TechLibrary) -> ExploreResult {
    explore_impl(func, config, lib, true, None)
}

/// Explores on the current thread only — the single-threaded reference
/// path for [`explore`], independent of the `parallel` feature.
pub fn explore_serial(func: &Function, config: &ExploreConfig, lib: &TechLibrary) -> ExploreResult {
    explore_impl(func, config, lib, false, None)
}

/// [`explore`] with fused equivalence checking: the points selected by
/// [`ExploreConfig::verify`] are checked *inside* the synthesis worker
/// pool, against the [`SynthesisResult`] the explorer already built —
/// proofs overlap synthesis at [`VerifyLevel::All`], and fan out across
/// the pool over the frontier's stored results at [`VerifyLevel::Pareto`].
/// Failures land in [`ExploreResult::verify_failures`]; the points
/// themselves are kept so callers can still see *what* was wrong with the
/// frontier.
///
/// Checked directive sets are deduplicated by the same canonical key as
/// the synthesis memo cache, so a frontier full of memo-aliases costs one
/// check.
pub fn explore_with_check(
    func: &Function,
    config: &ExploreConfig,
    lib: &TechLibrary,
    check: &PointChecker<'_>,
) -> ExploreResult {
    explore_impl(func, config, lib, true, Some(check))
}

/// The pre-fusion reference flow: explore serially with pruning disabled,
/// then run every selected check on the current thread, *after* the
/// frontier is known, with a checker that re-synthesizes each point from
/// its directives. Exists so benchmarks (and tests) can measure the fused
/// path against the historical behavior; new callers want
/// [`explore_with_check`].
pub fn explore_with_check_serial(
    func: &Function,
    config: &ExploreConfig,
    lib: &TechLibrary,
    check: &EquivChecker<'_>,
) -> ExploreResult {
    let cfg = ExploreConfig {
        budget: None,
        ..config.clone()
    };
    let mut result = explore_impl(func, &cfg, lib, false, None);
    let targets: Vec<(String, Directives)> = match config.verify {
        VerifyLevel::Off => Vec::new(),
        VerifyLevel::Pareto => result
            .pareto()
            .iter()
            .map(|p| (p.label.clone(), p.directives.clone()))
            .collect(),
        VerifyLevel::All => result
            .points
            .iter()
            .map(|p| (p.label.clone(), p.directives.clone()))
            .collect(),
    };
    let mut checked: BTreeMap<String, Result<(), String>> = BTreeMap::new();
    for (label, d) in targets {
        let outcome = checked
            .entry(canonical_key(&d))
            .or_insert_with(|| check(func, &d, lib));
        if let Err(msg) = outcome {
            result.verify_failures.push((label, msg.clone()));
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::{CmpOp, Expr, FunctionBuilder, Ty};

    fn two_loops() -> Function {
        let mut b = FunctionBuilder::new("t");
        let x = b.param_array("x", Ty::fixed(10, 0), 8);
        let y = b.param_array("y", Ty::fixed(10, 0), 16);
        let out = b.param_scalar("out", Ty::fixed(20, 6));
        let a1 = b.local("a1", Ty::fixed(20, 6));
        let a2 = b.local("a2", Ty::fixed(20, 6));
        b.assign(a1, Expr::int_const(0));
        b.for_loop("l1", 0, CmpOp::Lt, 8, 1, |b, k| {
            b.assign(a1, Expr::add(Expr::var(a1), Expr::load(x, Expr::var(k))));
        });
        b.assign(a2, Expr::int_const(0));
        b.for_loop("l2", 0, CmpOp::Lt, 16, 1, |b, k| {
            b.assign(a2, Expr::add(Expr::var(a2), Expr::load(y, Expr::var(k))));
        });
        b.assign(out, Expr::add(Expr::var(a1), Expr::var(a2)));
        b.build()
    }

    #[test]
    fn exploration_finds_points_and_frontier() {
        let f = two_loops();
        let r = explore(&f, &ExploreConfig::default(), &TechLibrary::asic_100mhz());
        assert!(r.points.len() >= 6, "{} points", r.points.len());
        let pareto = r.pareto();
        assert!(!pareto.is_empty());
        // Frontier is sorted by latency and strictly improving in area.
        for w in pareto.windows(2) {
            assert!(w[0].latency_cycles <= w[1].latency_cycles);
            assert!(w[0].area >= w[1].area, "frontier must trade area for speed");
        }
        // The fastest point is on the frontier.
        let fastest = r.fastest().expect("points exist");
        assert!(pareto
            .iter()
            .any(|p| p.latency_cycles == fastest.latency_cycles));
    }

    #[test]
    fn dominance_is_strict() {
        let a = DesignPoint {
            directives: Directives::new(10.0),
            label: "a".into(),
            latency_cycles: 10,
            area: 100.0,
        };
        let b = DesignPoint {
            latency_cycles: 10,
            area: 100.0,
            label: "b".into(),
            ..a.clone()
        };
        assert!(!a.dominates(&b), "equal points do not dominate");
        let c = DesignPoint {
            latency_cycles: 9,
            area: 100.0,
            label: "c".into(),
            ..a.clone()
        };
        assert!(c.dominates(&a));
        assert!(!a.dominates(&c));
    }

    #[test]
    fn parallel_exploration_matches_serial_exactly() {
        let f = two_loops();
        let cfg = ExploreConfig::default();
        let lib = TechLibrary::asic_100mhz();
        let par = explore(&f, &cfg, &lib);
        let ser = explore_serial(&f, &cfg, &lib);
        assert_eq!(par.points.len(), ser.points.len());
        for (p, s) in par.points.iter().zip(&ser.points) {
            assert_eq!(p.label, s.label);
            assert_eq!(p.latency_cycles, s.latency_cycles);
            assert_eq!(p.area, s.area);
            assert_eq!(p.directives, s.directives);
        }
        assert_eq!(par.failures.len(), ser.failures.len());
        assert_eq!(par.evaluations, ser.evaluations);
        assert_eq!(par.transform_evaluations, ser.transform_evaluations);
        // Identical points imply an identical Pareto frontier.
        let fp: Vec<_> = par
            .pareto()
            .iter()
            .map(|p| (p.latency_cycles, p.area))
            .collect();
        let fs: Vec<_> = ser
            .pareto()
            .iter()
            .map(|p| (p.latency_cycles, p.area))
            .collect();
        assert_eq!(fp, fs);
    }

    #[test]
    fn duplicate_directives_synthesize_once() {
        // With a single loop, "U=n on all loops" and "U=n on l1" are the
        // same directive set — the memo cache must collapse them.
        let mut b = FunctionBuilder::new("one");
        let x = b.param_array("x", Ty::fixed(10, 0), 8);
        let out = b.param_scalar("out", Ty::fixed(16, 6));
        let acc = b.local("acc", Ty::fixed(16, 6));
        b.assign(acc, Expr::int_const(0));
        b.for_loop("l1", 0, CmpOp::Lt, 8, 1, |b, k| {
            b.assign(acc, Expr::add(Expr::var(acc), Expr::load(x, Expr::var(k))));
        });
        b.assign(out, Expr::var(acc));
        let f = b.build();
        let r = explore(&f, &ExploreConfig::default(), &TechLibrary::asic_100mhz());
        let total = r.points.len() + r.failures.len();
        assert!(
            r.evaluations < total,
            "expected memo hits: {} evaluations for {} candidates",
            r.evaluations,
            total
        );
        // Duplicates share the memoized outcome bit for bit.
        let all = r
            .points
            .iter()
            .find(|p| p.label.contains("all loops") && p.label.contains("U2"));
        let one = r
            .points
            .iter()
            .find(|p| p.label.contains("(l1)") && p.label.contains("U2"));
        let (all, one) = (all.expect("uniform point"), one.expect("refined point"));
        assert_eq!(all.latency_cycles, one.latency_cycles);
        assert_eq!(all.area, one.area);
    }

    #[test]
    fn canonical_key_ignores_insertion_order() {
        let a = Directives::new(10.0)
            .unroll("l1", Unroll::Factor(2))
            .unroll("l2", Unroll::Factor(4));
        let b = Directives::new(10.0)
            .unroll("l2", Unroll::Factor(4))
            .unroll("l1", Unroll::Factor(2));
        assert_eq!(canonical_key(&a), canonical_key(&b));
        let c = Directives::new(10.0).unroll("l1", Unroll::Factor(2));
        assert_ne!(canonical_key(&a), canonical_key(&c));
    }

    #[test]
    fn clock_sweep_shares_transform_prefixes() {
        let f = two_loops();
        let lib = TechLibrary::asic_100mhz();
        let one_clock = ExploreConfig::default();
        let swept = ExploreConfig {
            clock_periods_ns: vec![5.0, 10.0, 20.0],
            ..ExploreConfig::default()
        };
        let base = explore(&f, &one_clock, &lib);
        let r = explore(&f, &swept, &lib);
        // Three clocks triple the synthesis work but NOT the transform
        // work: the prefix memo collapses them onto one transform per
        // unique (merge, loops) combination.
        assert_eq!(r.evaluations, 3 * base.evaluations);
        assert_eq!(r.transform_evaluations, base.transform_evaluations);
        assert!(r.transform_evaluations < r.evaluations);
        // Every clock's points are present and labelled with their clock.
        for clk in ["@5ns", "@10ns", "@20ns"] {
            assert!(
                r.points.iter().any(|p| p.label.contains(clk)),
                "missing points for {clk}"
            );
        }
        // The 10 ns sweep slice agrees exactly with the single-clock run.
        for p in base.points.iter() {
            let swept_twin = r
                .points
                .iter()
                .find(|q| q.label == format!("{} @10ns", p.label))
                .expect("swept twin exists");
            assert_eq!(p.latency_cycles, swept_twin.latency_cycles);
            assert_eq!(p.area, swept_twin.area);
        }
    }

    #[test]
    fn seeded_transform_prefix_changes_no_point() {
        // The prefix memo must be invisible: points computed through the
        // seeded transform pass equal a fresh unseeded synthesis.
        let f = two_loops();
        let lib = TechLibrary::asic_100mhz();
        let r = explore(&f, &ExploreConfig::default(), &lib);
        assert!(r.transform_evaluations <= r.evaluations);
        for p in &r.points {
            let fresh = crate::synthesize::synthesize(&f, &p.directives, &lib).expect("feasible");
            assert_eq!(
                p.latency_cycles, fresh.metrics.latency_cycles,
                "{}",
                p.label
            );
            assert_eq!(p.area, fresh.metrics.area, "{}", p.label);
        }
    }

    #[test]
    fn merging_appears_on_the_frontier() {
        // For back-to-back independent loops, merging is pure win on
        // latency; the frontier must include a merged point as its fast end
        // relative to the unmerged rolled design.
        let f = two_loops();
        let cfg = ExploreConfig {
            unroll_factors: vec![1],
            merge_policies: vec![MergePolicy::Off, MergePolicy::AllowHazards],
            per_loop_refinement: false,
            ..ExploreConfig::default()
        };
        let r = explore(&f, &cfg, &TechLibrary::asic_100mhz());
        let off = r
            .points
            .iter()
            .find(|p| p.label.contains("Off"))
            .expect("off point");
        let merged = r
            .points
            .iter()
            .find(|p| p.label.contains("AllowHazards"))
            .expect("merged point");
        assert!(merged.latency_cycles < off.latency_cycles);
    }

    /// A clock sweep widened enough that bound-dominated candidates exist.
    fn swept_config() -> ExploreConfig {
        ExploreConfig {
            clock_periods_ns: vec![5.0, 10.0, 20.0],
            unroll_factors: vec![1, 2, 4, 8],
            ..ExploreConfig::default()
        }
    }

    #[test]
    fn budgeted_exploration_keeps_the_frontier_identical() {
        let f = two_loops();
        let lib = TechLibrary::asic_100mhz();
        let reference = explore_serial(&f, &swept_config(), &lib);
        let budgeted_cfg = ExploreConfig {
            budget: Some(ExploreBudget {
                min_prune_cost_ns: 0,
            }),
            ..swept_config()
        };
        let budgeted = explore(&f, &budgeted_cfg, &lib);
        // Pruning may drop dominated interior points but must preserve the
        // frontier, the fastest latency and the smallest area exactly.
        let rf: Vec<_> = reference
            .pareto()
            .iter()
            .map(|p| (p.latency_cycles, p.area))
            .collect();
        let bf: Vec<_> = budgeted
            .pareto()
            .iter()
            .map(|p| (p.latency_cycles, p.area))
            .collect();
        assert_eq!(rf, bf);
        assert_eq!(
            reference.fastest().map(|p| p.latency_cycles),
            budgeted.fastest().map(|p| p.latency_cycles)
        );
        assert_eq!(
            reference.smallest().map(|p| p.area),
            budgeted.smallest().map(|p| p.area)
        );
        // Every surviving budgeted point is bit-identical to its
        // reference twin.
        for p in &budgeted.points {
            let twin = reference
                .points
                .iter()
                .find(|q| q.label == p.label)
                .expect("twin exists");
            assert_eq!(p.latency_cycles, twin.latency_cycles, "{}", p.label);
            assert_eq!(p.area, twin.area, "{}", p.label);
        }
        // Points + pruned candidates + failures account for every
        // reference candidate.
        assert_eq!(
            budgeted.points.len() + budgeted.pruned.len() + budgeted.failures.len(),
            reference.points.len() + reference.failures.len()
        );
    }

    #[test]
    fn pruned_candidates_are_strictly_dominated() {
        let f = two_loops();
        let lib = TechLibrary::asic_100mhz();
        let cfg = ExploreConfig {
            budget: Some(ExploreBudget {
                min_prune_cost_ns: 0,
            }),
            ..swept_config()
        };
        let r = explore(&f, &cfg, &lib);
        // Soundness: every corner of each pruned candidate's envelope is
        // strictly dominated by some completed point (possibly different
        // per corner), so its actual point — componentwise at-or-above
        // some corner — could not have reached the frontier.
        for pc in &r.pruned {
            assert!(
                !pc.corners.is_empty(),
                "pruned `{}` has no corners",
                pc.label
            );
            for &(cl, ca) in &pc.corners {
                assert!(
                    r.points.iter().any(|p| {
                        p.latency_cycles <= cl
                            && p.area <= ca
                            && (p.latency_cycles < cl || p.area < ca)
                    }),
                    "pruned `{}` corner ({cl} cycles, {ca:.1} area) is not dominated",
                    pc.label,
                );
            }
            // The recorded witnesses name real completed points that do
            // the dominating.
            assert!(
                !pc.dominated_by.is_empty(),
                "`{}` has no witnesses",
                pc.label
            );
            for w in &pc.dominated_by {
                let witness =
                    r.points.iter().find(|p| &p.label == w).unwrap_or_else(|| {
                        panic!("witness `{w}` of `{}` is not a point", pc.label)
                    });
                assert!(pc.corners.iter().any(|&(cl, ca)| {
                    witness.latency_cycles <= cl
                        && witness.area <= ca
                        && (witness.latency_cycles < cl || witness.area < ca)
                }));
            }
        }
        // Evaluations count only the jobs that actually ran, and the wave
        // stats account for every unique job exactly once.
        let unbudgeted = explore(&f, &swept_config(), &lib);
        assert!(r.evaluations <= unbudgeted.evaluations);
        let evaluated: usize = r.wave_stats.iter().map(|w| w.evaluated).sum();
        let wave_pruned: usize = r.wave_stats.iter().map(|w| w.pruned).sum();
        assert_eq!(evaluated, r.evaluations);
        assert_eq!(evaluated + wave_pruned, unbudgeted.evaluations);
        assert!((0.0..=1.0).contains(&r.prune_rate()));
    }

    #[test]
    fn per_loop_grid_reaches_the_combinatorial_count() {
        let f = two_loops();
        let lib = TechLibrary::asic_100mhz();
        let grid = LoopGrid {
            unroll: vec![("l1".into(), vec![1, 2, 4]), ("l2".into(), vec![1, 2, 4])],
            pipeline: Vec::new(),
        };
        assert_eq!(grid.points_per_clock(), 9);
        let cfg = ExploreConfig {
            loop_grids: Some(grid),
            merge_policies: vec![MergePolicy::Off],
            ..ExploreConfig::default()
        };
        let r = explore(&f, &cfg, &lib);
        // 3 × 3 per-loop factors, one clock, one policy: every candidate
        // is a unique directive set and every label is distinct.
        assert_eq!(r.points.len() + r.failures.len(), 9);
        assert_eq!(r.evaluations, 9);
        let mut labels: Vec<&String> = r.points.iter().map(|p| &p.label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), r.points.len(), "grid labels are unique");
        // The asymmetric assignments the uniform sweep cannot reach exist.
        assert!(r.points.iter().any(|p| p.label.contains("U[l1=2,l2=4]")));
        // A grid point at the defaults memo-aliases the plain rolled
        // design: same metrics as the uniform sweep's U1 point.
        let uniform = explore(
            &f,
            &ExploreConfig {
                unroll_factors: vec![1],
                merge_policies: vec![MergePolicy::Off],
                per_loop_refinement: false,
                ..ExploreConfig::default()
            },
            &lib,
        );
        let rolled_grid = r
            .points
            .iter()
            .find(|p| p.label.contains("U[l1=1,l2=1]"))
            .expect("rolled grid point");
        let rolled_uniform = &uniform.points[0];
        assert_eq!(rolled_grid.latency_cycles, rolled_uniform.latency_cycles);
        assert_eq!(rolled_grid.area, rolled_uniform.area);
    }

    #[test]
    fn budgeted_grid_sweep_preserves_the_frontier() {
        let f = two_loops();
        let lib = TechLibrary::asic_100mhz();
        let cfg = ExploreConfig {
            clock_periods_ns: vec![5.0, 10.0, 20.0],
            loop_grids: Some(LoopGrid {
                unroll: vec![
                    ("l1".into(), vec![1, 2, 4, 8]),
                    ("l2".into(), vec![1, 2, 4, 8]),
                ],
                pipeline: vec![("l2".into(), vec![None, Some(2)])],
            }),
            ..ExploreConfig::default()
        };
        let reference = explore_serial(&f, &cfg, &lib);
        let budgeted = explore(
            &f,
            &ExploreConfig {
                budget: Some(ExploreBudget {
                    min_prune_cost_ns: 0,
                }),
                ..cfg.clone()
            },
            &lib,
        );
        let rf: Vec<_> = reference
            .pareto()
            .iter()
            .map(|p| (p.latency_cycles, p.area))
            .collect();
        let bf: Vec<_> = budgeted
            .pareto()
            .iter()
            .map(|p| (p.latency_cycles, p.area))
            .collect();
        assert_eq!(rf, bf, "budgeted grid sweep moved the frontier");
        // Pruning fires on a grid this dense, and every candidate is
        // accounted for: a point, a failure, or a pruned record.
        assert!(!budgeted.pruned.is_empty(), "no pruning on a dense grid");
        assert_eq!(
            budgeted.points.len() + budgeted.pruned.len() + budgeted.failures.len(),
            reference.points.len() + reference.failures.len()
        );
    }

    #[test]
    fn zero_floor_pruning_is_deterministic_across_serial_and_parallel() {
        // With `min_prune_cost_ns == 0` the cost model never vetoes a
        // prune, so the wave protocol alone decides — and it only consults
        // completed earlier waves, making the full result (points, pruned
        // set, evaluations) identical regardless of threading.
        let f = two_loops();
        let lib = TechLibrary::asic_100mhz();
        let cfg = ExploreConfig {
            budget: Some(ExploreBudget {
                min_prune_cost_ns: 0,
            }),
            ..swept_config()
        };
        let par = explore(&f, &cfg, &lib);
        let ser = explore_serial(&f, &cfg, &lib);
        let key = |r: &ExploreResult| {
            (
                r.points
                    .iter()
                    .map(|p| (p.label.clone(), p.latency_cycles, p.area))
                    .collect::<Vec<_>>(),
                r.pruned.iter().map(|p| p.label.clone()).collect::<Vec<_>>(),
                r.evaluations,
            )
        };
        assert_eq!(key(&par), key(&ser));
    }

    #[test]
    fn prohibitive_cost_floor_disables_pruning() {
        let f = two_loops();
        let lib = TechLibrary::asic_100mhz();
        let cfg = ExploreConfig {
            budget: Some(ExploreBudget {
                min_prune_cost_ns: u64::MAX,
            }),
            ..swept_config()
        };
        let r = explore(&f, &cfg, &lib);
        let unbudgeted = explore(&f, &swept_config(), &lib);
        assert!(r.pruned.is_empty());
        assert_eq!(r.evaluations, unbudgeted.evaluations);
        assert_eq!(r.points.len(), unbudgeted.points.len());
    }

    #[test]
    fn fused_all_checker_sees_the_real_synthesis_result() {
        use std::sync::Mutex;
        let f = two_loops();
        let lib = TechLibrary::asic_100mhz();
        let cfg = ExploreConfig {
            verify: VerifyLevel::All,
            ..ExploreConfig::default()
        };
        let seen: Mutex<Vec<String>> = Mutex::new(Vec::new());
        let r = explore_with_check(&f, &cfg, &lib, &|func, d, l, result| {
            // The stored result must be the very design the explorer
            // reports — byte-for-byte equal metrics to a fresh synthesis.
            let fresh = crate::synthesize::synthesize(func, d, l).expect("feasible");
            assert_eq!(result.metrics.latency_cycles, fresh.metrics.latency_cycles);
            assert_eq!(result.metrics.area, fresh.metrics.area);
            seen.lock()
                .expect("no panics")
                .push(format!("{:?}", d.merge_policy));
            if d.merge_policy == MergePolicy::AllowHazards {
                Err("rejected for the test".into())
            } else {
                Ok(())
            }
        });
        // Each unique feasible job was checked exactly once.
        assert_eq!(seen.lock().expect("no panics").len(), r.evaluations);
        // Every AllowHazards point (and only those) failed.
        let failed: Vec<&String> = r.verify_failures.iter().map(|(l, _)| l).collect();
        for p in &r.points {
            assert_eq!(
                failed.contains(&&p.label),
                p.directives.merge_policy == MergePolicy::AllowHazards,
                "{}",
                p.label
            );
        }
    }

    #[test]
    fn fused_pareto_checks_only_the_frontier() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let f = two_loops();
        let lib = TechLibrary::asic_100mhz();
        let cfg = ExploreConfig {
            verify: VerifyLevel::Pareto,
            ..ExploreConfig::default()
        };
        let checks = AtomicUsize::new(0);
        let r = explore_with_check(&f, &cfg, &lib, &|_, _, _, _| {
            checks.fetch_add(1, Ordering::Relaxed);
            Err("always fails".into())
        });
        let frontier = r.pareto();
        // One check per unique frontier job, never more than frontier
        // points, and failures name exactly the frontier labels in order.
        assert!(checks.load(Ordering::Relaxed) <= frontier.len());
        assert!(checks.load(Ordering::Relaxed) >= 1);
        let failed: Vec<&String> = r.verify_failures.iter().map(|(l, _)| l).collect();
        let frontier_labels: Vec<&String> = frontier.iter().map(|p| &p.label).collect();
        assert_eq!(failed, frontier_labels);
    }

    #[test]
    fn serial_reference_flow_matches_the_fused_flow() {
        let f = two_loops();
        let lib = TechLibrary::asic_100mhz();
        let cfg = ExploreConfig {
            verify: VerifyLevel::All,
            ..ExploreConfig::default()
        };
        let fused = explore_with_check(&f, &cfg, &lib, &|_, _, _, _| Ok(()));
        let serial = explore_with_check_serial(&f, &cfg, &lib, &|_, _, _| Ok(()));
        assert_eq!(fused.points.len(), serial.points.len());
        for (a, b) in fused.points.iter().zip(&serial.points) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.latency_cycles, b.latency_cycles);
            assert_eq!(a.area, b.area);
        }
        assert!(fused.verify_failures.is_empty());
        assert!(serial.verify_failures.is_empty());
    }
}
