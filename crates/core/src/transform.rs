//! Loop transformations: unrolling and merging (Sections 2.3–2.4).
//!
//! Both transforms rewrite the structured IR and are verified against the
//! interpreter in tests. Merging performs a value-based dependence analysis:
//! interleaving the iterations of loops that originally ran back-to-back is
//! bit-exact only when no read of a shared variable can observe a write
//! from the *wrong side* of the original loop boundary. The paper's
//! `ffe`/`dfe` merge is exact; its adaptation/shift merge is not (the shift
//! loops overwrite taps the adaptation loops still read), which the
//! analysis reports as hazards. Under the default
//! [`MergePolicy::AllowHazards`](crate::MergePolicy) the merge
//! proceeds anyway — mirroring the tool run the paper reports — and the
//! hazards only perturb the sign-LMS gradient (quantified in the test
//! suite).

use std::collections::BTreeMap;
use std::fmt;

use hls_ir::Loop;
use hls_ir::{CmpOp, Expr, Function, Stmt, Ty, Var, VarId, VarKind};

use crate::directives::{Directives, MergePolicy, Unroll};

/// Kind of cross-boundary dependence violated by a merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HazardKind {
    /// A later loop reads a value before the earlier loop has written it.
    ReadBeforeWrite,
    /// An earlier loop's read observes a later loop's write too early.
    WriteBeforeRead,
    /// Two writes land in the wrong order.
    WriteOrder,
}

impl fmt::Display for HazardKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HazardKind::ReadBeforeWrite => f.write_str("read-before-write"),
            HazardKind::WriteBeforeRead => f.write_str("write-before-read"),
            HazardKind::WriteOrder => f.write_str("write-order"),
        }
    }
}

/// One detected merge hazard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeHazard {
    /// Label of the earlier loop.
    pub first: String,
    /// Label of the later loop.
    pub second: String,
    /// The shared variable.
    pub var: String,
    /// The dependence kind violated.
    pub kind: HazardKind,
}

impl fmt::Display for MergeHazard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "merging `{}` with `{}` breaks a {} dependence on `{}`",
            self.first, self.second, self.kind, self.var
        )
    }
}

/// Report of one performed merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeReport {
    /// Labels of the merged loops, in order.
    pub merged: Vec<String>,
    /// The surviving label (the first loop's).
    pub label: String,
    /// Trip count of the merged loop.
    pub trip_count: usize,
    /// Hazards accepted by the merge (empty when bit-exact).
    pub hazards: Vec<MergeHazard>,
}

/// Output of the transform pipeline.
#[derive(Debug, Clone)]
pub struct TransformResult {
    /// The rewritten function.
    pub func: Function,
    /// Every merge performed.
    pub merges: Vec<MergeReport>,
}

impl TransformResult {
    /// All hazards across all merges.
    pub fn hazards(&self) -> Vec<&MergeHazard> {
        self.merges.iter().flat_map(|m| m.hazards.iter()).collect()
    }
}

/// Applies unrolling then merging according to `directives`.
///
/// Unrolling runs first so that merging sees the post-unroll trip counts —
/// this is what makes the paper's third architecture merge an 8-iteration
/// `ffe` with a 16/2 = 8-iteration `dfe`.
pub fn apply_loop_transforms(func: &Function, directives: &Directives) -> TransformResult {
    let mut func = func.clone();
    narrow_counters(&mut func);
    unroll_all(&mut func, directives);
    let merges = merge_top_level(&mut func, directives);
    TransformResult { func, merges }
}

/// Automatic bit reduction for loop counters (the paper's Figure 2): each
/// counter shrinks to the minimal signed width covering every value it
/// takes, including the exit value the final comparison evaluates.
fn narrow_counters(func: &mut Function) {
    let narrowed: Vec<(VarId, u32)> = func
        .loops()
        .iter()
        .map(|l| {
            let mut vals = l.iteration_values();
            let exit = vals.last().map(|v| v + l.step).unwrap_or(l.start);
            vals.push(exit);
            let width = vals
                .iter()
                .map(|v| fixpt::BitInt::required_width(*v as i128, fixpt::Signedness::Signed))
                .max()
                .unwrap_or(2);
            (l.var, width)
        })
        .collect();
    for (var, width) in narrowed {
        func.vars[var.index()].ty = Ty::int(width.max(2));
    }
}

// ---------------------------------------------------------------------------
// Unrolling
// ---------------------------------------------------------------------------

fn unroll_all(func: &mut Function, directives: &Directives) {
    let body = std::mem::take(&mut func.body);
    let mut vars = std::mem::take(&mut func.vars);
    let new_body = unroll_block(body, directives, &mut vars);
    func.vars = vars;
    func.body = new_body;
}

fn unroll_block(stmts: Vec<Stmt>, directives: &Directives, vars: &mut Vec<Var>) -> Vec<Stmt> {
    let mut out = Vec::new();
    for s in stmts {
        match s {
            Stmt::For(l) => out.extend(unroll_loop(l, directives, vars)),
            Stmt::If { cond, then_, else_ } => out.push(Stmt::If {
                cond,
                then_: unroll_block(then_, directives, vars),
                else_: unroll_block(else_, directives, vars),
            }),
            other => out.push(other),
        }
    }
    out
}

fn unroll_loop(mut l: Loop, directives: &Directives, vars: &mut Vec<Var>) -> Vec<Stmt> {
    // Recurse into the body first (nested loops may carry directives too).
    l.body = unroll_block(std::mem::take(&mut l.body), directives, vars);
    let d = directives.loop_directive(&l.label);
    let trip = l.trip_count();
    let factor = d.unroll.factor(trip);
    if factor <= 1 || trip == 0 {
        return vec![Stmt::For(l)];
    }

    // The old counter becomes an ordinary (dead after substitution) local.
    vars[l.var.index()].kind = VarKind::Local;

    if matches!(d.unroll, Unroll::Full) || factor >= trip {
        // Full unroll: straight-line copies with constant counters.
        let mut out = Vec::new();
        for k in l.iteration_values() {
            out.push(Stmt::Assign {
                var: l.var,
                value: Expr::int_const(k),
            });
            out.extend(l.body.iter().cloned());
        }
        return out;
    }

    // Partial unroll: ceil(trip / factor) iterations of `factor` body
    // copies. Each copy gets a strength-reduced *induction register* that
    // starts at `start + j*step` and advances by `factor*step` per
    // iteration, so no multiplier sits on the index path.
    let new_trip = trip.div_ceil(factor);
    let m = fresh_counter(vars, &format!("{}_u", l.label), new_trip as i64);
    let stride = l.step * factor as i64;
    let mut init = Vec::new();
    let mut body = Vec::new();
    for j in 0..factor {
        let start_j = l.start + l.step * j as i64;
        // Width must cover every value plus the final (overshooting)
        // increment of an unconditional induction update.
        let last = start_j + stride * (new_trip as i64 - 1);
        let width = [start_j, last, last + stride]
            .iter()
            .map(|v| fixpt::BitInt::required_width(*v as i128, fixpt::Signedness::Signed))
            .max()
            .unwrap_or(2)
            .max(2);
        let k_ind = VarId::from_raw(vars.len() as u32);
        vars.push(Var {
            name: format!("{}_k{j}", l.label),
            ty: Ty::int(width),
            kind: VarKind::Local,
            len: None,
        });
        init.push(Stmt::Assign {
            var: k_ind,
            value: Expr::int_const(start_j),
        });
        // Body copy with the counter substituted by the induction register.
        let copy: Vec<Stmt> = l
            .body
            .iter()
            .map(|st| substitute_stmt(st, l.var, k_ind))
            .collect();
        // Copy j runs in the first q_j iterations.
        let q_j = (trip - 1 - j) / factor + 1;
        if q_j == new_trip {
            body.extend(copy);
        } else {
            let cond = Expr::cmp(CmpOp::Lt, Expr::var(m), Expr::int_const(q_j as i64));
            body.push(Stmt::If {
                cond,
                then_: copy,
                else_: Vec::new(),
            });
        }
        // Unconditional induction update (the overshoot is covered by the
        // register width and never observed).
        body.push(Stmt::Assign {
            var: k_ind,
            value: Expr::add(Expr::var(k_ind), Expr::int_const(stride)),
        });
    }
    let mut out = init;
    out.push(Stmt::For(Loop {
        label: l.label,
        var: m,
        start: 0,
        cmp: CmpOp::Lt,
        bound: new_trip as i64,
        step: 1,
        body,
    }));
    out
}

/// Substitutes every use of scalar `from` with `to` in one statement.
fn substitute_stmt(s: &Stmt, from: VarId, to: VarId) -> Stmt {
    let map = |v: VarId| (v == from).then(|| Expr::var(to));
    match s {
        Stmt::Assign { var, value } => Stmt::Assign {
            var: if *var == from { to } else { *var },
            value: value.substitute(&map),
        },
        Stmt::Store {
            array,
            index,
            value,
        } => Stmt::Store {
            array: *array,
            index: index.substitute(&map),
            value: value.substitute(&map),
        },
        Stmt::For(l) => Stmt::For(Loop {
            body: l
                .body
                .iter()
                .map(|st| substitute_stmt(st, from, to))
                .collect(),
            ..l.clone()
        }),
        Stmt::If { cond, then_, else_ } => Stmt::If {
            cond: cond.substitute(&map),
            then_: then_
                .iter()
                .map(|st| substitute_stmt(st, from, to))
                .collect(),
            else_: else_
                .iter()
                .map(|st| substitute_stmt(st, from, to))
                .collect(),
        },
    }
}

fn fresh_counter(vars: &mut Vec<Var>, name: &str, bound: i64) -> VarId {
    let id = VarId::from_raw(vars.len() as u32);
    let width = fixpt::BitInt::required_width(bound as i128, fixpt::Signedness::Signed).max(2);
    vars.push(Var {
        name: name.to_string(),
        ty: Ty::int(width),
        kind: VarKind::Counter,
        len: None,
    });
    id
}

// ---------------------------------------------------------------------------
// Merging
// ---------------------------------------------------------------------------

fn merge_top_level(func: &mut Function, directives: &Directives) -> Vec<MergeReport> {
    if directives.merge_policy == MergePolicy::Off {
        return Vec::new();
    }
    // Unrolling leaves induction-register initializations between loops;
    // hoist independent statements out of the way so loop adjacency (and
    // thus mergeability) is preserved.
    hoist_between_loops(func);
    let body = std::mem::take(&mut func.body);
    let mut vars = std::mem::take(&mut func.vars);
    let mut reports = Vec::new();
    let mut out: Vec<Stmt> = Vec::new();
    let mut run: Vec<Loop> = Vec::new();

    let flush = |run: &mut Vec<Loop>,
                 out: &mut Vec<Stmt>,
                 vars: &mut Vec<Var>,
                 reports: &mut Vec<MergeReport>| {
        if run.is_empty() {
            return;
        }
        let loops = std::mem::take(run);
        for group in partition_run(&loops, directives, vars) {
            if group.len() == 1 {
                out.push(Stmt::For(group.into_iter().next().expect("single loop")));
            } else {
                let (init, merged, report) = merge_group(group, vars);
                out.extend(init);
                out.push(Stmt::For(merged));
                reports.push(report);
            }
        }
    };

    for s in body {
        match s {
            Stmt::For(l) if !directives.loop_directive(&l.label).no_merge => run.push(l),
            other => {
                flush(&mut run, &mut out, &mut vars, &mut reports);
                out.push(other);
            }
        }
    }
    flush(&mut run, &mut out, &mut vars, &mut reports);

    func.vars = vars;
    func.body = out;
    reports
}

/// Splits a run of adjacent loops into mergeable groups according to policy.
fn partition_run(loops: &[Loop], directives: &Directives, vars: &[Var]) -> Vec<Vec<Loop>> {
    match directives.merge_policy {
        MergePolicy::Off => loops.iter().map(|l| vec![l.clone()]).collect(),
        MergePolicy::AllowHazards => vec![loops.to_vec()],
        MergePolicy::ExactOnly => {
            let mut groups: Vec<Vec<Loop>> = Vec::new();
            for l in loops {
                let fits = groups
                    .last()
                    .is_some_and(|g| g.iter().all(|prev| merge_hazards(prev, l, vars).is_empty()));
                if fits {
                    groups.last_mut().expect("nonempty").push(l.clone());
                } else {
                    groups.push(vec![l.clone()]);
                }
            }
            groups
        }
    }
}

fn merge_group(group: Vec<Loop>, vars: &mut Vec<Var>) -> (Vec<Stmt>, Loop, MergeReport) {
    let label = group[0].label.clone();
    let trip = group.iter().map(Loop::trip_count).max().unwrap_or(0);
    let mut hazards = Vec::new();
    for i in 0..group.len() {
        for j in (i + 1)..group.len() {
            hazards.extend(merge_hazards(&group[i], &group[j], vars));
        }
    }
    let m = fresh_counter(vars, &format!("{label}_m"), trip as i64);
    let mut init = Vec::new();
    let mut body = Vec::new();
    for l in &group {
        // The constituent counter becomes an induction register: set to its
        // start value before the loop and stepped (under the guard) at the
        // end of its section, so no multiplier sits on the index path.
        vars[l.var.index()].kind = VarKind::Local;
        init.push(Stmt::Assign {
            var: l.var,
            value: Expr::int_const(l.start),
        });
        let mut section: Vec<Stmt> = l.body.clone();
        section.push(Stmt::Assign {
            var: l.var,
            value: Expr::add(Expr::var(l.var), Expr::int_const(l.step)),
        });
        if l.trip_count() < trip {
            let cond = Expr::cmp(
                CmpOp::Lt,
                Expr::var(m),
                Expr::int_const(l.trip_count() as i64),
            );
            body.push(Stmt::If {
                cond,
                then_: section,
                else_: Vec::new(),
            });
        } else {
            body.extend(section);
        }
    }
    let merged = Loop {
        label: label.clone(),
        var: m,
        start: 0,
        cmp: CmpOp::Lt,
        bound: trip as i64,
        step: 1,
        body,
    };
    let report = MergeReport {
        merged: group.iter().map(|l| l.label.clone()).collect(),
        label,
        trip_count: trip,
        hazards,
    };
    (init, merged, report)
}

/// Hoists loop-independent straight-line statements upward across loops so
/// that code stranded between two loops does not consume its own FSM state.
pub(crate) fn hoist_between_loops(func: &mut Function) {
    let mut body = std::mem::take(&mut func.body);
    let mut changed = true;
    while changed {
        changed = false;
        for i in 1..body.len() {
            let movable = matches!(body[i], Stmt::Assign { .. } | Stmt::Store { .. });
            if !movable || !matches!(body[i - 1], Stmt::For(_)) {
                continue;
            }
            let stmt_reads = body[i].reads();
            let stmt_writes = body[i].writes();
            let Stmt::For(l) = &body[i - 1] else {
                unreachable!()
            };
            let loop_reads: Vec<VarId> = l.body.iter().flat_map(|s| s.reads()).collect();
            let mut loop_writes: Vec<VarId> = l.body.iter().flat_map(|s| s.writes()).collect();
            loop_writes.push(l.var);
            let conflict = stmt_reads.iter().any(|v| loop_writes.contains(v))
                || stmt_writes
                    .iter()
                    .any(|v| loop_writes.contains(v) || loop_reads.contains(v));
            if !conflict {
                body.swap(i - 1, i);
                changed = true;
            }
        }
    }
    func.body = body;
}

// ---------------------------------------------------------------------------
// Dependence analysis
// ---------------------------------------------------------------------------

/// One observed variable access during abstract per-iteration execution.
#[derive(Debug, Clone, PartialEq)]
struct Access {
    var: VarId,
    /// Element index when statically known; `None` means "any element".
    index: Option<i64>,
    write: bool,
    /// Merged-iteration slot in which the access happens.
    iter: usize,
}

/// Computes the hazards created by interleaving `first` (originally earlier)
/// with `second` iteration-by-iteration.
///
/// Within one merged iteration `first`'s body executes before `second`'s, so
/// an access pair is ordered correctly iff `first`'s slot ≤ `second`'s slot
/// for first→second dependences, and strictly `<` the other way around.
pub fn merge_hazards(first: &Loop, second: &Loop, vars: &[Var]) -> Vec<MergeHazard> {
    let acc1 = loop_accesses(first);
    let acc2 = loop_accesses(second);
    let mut hazards = Vec::new();
    let mut push = |var: VarId, kind: HazardKind| {
        let h = MergeHazard {
            first: first.label.clone(),
            second: second.label.clone(),
            var: vars[var.index()].name.clone(),
            kind,
        };
        if !hazards.contains(&h) {
            hazards.push(h);
        }
    };
    for a1 in &acc1 {
        for a2 in &acc2 {
            if a1.var != a2.var || !may_alias(a1.index, a2.index) {
                continue;
            }
            match (a1.write, a2.write) {
                // first writes, second reads: original order write→read;
                // merged keeps it iff write slot <= read slot.
                (true, false) => {
                    if a1.iter > a2.iter {
                        push(a1.var, HazardKind::ReadBeforeWrite);
                    }
                }
                // first reads, second writes: original order read→write;
                // merged keeps it iff read slot <= write slot (same slot is
                // fine: first's body runs before second's).
                (false, true) => {
                    if a1.iter > a2.iter {
                        push(a1.var, HazardKind::WriteBeforeRead);
                    }
                }
                (true, true) => {
                    if a1.iter > a2.iter {
                        push(a1.var, HazardKind::WriteOrder);
                    }
                }
                (false, false) => {}
            }
        }
    }
    hazards
}

/// Abstractly executes every iteration of a loop, recording accesses with
/// statically-evaluated indices where possible.
fn loop_accesses(l: &Loop) -> Vec<Access> {
    let mut out = Vec::new();
    for (slot, k) in l.iteration_values().into_iter().enumerate() {
        let mut env: BTreeMap<VarId, i64> = BTreeMap::new();
        env.insert(l.var, k);
        collect_accesses(&l.body, &mut env, slot, &mut out);
    }
    out
}

fn collect_accesses(
    stmts: &[Stmt],
    env: &mut BTreeMap<VarId, i64>,
    slot: usize,
    out: &mut Vec<Access>,
) {
    for s in stmts {
        match s {
            Stmt::Assign { var, value } => {
                expr_accesses(value, env, slot, out);
                out.push(Access {
                    var: *var,
                    index: Some(0),
                    write: true,
                    iter: slot,
                });
                match eval_int(value, env) {
                    Some(v) => {
                        env.insert(*var, v);
                    }
                    None => {
                        env.remove(var);
                    }
                }
            }
            Stmt::Store {
                array,
                index,
                value,
            } => {
                expr_accesses(index, env, slot, out);
                expr_accesses(value, env, slot, out);
                out.push(Access {
                    var: *array,
                    index: eval_int(index, env),
                    write: true,
                    iter: slot,
                });
            }
            Stmt::For(inner) => {
                // Nested loop: execute abstractly with its own counter.
                for k in inner.iteration_values() {
                    env.insert(inner.var, k);
                    collect_accesses(&inner.body, env, slot, out);
                }
            }
            Stmt::If { cond, then_, else_ } => {
                expr_accesses(cond, env, slot, out);
                match eval_bool(cond, env) {
                    Some(true) => collect_accesses(then_, env, slot, out),
                    Some(false) => collect_accesses(else_, env, slot, out),
                    None => {
                        // Both branches may run; scalars they write become
                        // unknown.
                        let mut e1 = env.clone();
                        collect_accesses(then_, &mut e1, slot, out);
                        let mut e2 = env.clone();
                        collect_accesses(else_, &mut e2, slot, out);
                        let keys: Vec<VarId> = env.keys().copied().collect();
                        for k in keys {
                            if e1.get(&k) != Some(&env[&k]) || e2.get(&k) != Some(&env[&k]) {
                                env.remove(&k);
                            }
                        }
                    }
                }
            }
        }
    }
}

fn expr_accesses(e: &Expr, env: &BTreeMap<VarId, i64>, slot: usize, out: &mut Vec<Access>) {
    match e {
        Expr::Var(v) => out.push(Access {
            var: *v,
            index: Some(0),
            write: false,
            iter: slot,
        }),
        Expr::Load { array, index } => {
            expr_accesses(index, env, slot, out);
            out.push(Access {
                var: *array,
                index: eval_int(index, env),
                write: false,
                iter: slot,
            });
        }
        Expr::Const(_) | Expr::ConstBool(_) => {}
        Expr::Unary { arg, .. } | Expr::Cast { arg, .. } => expr_accesses(arg, env, slot, out),
        Expr::Binary { lhs, rhs, .. } | Expr::Compare { lhs, rhs, .. } => {
            expr_accesses(lhs, env, slot, out);
            expr_accesses(rhs, env, slot, out);
        }
        Expr::Select { cond, then_, else_ } => {
            expr_accesses(cond, env, slot, out);
            expr_accesses(then_, env, slot, out);
            expr_accesses(else_, env, slot, out);
        }
    }
}

fn may_alias(a: Option<i64>, b: Option<i64>) -> bool {
    match (a, b) {
        (Some(x), Some(y)) => x == y,
        _ => true,
    }
}

/// Best-effort static integer evaluation (affine counter expressions).
fn eval_int(e: &Expr, env: &BTreeMap<VarId, i64>) -> Option<i64> {
    match e {
        Expr::Const(c) => Some(c.to_i64()),
        Expr::Var(v) => env.get(v).copied(),
        Expr::Binary { op, lhs, rhs } => {
            let a = eval_int(lhs, env)?;
            let b = eval_int(rhs, env)?;
            match op {
                hls_ir::BinOp::Add => Some(a + b),
                hls_ir::BinOp::Sub => Some(a - b),
                hls_ir::BinOp::Mul => Some(a * b),
                _ => None,
            }
        }
        Expr::Cast { arg, .. } => eval_int(arg, env),
        _ => None,
    }
}

fn eval_bool(e: &Expr, env: &BTreeMap<VarId, i64>) -> Option<bool> {
    match e {
        Expr::ConstBool(b) => Some(*b),
        Expr::Compare { op, lhs, rhs } => {
            let a = eval_int(lhs, env)?;
            let b = eval_int(rhs, env)?;
            Some(op.eval(a.cmp(&b)))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixpt::{Fixed, Format, Signedness};
    use hls_ir::{FunctionBuilder, Interpreter, Slot};

    /// Builds `out[k] = a[k] * 2` over n elements, plus a second loop
    /// `acc += out[k]` — merge-exact because out[k] is written at slot k and
    /// read at slot k (first body runs before second within a slot).
    fn exact_pair(n: i64) -> Function {
        let mut b = FunctionBuilder::new("p");
        let a = b.param_array("a", Ty::int(8), n as usize);
        let o = b.param_array("o", Ty::int(10), n as usize);
        let acc = b.param_scalar("acc", Ty::int(16));
        b.for_loop("scale", 0, CmpOp::Lt, n, 1, |b, k| {
            b.store(
                o,
                Expr::var(k),
                Expr::mul(Expr::load(a, Expr::var(k)), Expr::int_const(2)),
            );
        });
        b.for_loop("sum", 0, CmpOp::Lt, n, 1, |b, k| {
            b.assign(acc, Expr::add(Expr::var(acc), Expr::load(o, Expr::var(k))));
        });
        b.build()
    }

    /// A shift loop after a read loop — the paper's hazardous pattern.
    fn hazard_pair() -> Function {
        let mut b = FunctionBuilder::new("h");
        let x = b.param_array("x", Ty::int(8), 8);
        let acc = b.param_scalar("acc", Ty::int(16));
        b.for_loop("read", 0, CmpOp::Lt, 8, 1, |b, k| {
            b.assign(acc, Expr::add(Expr::var(acc), Expr::load(x, Expr::var(k))));
        });
        b.for_loop("shift", 6, CmpOp::Ge, 0, -1, |b, k| {
            b.store(
                x,
                Expr::add(Expr::var(k), Expr::int_const(1)),
                Expr::load(x, Expr::var(k)),
            );
        });
        b.build()
    }

    fn run(func: &Function, inputs: &[(VarId, Slot)]) -> BTreeMap<VarId, Slot> {
        // Fill unsupplied parameters with zeros (scalars and arrays alike).
        let mut all: Vec<(VarId, Slot)> = inputs.to_vec();
        for &p in &func.params {
            if all.iter().any(|(id, _)| *id == p) {
                continue;
            }
            let v = func.var(p);
            let fmt = v.ty.format().expect("numeric param");
            let slot = match v.len {
                Some(n) => Slot::Array(vec![Fixed::zero(fmt); n]),
                None => Slot::Scalar(Fixed::zero(fmt)),
            };
            all.push((p, slot));
        }
        Interpreter::new(func.clone())
            .call(&all)
            .expect("interpreter runs")
    }

    fn int_arr(vals: &[i64], width: u32) -> Slot {
        let fmt = Format::integer(width, Signedness::Signed);
        Slot::Array(vals.iter().map(|v| Fixed::from_int(*v, fmt)).collect())
    }

    #[test]
    fn exact_merge_detected_and_preserves_semantics() {
        let f = exact_pair(6);
        let d = Directives::new(10.0).merge_policy(MergePolicy::ExactOnly);
        let t = apply_loop_transforms(&f, &d);
        assert_eq!(t.merges.len(), 1);
        assert!(t.merges[0].hazards.is_empty());
        assert_eq!(t.merges[0].merged, vec!["scale", "sum"]);
        assert_eq!(t.func.loops().len(), 1);
        assert_eq!(t.func.find_loop("scale").unwrap().trip_count(), 6);

        let a = f.params[0];
        let acc = f.params[2];
        let inputs = vec![(a, int_arr(&[1, -2, 3, -4, 5, -6], 8))];
        let ref_out = run(&f, &inputs);
        let merged_out = run(&t.func, &inputs);
        assert_eq!(
            ref_out[&acc].scalar().unwrap().to_i64(),
            merged_out[&acc].scalar().unwrap().to_i64()
        );
        assert_eq!(
            ref_out[&acc].scalar().unwrap().to_i64(),
            2 * (1 - 2 + 3 - 4 + 5 - 6)
        );
    }

    #[test]
    fn hazardous_merge_detected() {
        let f = hazard_pair();
        let read = f.find_loop("read").unwrap().clone();
        let shift = f.find_loop("shift").unwrap().clone();
        let hz = merge_hazards(&read, &shift, &f.vars);
        assert!(
            hz.iter()
                .any(|h| h.var == "x" && h.kind == HazardKind::WriteBeforeRead),
            "{hz:?}"
        );
    }

    #[test]
    fn exact_only_policy_refuses_hazardous_merge() {
        let f = hazard_pair();
        let d = Directives::new(10.0).merge_policy(MergePolicy::ExactOnly);
        let t = apply_loop_transforms(&f, &d);
        assert!(t.merges.is_empty());
        assert_eq!(t.func.loops().len(), 2);
    }

    #[test]
    fn allow_hazards_merges_and_reports() {
        let f = hazard_pair();
        let d = Directives::new(10.0); // AllowHazards default
        let t = apply_loop_transforms(&f, &d);
        assert_eq!(t.merges.len(), 1);
        assert!(!t.merges[0].hazards.is_empty());
        assert_eq!(t.func.loops().len(), 1);
        assert_eq!(t.func.find_loop("read").unwrap().trip_count(), 8);
    }

    #[test]
    fn merged_loops_with_different_trips_are_guarded() {
        let mut b = FunctionBuilder::new("g");
        let a = b.param_array("a", Ty::int(8), 4);
        let o = b.param_array("o", Ty::int(8), 8);
        b.for_loop("short", 0, CmpOp::Lt, 4, 1, |b, k| {
            b.store(o, Expr::var(k), Expr::load(a, Expr::var(k)));
        });
        b.for_loop("long", 0, CmpOp::Lt, 8, 1, |b, k| {
            b.store(
                o,
                Expr::var(k),
                Expr::add(Expr::load(o, Expr::var(k)), Expr::int_const(1)),
            );
        });
        let f = b.build();
        let d = Directives::new(10.0);
        let t = apply_loop_transforms(&f, &d);
        assert_eq!(t.func.loops().len(), 1);
        let merged = t.func.find_loop("short").unwrap();
        assert_eq!(merged.trip_count(), 8);

        // Semantics: o[k] = a[k] + 1 for k < 4, else 1.
        let a_id = f.params[0];
        let o_id = f.params[1];
        let out = run(&t.func, &[(a_id, int_arr(&[5, 6, 7, 8], 8))]);
        let vals: Vec<i64> = out[&o_id]
            .array()
            .unwrap()
            .iter()
            .map(|v| v.to_i64())
            .collect();
        assert_eq!(vals, vec![6, 7, 8, 9, 1, 1, 1, 1]);
    }

    #[test]
    fn partial_unroll_preserves_semantics() {
        for (n, factor) in [(8, 2), (16, 4), (15, 4), (7, 2), (5, 3)] {
            let f = exact_pair(n);
            let d = Directives::new(10.0)
                .no_merging()
                .unroll("scale", Unroll::Factor(factor))
                .unroll("sum", Unroll::Factor(factor));
            let t = apply_loop_transforms(&f, &d);
            let expect_trip = (n as usize).div_ceil(factor as usize);
            assert_eq!(
                t.func.find_loop("scale").unwrap().trip_count(),
                expect_trip,
                "n={n} f={factor}"
            );

            let vals: Vec<i64> = (0..n).map(|i| i - 3).collect();
            let a = f.params[0];
            let acc = f.params[2];
            let ref_out = run(&f, &[(a, int_arr(&vals, 8))]);
            let unr_out = run(&t.func, &[(a, int_arr(&vals, 8))]);
            assert_eq!(
                ref_out[&acc].scalar().unwrap().to_i64(),
                unr_out[&acc].scalar().unwrap().to_i64(),
                "n={n} f={factor}"
            );
        }
    }

    #[test]
    fn full_unroll_eliminates_loop() {
        let f = exact_pair(4);
        let d = Directives::new(10.0)
            .no_merging()
            .unroll("scale", Unroll::Full);
        let t = apply_loop_transforms(&f, &d);
        assert!(t.func.find_loop("scale").is_none());
        assert!(t.func.find_loop("sum").is_some());

        let a = f.params[0];
        let acc = f.params[2];
        let ref_out = run(&f, &[(a, int_arr(&[9, 8, 7, 6], 8))]);
        let unr_out = run(&t.func, &[(a, int_arr(&[9, 8, 7, 6], 8))]);
        assert_eq!(
            ref_out[&acc].scalar().unwrap().to_i64(),
            unr_out[&acc].scalar().unwrap().to_i64()
        );
    }

    #[test]
    fn unroll_descending_loop_preserves_semantics() {
        // The paper's dfe_shift shape: descending shift with U = 4.
        let mut b = FunctionBuilder::new("s");
        let a = b.param_array("a", Ty::int(8), 16);
        b.for_loop("shift", 14, CmpOp::Ge, 0, -1, |b, k| {
            b.store(
                a,
                Expr::add(Expr::var(k), Expr::int_const(1)),
                Expr::load(a, Expr::var(k)),
            );
        });
        let f = b.build();
        let d = Directives::new(10.0)
            .no_merging()
            .unroll("shift", Unroll::Factor(4));
        let t = apply_loop_transforms(&f, &d);
        assert_eq!(t.func.find_loop("shift").unwrap().trip_count(), 4); // ceil(15/4)

        let vals: Vec<i64> = (0..16).collect();
        let a_id = f.params[0];
        let ref_out = run(&f, &[(a_id, int_arr(&vals, 8))]);
        let unr_out = run(&t.func, &[(a_id, int_arr(&vals, 8))]);
        assert_eq!(
            ref_out[&a_id].array().unwrap(),
            unr_out[&a_id].array().unwrap()
        );
    }

    #[test]
    fn unroll_then_merge_composes() {
        // Like the paper's third architecture: unroll the long loop to match
        // the short one, then merge.
        let mut b = FunctionBuilder::new("c");
        let a = b.param_array("a", Ty::int(8), 8);
        let c = b.param_array("c", Ty::int(8), 16);
        let s1 = b.param_scalar("s1", Ty::int(16));
        let s2 = b.param_scalar("s2", Ty::int(16));
        b.for_loop("short", 0, CmpOp::Lt, 8, 1, |b, k| {
            b.assign(s1, Expr::add(Expr::var(s1), Expr::load(a, Expr::var(k))));
        });
        b.for_loop("long", 0, CmpOp::Lt, 16, 1, |b, k| {
            b.assign(s2, Expr::add(Expr::var(s2), Expr::load(c, Expr::var(k))));
        });
        let f = b.build();
        let d = Directives::new(10.0).unroll("long", Unroll::Factor(2));
        let t = apply_loop_transforms(&f, &d);
        assert_eq!(t.func.loops().len(), 1);
        assert_eq!(t.func.find_loop("short").unwrap().trip_count(), 8);

        let (a_id, c_id, s1_id, s2_id) = (f.params[0], f.params[1], f.params[2], f.params[3]);
        let av: Vec<i64> = (0..8).collect();
        let cv: Vec<i64> = (0..16).map(|i| i * 2).collect();
        let out = run(&t.func, &[(a_id, int_arr(&av, 8)), (c_id, int_arr(&cv, 8))]);
        assert_eq!(
            out[&s1_id].scalar().unwrap().to_i64(),
            av.iter().sum::<i64>()
        );
        assert_eq!(
            out[&s2_id].scalar().unwrap().to_i64(),
            cv.iter().sum::<i64>()
        );
    }

    #[test]
    fn transformed_functions_still_validate() {
        let f = exact_pair(15);
        let d = Directives::new(10.0).unroll("scale", Unroll::Factor(4));
        let t = apply_loop_transforms(&f, &d);
        assert!(
            hls_ir::validate(&t.func).is_empty(),
            "{:?}",
            hls_ir::validate(&t.func)
        );
    }
}
