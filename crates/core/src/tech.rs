//! Technology libraries: delay and area models for datapath operators.
//!
//! Scheduling "with detailed knowledge of the delay of each component"
//! (Section 1 of the paper) needs per-operator delay and area as functions
//! of bitwidth. The paper targets an unnamed ASIC process at 100 MHz and
//! reports only *normalized* area, so the libraries here are calibrated
//! abstract models: delays scale with `log2(width)` for carry-lookahead-like
//! adders and comparators, and roughly linearly for array multipliers; area
//! scales linearly for adders and quadratically for multipliers.

use std::fmt;

/// Classes of hardware operators the scheduler allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Adder (also used for subtraction).
    Add,
    /// Multiplier.
    Mul,
    /// Comparator.
    Cmp,
    /// Two-way multiplexer (select).
    Mux,
    /// Constant shifter / format move (wiring, negligible logic).
    Shift,
    /// Negation (two's complement).
    Neg,
    /// Sign extraction (wiring plus a few gates).
    Sign,
    /// Bit-accurate cast (rounding/saturation logic).
    Cast,
    /// Register-file / register-array read port.
    RegRead,
    /// Register-file / register-array write port.
    RegWrite,
    /// Synchronous memory read (one cycle, for memory-mapped arrays).
    MemRead,
    /// Synchronous memory write.
    MemWrite,
}

impl OpClass {
    /// Every allocatable class, for reports.
    pub const ALL: [OpClass; 12] = [
        OpClass::Add,
        OpClass::Mul,
        OpClass::Cmp,
        OpClass::Mux,
        OpClass::Shift,
        OpClass::Neg,
        OpClass::Sign,
        OpClass::Cast,
        OpClass::RegRead,
        OpClass::RegWrite,
        OpClass::MemRead,
        OpClass::MemWrite,
    ];

    /// `true` for classes that consume a shareable functional unit (as
    /// opposed to wiring or storage ports).
    pub fn is_functional_unit(self) -> bool {
        matches!(
            self,
            OpClass::Add | OpClass::Mul | OpClass::Cmp | OpClass::Neg | OpClass::Cast
        )
    }

    /// Parses a class back from its display name (the inverse of
    /// [`fmt::Display`]), for deserialized reports and directives.
    pub fn parse(name: &str) -> Option<OpClass> {
        OpClass::ALL.into_iter().find(|c| c.to_string() == name)
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::Add => "add",
            OpClass::Mul => "mul",
            OpClass::Cmp => "cmp",
            OpClass::Mux => "mux",
            OpClass::Shift => "shift",
            OpClass::Neg => "neg",
            OpClass::Sign => "sign",
            OpClass::Cast => "cast",
            OpClass::RegRead => "reg_read",
            OpClass::RegWrite => "reg_write",
            OpClass::MemRead => "mem_read",
            OpClass::MemWrite => "mem_write",
        };
        f.write_str(s)
    }
}

/// A delay/area model for one target technology.
///
/// # Examples
///
/// ```
/// use hls_core::{TechLibrary, OpClass};
///
/// let lib = TechLibrary::asic_100mhz();
/// // A 10x10 multiply plus an accumulate chain fits one 10 ns cycle:
/// let mac = lib.delay(OpClass::Mul, 10) + lib.delay(OpClass::Add, 22);
/// assert!(mac < lib.nominal_clock_ns());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TechLibrary {
    name: String,
    nominal_clock_ns: f64,
    /// Base delay (ns) per class at 1 bit.
    delay_base: f64,
    /// Adder delay per log2(width) step.
    add_log_factor: f64,
    /// Multiplier delay per bit of the wider operand.
    mul_linear_factor: f64,
    /// Area of one register bit.
    reg_bit_area: f64,
    /// Area of a 1-bit full adder.
    add_bit_area: f64,
    /// Area factor for multipliers (× w₁ × w₂).
    mul_bit_area: f64,
    /// Area of a 1-bit 2:1 mux.
    mux_bit_area: f64,
    /// Fixed controller overhead per FSM state.
    state_area: f64,
}

impl TechLibrary {
    /// The paper's target: an ASIC technology characterized for a 100 MHz
    /// (10 ns) system clock.
    pub fn asic_100mhz() -> Self {
        TechLibrary {
            name: "asic_100mhz".into(),
            nominal_clock_ns: 10.0,
            delay_base: 0.25,
            // Calibrated so one complex MAC chains in ~5.5 ns and two in
            // ~8 ns (the paper's merged U=2 filter runs one iteration per
            // 10 ns cycle), while four chained MACs do not fit — which is
            // why the paper picked U=2, not U=4, for the accumulating dfe.
            add_log_factor: 0.22,
            mul_linear_factor: 0.28,
            reg_bit_area: 16.0,
            add_bit_area: 14.0,
            mul_bit_area: 10.0,
            mux_bit_area: 4.0,
            state_area: 60.0,
        }
    }

    /// A slow FPGA-like target: everything is roughly 3× slower but the
    /// relative model is unchanged (used by the paper's FPGA-prototyping
    /// remarks).
    pub fn fpga_slow() -> Self {
        TechLibrary {
            name: "fpga_slow".into(),
            nominal_clock_ns: 30.0,
            delay_base: 0.8,
            add_log_factor: 1.4,
            mul_linear_factor: 1.3,
            reg_bit_area: 2.0, // registers are plentiful in FPGAs
            add_bit_area: 10.0,
            mul_bit_area: 9.0,
            mux_bit_area: 6.0, // routing-dominated muxes are expensive
            state_area: 40.0,
        }
    }

    /// The library's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Looks a built-in library up by name (for serialized requests).
    pub fn by_name(name: &str) -> Option<TechLibrary> {
        match name {
            "asic_100mhz" => Some(TechLibrary::asic_100mhz()),
            "fpga_slow" => Some(TechLibrary::fpga_slow()),
            _ => None,
        }
    }

    /// A stable fingerprint of every calibration constant in the model.
    ///
    /// Two libraries with the same fingerprint schedule and allocate
    /// identically, so the fingerprint participates in content-addressed
    /// artifact digests (`hls-serve`). Floats are rendered via their IEEE-754
    /// bit patterns so the string is bit-exact across processes.
    pub fn fingerprint(&self) -> String {
        format!(
            "{};clk={:016x};base={:016x};addlog={:016x};mullin={:016x};reg={:016x};add={:016x};mul={:016x};mux={:016x};state={:016x}",
            self.name,
            self.nominal_clock_ns.to_bits(),
            self.delay_base.to_bits(),
            self.add_log_factor.to_bits(),
            self.mul_linear_factor.to_bits(),
            self.reg_bit_area.to_bits(),
            self.add_bit_area.to_bits(),
            self.mul_bit_area.to_bits(),
            self.mux_bit_area.to_bits(),
            self.state_area.to_bits(),
        )
    }

    /// The clock period the library was characterized for.
    pub fn nominal_clock_ns(&self) -> f64 {
        self.nominal_clock_ns
    }

    /// Returns a copy with the base operator delay nudged by `delta_ns`.
    ///
    /// This is a calibration hook: it lets tooling (and the cache
    /// key-soundness tests) derive a library whose timing model differs in
    /// exactly one constant, which must change [`TechLibrary::fingerprint`]
    /// and therefore miss every content-addressed cache keyed on it.
    pub fn with_delay_base_offset(&self, delta_ns: f64) -> Self {
        let mut lib = self.clone();
        lib.delay_base += delta_ns;
        lib
    }

    /// Propagation delay (ns) of one operator at the given output width.
    pub fn delay(&self, class: OpClass, width: u32) -> f64 {
        let w = width.max(1) as f64;
        let log_w = w.log2().max(1.0);
        match class {
            OpClass::Add | OpClass::Cmp => self.delay_base + self.add_log_factor * log_w,
            OpClass::Mul => self.delay_base + self.mul_linear_factor * w,
            OpClass::Mux => self.delay_base,
            OpClass::Shift => 0.0, // constant shifts, enables: pure wiring
            OpClass::Neg => self.delay_base + 0.5 * self.add_log_factor * log_w,
            OpClass::Sign => self.delay_base,
            OpClass::Cast => self.delay_base + 0.25 * self.add_log_factor * log_w,
            // Register reads are clock-to-Q; writes are the clock edge
            // itself (the D input only needs to settle within the period).
            OpClass::RegRead => 0.2,
            OpClass::RegWrite => 0.0,
            OpClass::MemRead | OpClass::MemWrite => 0.45 * self.nominal_clock_ns,
        }
    }

    /// Area of one operator instance. For [`OpClass::Mul`] `width` is the
    /// wider operand; multiplier area grows quadratically.
    pub fn area(&self, class: OpClass, width: u32) -> f64 {
        let w = width.max(1) as f64;
        match class {
            OpClass::Add | OpClass::Cmp => self.add_bit_area * w,
            OpClass::Mul => self.mul_bit_area * w * w,
            OpClass::Mux => self.mux_bit_area * w,
            OpClass::Shift => 0.0,
            OpClass::Neg => 0.6 * self.add_bit_area * w,
            OpClass::Sign => 2.0 * self.mux_bit_area,
            OpClass::Cast => 0.3 * self.add_bit_area * w,
            OpClass::RegRead | OpClass::RegWrite => self.mux_bit_area * w,
            OpClass::MemRead | OpClass::MemWrite => 2.0 * self.mux_bit_area * w,
        }
    }

    /// Area of `bits` register bits.
    pub fn register_area(&self, bits: u64) -> f64 {
        self.reg_bit_area * bits as f64
    }

    /// Controller area for an FSM with `states` states.
    pub fn controller_area(&self, states: usize) -> f64 {
        self.state_area * states as f64
    }

    /// Area of an `inputs`-way mux of the given width (decomposed into 2:1
    /// muxes).
    pub fn mux_tree_area(&self, inputs: usize, width: u32) -> f64 {
        if inputs <= 1 {
            return 0.0;
        }
        self.mux_bit_area * width as f64 * (inputs - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complex_mac_fits_one_asic_cycle() {
        // The paper's merged filter loops execute one complex MAC per cycle:
        // a 10x10 multiply, a product add and an accumulate add, chained.
        let lib = TechLibrary::asic_100mhz();
        let chain = lib.delay(OpClass::RegRead, 10)
            + lib.delay(OpClass::Mul, 10)
            + lib.delay(OpClass::Add, 21)
            + lib.delay(OpClass::Add, 22)
            + lib.delay(OpClass::RegWrite, 22);
        assert!(chain < 10.0, "chain = {chain}");
    }

    #[test]
    fn wide_multiply_does_not_fit_without_pipelining() {
        let lib = TechLibrary::asic_100mhz();
        assert!(lib.delay(OpClass::Mul, 40) > 10.0);
    }

    #[test]
    fn delays_monotone_in_width() {
        let lib = TechLibrary::asic_100mhz();
        for class in [OpClass::Add, OpClass::Mul, OpClass::Cmp, OpClass::Cast] {
            for w in 2..40 {
                assert!(
                    lib.delay(class, w) <= lib.delay(class, w + 1) + 1e-12,
                    "{class} at {w}"
                );
            }
        }
    }

    #[test]
    fn multiplier_area_quadratic() {
        let lib = TechLibrary::asic_100mhz();
        let a10 = lib.area(OpClass::Mul, 10);
        let a20 = lib.area(OpClass::Mul, 20);
        assert!((a20 / a10 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn fpga_slower_than_asic() {
        let asic = TechLibrary::asic_100mhz();
        let fpga = TechLibrary::fpga_slow();
        for class in [OpClass::Add, OpClass::Mul, OpClass::Cmp] {
            assert!(fpga.delay(class, 16) > asic.delay(class, 16), "{class}");
        }
    }

    #[test]
    fn mux_tree_grows_with_inputs() {
        let lib = TechLibrary::asic_100mhz();
        assert_eq!(lib.mux_tree_area(1, 10), 0.0);
        assert!(lib.mux_tree_area(4, 10) > lib.mux_tree_area(2, 10));
    }
}
