//! Lowering: structured IR → schedulable segments plus interface synthesis.
//!
//! The transformed function body is cut into *segments*: maximal loop-free
//! straight-line regions (if-converted into one DFG each) and loops (whose
//! bodies become one DFG executed once per iteration). Two smaller passes
//! run first:
//!
//! - **code motion** — loop-independent statements stranded between loops
//!   are hoisted upward so they do not cost an FSM state of their own (the
//!   paper's `ydfe = 0` between the `nfe` and `dfe` loops);
//! - **output staging** — writes to handshake out-parameters are routed
//!   through a staging register and committed in a dedicated final state
//!   (the registered `*data` output), which is why the paper counts
//!   "three cycles for behavior between loops".

use hls_ir::{CmpOp, Direction, Expr, Function, Stmt, Var, VarId, VarKind};

use crate::dfg::{build_dfg, Dfg};
use crate::directives::{Directives, InterfaceKind};

/// One schedulable region.
#[derive(Debug, Clone, PartialEq)]
pub enum Segment {
    /// Straight-line code: executes once.
    Straight {
        /// The region's data-flow graph.
        dfg: Dfg,
    },
    /// A loop: the body DFG executes once per iteration.
    Loop {
        /// The loop label (post-merge).
        label: String,
        /// Trip count.
        trip: usize,
        /// Counter variable.
        counter: VarId,
        /// Counter start value.
        start: i64,
        /// Exit comparison.
        cmp: CmpOp,
        /// Loop bound.
        bound: i64,
        /// Counter step.
        step: i64,
        /// Requested initiation interval, if the loop is pipelined.
        pipeline_ii: Option<u32>,
        /// The body data-flow graph.
        dfg: Dfg,
    },
}

impl Segment {
    /// The segment's DFG.
    pub fn dfg(&self) -> &Dfg {
        match self {
            Segment::Straight { dfg } => dfg,
            Segment::Loop { dfg, .. } => dfg,
        }
    }

    /// Label for reports.
    pub fn name(&self) -> String {
        match self {
            Segment::Straight { .. } => "<straight>".to_string(),
            Segment::Loop { label, .. } => label.clone(),
        }
    }
}

/// A synthesized port (interface synthesis output).
#[derive(Debug, Clone, PartialEq)]
pub struct Port {
    /// Port name (from the parameter).
    pub name: String,
    /// Data direction.
    pub direction: Direction,
    /// The interface style.
    pub kind: InterfaceKind,
    /// Element width in bits.
    pub width: u32,
    /// Number of elements (1 for scalars).
    pub elements: usize,
}

/// The lowered design.
#[derive(Debug, Clone, PartialEq)]
pub struct Lowered {
    /// The function after staging rewrites (what the segments reference).
    pub func: Function,
    /// Segments in execution order.
    pub segments: Vec<Segment>,
    /// Synthesized ports.
    pub ports: Vec<Port>,
    /// Whether a start/done handshake wraps the design.
    pub handshake: bool,
}

/// Lowers a (transformed) function.
pub fn lower(func: &Function, directives: &Directives) -> Lowered {
    let mut func = func.clone();
    crate::transform::hoist_between_loops(&mut func);
    stage_outputs(&mut func, directives);

    let mut segments = Vec::new();
    let mut run: Vec<Stmt> = Vec::new();
    let body = func.body.clone();
    for s in body {
        match s {
            Stmt::For(l) => {
                if !run.is_empty() {
                    segments.push(Segment::Straight {
                        dfg: build_dfg(&func, &run),
                    });
                    run.clear();
                }
                let d = directives.loop_directive(&l.label);
                segments.push(Segment::Loop {
                    label: l.label.clone(),
                    trip: l.trip_count(),
                    counter: l.var,
                    start: l.start,
                    cmp: l.cmp,
                    bound: l.bound,
                    step: l.step,
                    pipeline_ii: d.pipeline_ii,
                    dfg: build_dfg(&func, &flatten_inner_loops(&l.body)),
                });
            }
            other => run.push(other),
        }
    }
    if !run.is_empty() {
        segments.push(Segment::Straight {
            dfg: build_dfg(&func, &run),
        });
    }

    let ports = synthesize_ports(&func, directives);
    Lowered {
        func,
        segments,
        ports,
        handshake: true,
    }
}

/// Inner loops inside a segment body are fully expanded (the paper's designs
/// have no nesting after transforms; this keeps lowering total).
fn flatten_inner_loops(stmts: &[Stmt]) -> Vec<Stmt> {
    let mut out = Vec::new();
    for s in stmts {
        match s {
            Stmt::For(l) => {
                for k in l.iteration_values() {
                    out.push(Stmt::Assign {
                        var: l.var,
                        value: Expr::int_const(k),
                    });
                    out.extend(flatten_inner_loops(&l.body));
                }
            }
            Stmt::If { cond, then_, else_ } => out.push(Stmt::If {
                cond: cond.clone(),
                then_: flatten_inner_loops(then_),
                else_: flatten_inner_loops(else_),
            }),
            other => out.push(other.clone()),
        }
    }
    out
}

/// Routes assignments to handshake out-parameters through staging registers
/// and appends a final commit statement per staged output.
fn stage_outputs(func: &mut Function, directives: &Directives) {
    let staged: Vec<VarId> = func
        .params
        .iter()
        .copied()
        .filter(|p| {
            let v = func.var(*p);
            !v.is_array()
                && func.param_direction(*p) == Direction::Out
                && directives.interface_kind(&v.name) == InterfaceKind::RegisterHandshake
        })
        .collect();
    if staged.is_empty() {
        return;
    }
    let mut commits = Vec::new();
    for p in staged {
        let decl = func.var(p).clone();
        let stage = VarId::from_raw(func.vars.len() as u32);
        func.vars.push(Var {
            name: format!("{}_stage", decl.name),
            ty: decl.ty,
            kind: VarKind::Local,
            len: None,
        });
        rewrite_var(&mut func.body, p, stage);
        commits.push(Stmt::Assign {
            var: p,
            value: Expr::var(stage),
        });
    }
    func.body.extend(commits);
}

fn rewrite_var(stmts: &mut [Stmt], from: VarId, to: VarId) {
    for s in stmts {
        match s {
            Stmt::Assign { var, value } => {
                if *var == from {
                    *var = to;
                }
                *value = value.substitute(&|v| (v == from).then(|| Expr::var(to)));
            }
            Stmt::Store {
                array,
                index,
                value,
            } => {
                if *array == from {
                    *array = to;
                }
                *index = index.substitute(&|v| (v == from).then(|| Expr::var(to)));
                *value = value.substitute(&|v| (v == from).then(|| Expr::var(to)));
            }
            Stmt::For(l) => rewrite_var(&mut l.body, from, to),
            Stmt::If { cond, then_, else_ } => {
                *cond = cond.substitute(&|v| (v == from).then(|| Expr::var(to)));
                rewrite_var(then_, from, to);
                rewrite_var(else_, from, to);
            }
        }
    }
}

fn synthesize_ports(func: &Function, directives: &Directives) -> Vec<Port> {
    func.params
        .iter()
        .map(|&p| {
            let v = func.var(p);
            Port {
                name: v.name.clone(),
                direction: func.param_direction(p),
                kind: directives.interface_kind(&v.name),
                width: v.ty.width(),
                elements: v.len.unwrap_or(1),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::{FunctionBuilder, Ty};

    /// Models the paper's shape: init, loop, init-between, loop, tail.
    fn two_loop_func() -> Function {
        let mut b = FunctionBuilder::new("two");
        let x = b.param_array("x", Ty::fixed(10, 0), 8);
        let out = b.param_scalar("out", Ty::fixed(20, 4));
        let acc1 = b.local("acc1", Ty::fixed(20, 4));
        let acc2 = b.local("acc2", Ty::fixed(20, 4));
        b.assign(acc1, Expr::int_const(0));
        b.for_loop("l1", 0, CmpOp::Lt, 8, 1, |b, k| {
            b.assign(
                acc1,
                Expr::add(Expr::var(acc1), Expr::load(x, Expr::var(k))),
            );
        });
        // Stranded between the loops, like the paper's `ydfe = 0`.
        b.assign(acc2, Expr::int_const(0));
        b.for_loop("l2", 0, CmpOp::Lt, 8, 1, |b, k| {
            b.assign(
                acc2,
                Expr::add(Expr::var(acc2), Expr::load(x, Expr::var(k))),
            );
        });
        b.assign(out, Expr::add(Expr::var(acc1), Expr::var(acc2)));
        b.build()
    }

    #[test]
    fn hoisting_removes_stranded_state() {
        let f = two_loop_func();
        let d = Directives::new(10.0);
        let lowered = lower(&f, &d);
        // Expected segments: [init straight][l1][l2][tail+commit straight(s)]
        let names: Vec<String> = lowered.segments.iter().map(Segment::name).collect();
        assert_eq!(
            names,
            vec!["<straight>", "l1", "l2", "<straight>"],
            "acc2 init should be hoisted above l1"
        );
    }

    #[test]
    fn output_staging_appends_commit() {
        let f = two_loop_func();
        let d = Directives::new(10.0);
        let lowered = lower(&f, &d);
        // The final straight segment must write the out parameter.
        let last = lowered.segments.last().expect("segments");
        let out_id = f.params[1];
        assert!(last.dfg().live_out.contains(&out_id));
        // The staging variable exists.
        assert!(lowered.func.iter_vars().any(|(_, v)| v.name == "out_stage"));
    }

    #[test]
    fn ports_reflect_interface_synthesis() {
        let f = two_loop_func();
        let d = Directives::new(10.0).interface("x", InterfaceKind::Stream);
        let lowered = lower(&f, &d);
        let x = &lowered.ports[0];
        assert_eq!(x.name, "x");
        assert_eq!(x.kind, InterfaceKind::Stream);
        assert_eq!(x.direction, Direction::In);
        assert_eq!(x.width, 10);
        assert_eq!(x.elements, 8);
        let out = &lowered.ports[1];
        assert_eq!(out.direction, Direction::Out);
        assert_eq!(out.kind, InterfaceKind::RegisterHandshake);
    }

    #[test]
    fn loop_segments_carry_counter_info() {
        let f = two_loop_func();
        let lowered = lower(&f, &Directives::new(10.0));
        match &lowered.segments[1] {
            Segment::Loop {
                label,
                trip,
                start,
                step,
                bound,
                ..
            } => {
                assert_eq!(label, "l1");
                assert_eq!(*trip, 8);
                assert_eq!(*start, 0);
                assert_eq!(*step, 1);
                assert_eq!(*bound, 8);
            }
            other => panic!("expected loop, got {other:?}"),
        }
    }

    #[test]
    fn inner_loops_are_flattened() {
        let mut b = FunctionBuilder::new("nest");
        let a = b.param_array("a", Ty::int(8), 4);
        let out = b.param_scalar("out", Ty::int(16));
        let acc = b.local("acc", Ty::int(16));
        b.for_loop("outer", 0, CmpOp::Lt, 2, 1, |b, _| {
            b.for_loop("inner", 0, CmpOp::Lt, 4, 1, |b, j| {
                b.assign(acc, Expr::add(Expr::var(acc), Expr::load(a, Expr::var(j))));
            });
        });
        b.assign(out, Expr::var(acc));
        let f = b.build();
        let lowered = lower(&f, &Directives::new(10.0));
        // outer remains a loop segment; inner is flattened into its body DFG.
        let loop_segs: Vec<&Segment> = lowered
            .segments
            .iter()
            .filter(|s| matches!(s, Segment::Loop { .. }))
            .collect();
        assert_eq!(loop_segs.len(), 1);
        // Inner flattening yields 4 loads in the body DFG.
        let dfg = loop_segs[0].dfg();
        let loads = dfg
            .iter()
            .filter(|(_, n)| matches!(n.kind, crate::dfg::NodeKind::Load(_)))
            .count();
        assert_eq!(loads, 4);
    }
}
