//! Architectural directives: the designer's synthesis guidance.
//!
//! Section 2 of the paper lists the main architectural transformations —
//! interface synthesis, variable/array mapping, loop pipelining, loop
//! unrolling and scheduling constraints. Directives are the knobs that
//! select between them without touching the source, which is how Table 1's
//! four architectures were produced from one C function.

use std::collections::BTreeMap;

use hls_ir::Json;

use crate::netlist::{NetlistOptConfig, OptLevel};

/// How a loop is unrolled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Unroll {
    /// Keep the loop rolled (the default).
    #[default]
    None,
    /// Partial unroll by the given factor (the paper's `U=2`, `U=4`).
    Factor(u32),
    /// Fully unroll: the loop disappears into straight-line code.
    Full,
}

impl Unroll {
    /// The replication factor for a loop of `trip` iterations.
    pub fn factor(self, trip: usize) -> usize {
        match self {
            Unroll::None => 1,
            Unroll::Factor(f) => (f.max(1) as usize).min(trip.max(1)),
            Unroll::Full => trip.max(1),
        }
    }
}

/// Per-loop directives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoopDirective {
    /// Unrolling for this loop.
    pub unroll: Unroll,
    /// Pipeline the loop with the given initiation interval. `None` leaves
    /// the loop unpipelined.
    pub pipeline_ii: Option<u32>,
    /// Exclude the loop from automatic merging even when merging is enabled.
    pub no_merge: bool,
}

/// Legality policy for loop merging (see `transform::merge` for the
/// dependence analysis behind it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergePolicy {
    /// Merge adjacent loops even when cross-iteration hazards on shared
    /// arrays are detected. This mirrors the paper's tool behaviour, whose
    /// default-constraint run merged the adaptation and shift loops; the
    /// hazards perturb only the sign-LMS gradient (quantified in tests).
    #[default]
    AllowHazards,
    /// Merge only when the interleaving is provably bit-exact.
    ExactOnly,
    /// Never merge.
    Off,
}

/// How an array is realized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArrayMapping {
    /// Split into individual registers: unlimited parallel access (the
    /// right choice for the decoder's small tap/coefficient arrays).
    #[default]
    Registers,
    /// Map to a synchronous memory with the given port counts; accesses
    /// compete for ports and take a full cycle.
    Memory {
        /// Simultaneous read ports.
        read_ports: u32,
        /// Simultaneous write ports.
        write_ports: u32,
    },
}

/// How a parameter is exposed at the design boundary (interface synthesis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InterfaceKind {
    /// Plain wires, sampled at start (inputs) or driven continuously.
    Wire,
    /// Registered with a start/done handshake; out-parameters written in a
    /// dedicated completion state (the paper's registered `*data` output).
    #[default]
    RegisterHandshake,
    /// Array exposed as a memory interface port.
    Memory,
    /// Array streamed over time, one element per transfer (the paper's
    /// `uint10 x[1024]` example in Section 2.1).
    Stream,
}

/// Stream-shell interface synthesis: wrap the synthesized FSMD in a
/// ready/valid handshake shell so the design can be composed into
/// multi-module dataflow systems (the paper's "interface synthesis"
/// directive, extended from single transfers to full token streams).
///
/// One *token* on the input side carries the values of every `In`
/// parameter; one output token carries every `Out` parameter. The shell
/// stalls the core on `!in_valid` / `!out_ready` and adds a registered
/// output stage so `ready` never combinationally depends on `valid`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamInterface {
    /// Default depth of FIFO channels attached to this module's ports
    /// (clamped to ≥ 1 by [`Directives::stream_interface`]).
    pub fifo_depth: u32,
    /// Default first-word-fall-through mode for attached channels: a
    /// token pushed this cycle is visible to the consumer this cycle.
    pub fall_through: bool,
}

impl Default for StreamInterface {
    fn default() -> Self {
        StreamInterface {
            fifo_depth: 2,
            fall_through: false,
        }
    }
}

/// The complete directive set for one synthesis run.
///
/// # Examples
///
/// ```
/// use hls_core::{Directives, Unroll};
///
/// // The paper's third architecture: merging on, U=2 on the 16-iteration
/// // loops.
/// let d = Directives::new(10.0)
///     .unroll("dfe", Unroll::Factor(2))
///     .unroll("dfe_adapt", Unroll::Factor(2))
///     .unroll("dfe_shift", Unroll::Factor(2));
/// assert_eq!(d.loop_directive("dfe").unroll, Unroll::Factor(2));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Directives {
    /// Target clock period in nanoseconds.
    pub clock_period_ns: f64,
    /// Loop merging policy (the tool default enables merging).
    pub merge_policy: MergePolicy,
    /// Per-loop directives, keyed by loop label.
    pub loops: BTreeMap<String, LoopDirective>,
    /// Per-array mapping, keyed by variable name.
    pub arrays: BTreeMap<String, ArrayMapping>,
    /// Per-parameter interface kinds, keyed by parameter name.
    pub interfaces: BTreeMap<String, InterfaceKind>,
    /// Optional cap on functional units per class (scheduling resource
    /// constraint); keys are `OpClass` display names.
    pub fu_limits: BTreeMap<String, u32>,
    /// Netlist optimization between lowering and scheduling (default on
    /// at [`OptLevel::Full`]; part of the canonical request digest).
    pub netlist_opt: NetlistOptConfig,
    /// Stream-interface synthesis: when set, the `stream-shell` pass
    /// wraps the FSMD in a ready/valid handshake shell (`None` keeps the
    /// classic start/done call interface). Part of the canonical request
    /// digest, so shelled and unshelled artifacts can never alias.
    pub stream: Option<StreamInterface>,
}

impl Directives {
    /// Creates a directive set with the given clock period and the tool
    /// defaults: merging enabled, no unrolling, arrays in registers,
    /// register-handshake interfaces.
    pub fn new(clock_period_ns: f64) -> Self {
        Directives {
            clock_period_ns,
            merge_policy: MergePolicy::default(),
            loops: BTreeMap::new(),
            arrays: BTreeMap::new(),
            interfaces: BTreeMap::new(),
            fu_limits: BTreeMap::new(),
            netlist_opt: NetlistOptConfig::default(),
            stream: None,
        }
    }

    /// Requests stream-interface synthesis with the given default FIFO
    /// depth (clamped to ≥ 1) and fall-through mode.
    pub fn stream_interface(mut self, fifo_depth: u32, fall_through: bool) -> Self {
        self.stream = Some(StreamInterface {
            fifo_depth: fifo_depth.max(1),
            fall_through,
        });
        self
    }

    /// Sets the netlist optimization level.
    pub fn netlist_opt_level(mut self, level: OptLevel) -> Self {
        self.netlist_opt.level = level;
        self
    }

    /// Disables loop merging (the paper's second architecture: "none").
    pub fn no_merging(mut self) -> Self {
        self.merge_policy = MergePolicy::Off;
        self
    }

    /// Sets the merge policy.
    pub fn merge_policy(mut self, policy: MergePolicy) -> Self {
        self.merge_policy = policy;
        self
    }

    /// Sets the unroll factor of one loop.
    pub fn unroll(mut self, label: &str, unroll: Unroll) -> Self {
        self.loops.entry(label.to_string()).or_default().unroll = unroll;
        self
    }

    /// Pipelines one loop with the given initiation interval.
    pub fn pipeline(mut self, label: &str, ii: u32) -> Self {
        self.loops.entry(label.to_string()).or_default().pipeline_ii = Some(ii);
        self
    }

    /// Applies one point of a per-loop grid sweep: an unroll factor and a
    /// pipeline-II choice for every swept loop, in one call. Factor 1 and
    /// `None` are the defaults and create **no** per-loop entry, so a grid
    /// point that happens to match the tool defaults canonicalizes (and
    /// memoizes) identically to a directive set that never mentioned the
    /// loop.
    pub fn grid_point(mut self, unroll: &[(&str, u32)], pipeline: &[(&str, Option<u32>)]) -> Self {
        for &(label, f) in unroll {
            if f > 1 {
                self.loops.entry(label.to_string()).or_default().unroll = Unroll::Factor(f);
            }
        }
        for &(label, ii) in pipeline {
            if let Some(ii) = ii {
                self.loops.entry(label.to_string()).or_default().pipeline_ii = Some(ii);
            }
        }
        self
    }

    /// Excludes one loop from merging.
    pub fn no_merge(mut self, label: &str) -> Self {
        self.loops.entry(label.to_string()).or_default().no_merge = true;
        self
    }

    /// Maps one array variable.
    pub fn map_array(mut self, var: &str, mapping: ArrayMapping) -> Self {
        self.arrays.insert(var.to_string(), mapping);
        self
    }

    /// Sets the interface kind of one parameter.
    pub fn interface(mut self, param: &str, kind: InterfaceKind) -> Self {
        self.interfaces.insert(param.to_string(), kind);
        self
    }

    /// Caps the number of functional units of one class.
    pub fn limit_fu(mut self, class: crate::tech::OpClass, max: u32) -> Self {
        self.fu_limits.insert(class.to_string(), max);
        self
    }

    /// The directive for a loop (defaults when unset).
    pub fn loop_directive(&self, label: &str) -> LoopDirective {
        self.loops.get(label).copied().unwrap_or_default()
    }

    /// The mapping for an array (registers when unset).
    pub fn array_mapping(&self, var: &str) -> ArrayMapping {
        self.arrays.get(var).copied().unwrap_or_default()
    }

    /// The interface kind for a parameter (register-handshake when unset).
    pub fn interface_kind(&self, param: &str) -> InterfaceKind {
        self.interfaces.get(param).copied().unwrap_or_default()
    }

    /// The FU limit for a class, if any.
    pub fn fu_limit(&self, class: crate::tech::OpClass) -> Option<u32> {
        self.fu_limits.get(&class.to_string()).copied()
    }

    /// Serializes the directive set to the JSON request schema used by
    /// `hls-serve` (BTreeMap iteration keeps key order deterministic).
    pub fn to_json(&self) -> Json {
        let loops = self
            .loops
            .iter()
            .map(|(label, d)| {
                let unroll = match d.unroll {
                    Unroll::None => Json::str("none"),
                    Unroll::Full => Json::str("full"),
                    Unroll::Factor(f) => Json::count(f as u64),
                };
                let ii = match d.pipeline_ii {
                    Some(ii) => Json::count(ii as u64),
                    None => Json::Null,
                };
                (
                    label.clone(),
                    Json::obj(vec![
                        ("unroll", unroll),
                        ("pipeline_ii", ii),
                        ("no_merge", Json::Bool(d.no_merge)),
                    ]),
                )
            })
            .collect();
        let arrays = self
            .arrays
            .iter()
            .map(|(var, m)| {
                let v = match m {
                    ArrayMapping::Registers => Json::str("registers"),
                    ArrayMapping::Memory {
                        read_ports,
                        write_ports,
                    } => Json::obj(vec![
                        ("read_ports", Json::count(*read_ports as u64)),
                        ("write_ports", Json::count(*write_ports as u64)),
                    ]),
                };
                (var.clone(), v)
            })
            .collect();
        let interfaces = self
            .interfaces
            .iter()
            .map(|(param, k)| {
                let v = match k {
                    InterfaceKind::Wire => "wire",
                    InterfaceKind::RegisterHandshake => "register_handshake",
                    InterfaceKind::Memory => "memory",
                    InterfaceKind::Stream => "stream",
                };
                (param.clone(), Json::str(v))
            })
            .collect();
        let fu_limits = self
            .fu_limits
            .iter()
            .map(|(class, max)| (class.clone(), Json::count(*max as u64)))
            .collect();
        let policy = match self.merge_policy {
            MergePolicy::AllowHazards => "allow_hazards",
            MergePolicy::ExactOnly => "exact_only",
            MergePolicy::Off => "off",
        };
        Json::obj(vec![
            ("clock_period_ns", Json::Num(self.clock_period_ns)),
            ("merge_policy", Json::str(policy)),
            ("loops", Json::Obj(loops)),
            ("arrays", Json::Obj(arrays)),
            ("interfaces", Json::Obj(interfaces)),
            ("fu_limits", Json::Obj(fu_limits)),
            ("netlist_opt", self.netlist_opt.to_json()),
            (
                "stream",
                match &self.stream {
                    None => Json::Null,
                    Some(s) => Json::obj(vec![
                        ("fifo_depth", Json::count(s.fifo_depth as u64)),
                        ("fall_through", Json::Bool(s.fall_through)),
                    ]),
                },
            ),
        ])
    }

    /// Deserializes a directive set from the JSON request schema. Unknown
    /// keys inside known maps are rejected so malformed requests fail loudly.
    pub fn from_json(v: &Json) -> Result<Directives, String> {
        let clock = v
            .get("clock_period_ns")
            .and_then(Json::as_f64)
            .ok_or("directives: missing numeric clock_period_ns")?;
        let mut d = Directives::new(clock);
        d.merge_policy = match v.get("merge_policy").and_then(Json::as_str) {
            None | Some("allow_hazards") => MergePolicy::AllowHazards,
            Some("exact_only") => MergePolicy::ExactOnly,
            Some("off") => MergePolicy::Off,
            Some(other) => return Err(format!("directives: unknown merge_policy {other:?}")),
        };
        for (label, ld) in v.get("loops").and_then(Json::as_obj).unwrap_or(&[]) {
            let unroll = match ld.get("unroll") {
                None => Unroll::None,
                Some(u) => match (u.as_str(), u.as_u64()) {
                    (Some("none"), _) => Unroll::None,
                    (Some("full"), _) => Unroll::Full,
                    (_, Some(f)) => Unroll::Factor(f as u32),
                    _ => return Err(format!("directives: bad unroll for loop {label:?}")),
                },
            };
            let pipeline_ii = match ld.get("pipeline_ii") {
                None | Some(Json::Null) => None,
                Some(ii) => Some(
                    ii.as_u64()
                        .ok_or_else(|| format!("directives: bad pipeline_ii for loop {label:?}"))?
                        as u32,
                ),
            };
            let no_merge = ld.get("no_merge").and_then(Json::as_bool).unwrap_or(false);
            d.loops.insert(
                label.clone(),
                LoopDirective {
                    unroll,
                    pipeline_ii,
                    no_merge,
                },
            );
        }
        for (var, m) in v.get("arrays").and_then(Json::as_obj).unwrap_or(&[]) {
            let mapping =
                match m {
                    Json::Str(s) if s == "registers" => ArrayMapping::Registers,
                    Json::Obj(_) => {
                        ArrayMapping::Memory {
                            read_ports: m.get("read_ports").and_then(Json::as_u64).ok_or_else(
                                || format!("directives: bad mapping for array {var:?}"),
                            )? as u32,
                            write_ports: m.get("write_ports").and_then(Json::as_u64).ok_or_else(
                                || format!("directives: bad mapping for array {var:?}"),
                            )? as u32,
                        }
                    }
                    _ => return Err(format!("directives: bad mapping for array {var:?}")),
                };
            d.arrays.insert(var.clone(), mapping);
        }
        for (param, k) in v.get("interfaces").and_then(Json::as_obj).unwrap_or(&[]) {
            let kind = match k.as_str() {
                Some("wire") => InterfaceKind::Wire,
                Some("register_handshake") => InterfaceKind::RegisterHandshake,
                Some("memory") => InterfaceKind::Memory,
                Some("stream") => InterfaceKind::Stream,
                _ => return Err(format!("directives: bad interface for {param:?}")),
            };
            d.interfaces.insert(param.clone(), kind);
        }
        for (class, max) in v.get("fu_limits").and_then(Json::as_obj).unwrap_or(&[]) {
            if crate::tech::OpClass::parse(class).is_none() {
                return Err(format!("directives: unknown fu class {class:?}"));
            }
            let max = max
                .as_u64()
                .ok_or_else(|| format!("directives: bad fu limit for {class:?}"))?;
            d.fu_limits.insert(class.clone(), max as u32);
        }
        if let Some(n) = v.get("netlist_opt") {
            // Absent key => the default (older serialized forms).
            d.netlist_opt =
                NetlistOptConfig::from_json(n).map_err(|e| format!("directives: {e}"))?;
        }
        match v.get("stream") {
            // Absent key => no stream shell (older serialized forms).
            None | Some(Json::Null) => {}
            Some(s) => {
                let depth = s
                    .get("fifo_depth")
                    .and_then(Json::as_u64)
                    .ok_or("directives: stream needs a numeric fifo_depth")?;
                if depth == 0 {
                    return Err("directives: stream fifo_depth must be >= 1".into());
                }
                d.stream = Some(StreamInterface {
                    fifo_depth: depth as u32,
                    fall_through: s
                        .get("fall_through")
                        .and_then(Json::as_bool)
                        .unwrap_or(false),
                });
            }
        }
        Ok(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::OpClass;

    #[test]
    fn defaults_match_tool_defaults() {
        let d = Directives::new(10.0);
        assert_eq!(d.merge_policy, MergePolicy::AllowHazards);
        assert_eq!(d.loop_directive("anything").unroll, Unroll::None);
        assert_eq!(d.array_mapping("x"), ArrayMapping::Registers);
        assert_eq!(d.interface_kind("data"), InterfaceKind::RegisterHandshake);
        assert_eq!(d.fu_limit(OpClass::Mul), None);
    }

    #[test]
    fn unroll_factor_semantics() {
        assert_eq!(Unroll::None.factor(16), 1);
        assert_eq!(Unroll::Factor(2).factor(16), 2);
        assert_eq!(Unroll::Factor(32).factor(16), 16); // clamped to trip
        assert_eq!(Unroll::Full.factor(16), 16);
        assert_eq!(Unroll::Factor(0).factor(16), 1); // degenerate
    }

    #[test]
    fn grid_point_defaults_leave_no_trace() {
        // A grid point at the defaults must canonicalize exactly like a
        // directive set that never mentioned the loops — otherwise the
        // explorer's memo cache would miss on U1/unpipelined aliases.
        let plain = Directives::new(10.0);
        let gridded = Directives::new(10.0)
            .grid_point(&[("ffe", 1), ("dfe", 1)], &[("ffe", None), ("dfe", None)]);
        assert_eq!(plain, gridded);
        let d = Directives::new(10.0).grid_point(&[("ffe", 4), ("dfe", 1)], &[("dfe", Some(2))]);
        assert_eq!(d.loop_directive("ffe").unroll, Unroll::Factor(4));
        assert_eq!(d.loop_directive("ffe").pipeline_ii, None);
        assert_eq!(d.loop_directive("dfe").unroll, Unroll::None);
        assert_eq!(d.loop_directive("dfe").pipeline_ii, Some(2));
    }

    #[test]
    fn stream_directive_round_trips_and_defaults_off() {
        let plain = Directives::new(10.0);
        assert_eq!(plain.stream, None);
        // Absent key in older serialized forms => None.
        let back = Directives::from_json(&plain.to_json()).unwrap();
        assert_eq!(back.stream, None);

        let d = Directives::new(10.0).stream_interface(4, true);
        assert_eq!(
            d.stream,
            Some(StreamInterface {
                fifo_depth: 4,
                fall_through: true
            })
        );
        let back = Directives::from_json(&d.to_json()).unwrap();
        assert_eq!(back, d);

        // Depth is clamped to >= 1 by the builder and rejected at 0 in JSON.
        assert_eq!(
            Directives::new(10.0).stream_interface(0, false).stream,
            Some(StreamInterface {
                fifo_depth: 1,
                fall_through: false
            })
        );
        let mut bad = d.to_json();
        if let Json::Obj(pairs) = &mut bad {
            for (k, v) in pairs.iter_mut() {
                if k == "stream" {
                    *v = Json::obj(vec![("fifo_depth", Json::count(0))]);
                }
            }
        }
        assert!(Directives::from_json(&bad).is_err());
    }

    #[test]
    fn builder_accumulates() {
        let d = Directives::new(10.0)
            .no_merging()
            .unroll("dfe", Unroll::Factor(2))
            .pipeline("ffe", 1)
            .map_array(
                "x",
                ArrayMapping::Memory {
                    read_ports: 1,
                    write_ports: 1,
                },
            )
            .interface("data", InterfaceKind::Wire)
            .limit_fu(OpClass::Mul, 4);
        assert_eq!(d.merge_policy, MergePolicy::Off);
        assert_eq!(d.loop_directive("dfe").unroll, Unroll::Factor(2));
        assert_eq!(d.loop_directive("ffe").pipeline_ii, Some(1));
        assert!(matches!(d.array_mapping("x"), ArrayMapping::Memory { .. }));
        assert_eq!(d.interface_kind("data"), InterfaceKind::Wire);
        assert_eq!(d.fu_limit(OpClass::Mul), Some(4));
    }
}
