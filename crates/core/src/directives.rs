//! Architectural directives: the designer's synthesis guidance.
//!
//! Section 2 of the paper lists the main architectural transformations —
//! interface synthesis, variable/array mapping, loop pipelining, loop
//! unrolling and scheduling constraints. Directives are the knobs that
//! select between them without touching the source, which is how Table 1's
//! four architectures were produced from one C function.

use std::collections::BTreeMap;

/// How a loop is unrolled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Unroll {
    /// Keep the loop rolled (the default).
    #[default]
    None,
    /// Partial unroll by the given factor (the paper's `U=2`, `U=4`).
    Factor(u32),
    /// Fully unroll: the loop disappears into straight-line code.
    Full,
}

impl Unroll {
    /// The replication factor for a loop of `trip` iterations.
    pub fn factor(self, trip: usize) -> usize {
        match self {
            Unroll::None => 1,
            Unroll::Factor(f) => (f.max(1) as usize).min(trip.max(1)),
            Unroll::Full => trip.max(1),
        }
    }
}

/// Per-loop directives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoopDirective {
    /// Unrolling for this loop.
    pub unroll: Unroll,
    /// Pipeline the loop with the given initiation interval. `None` leaves
    /// the loop unpipelined.
    pub pipeline_ii: Option<u32>,
    /// Exclude the loop from automatic merging even when merging is enabled.
    pub no_merge: bool,
}

/// Legality policy for loop merging (see `transform::merge` for the
/// dependence analysis behind it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergePolicy {
    /// Merge adjacent loops even when cross-iteration hazards on shared
    /// arrays are detected. This mirrors the paper's tool behaviour, whose
    /// default-constraint run merged the adaptation and shift loops; the
    /// hazards perturb only the sign-LMS gradient (quantified in tests).
    #[default]
    AllowHazards,
    /// Merge only when the interleaving is provably bit-exact.
    ExactOnly,
    /// Never merge.
    Off,
}

/// How an array is realized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArrayMapping {
    /// Split into individual registers: unlimited parallel access (the
    /// right choice for the decoder's small tap/coefficient arrays).
    #[default]
    Registers,
    /// Map to a synchronous memory with the given port counts; accesses
    /// compete for ports and take a full cycle.
    Memory {
        /// Simultaneous read ports.
        read_ports: u32,
        /// Simultaneous write ports.
        write_ports: u32,
    },
}

/// How a parameter is exposed at the design boundary (interface synthesis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InterfaceKind {
    /// Plain wires, sampled at start (inputs) or driven continuously.
    Wire,
    /// Registered with a start/done handshake; out-parameters written in a
    /// dedicated completion state (the paper's registered `*data` output).
    #[default]
    RegisterHandshake,
    /// Array exposed as a memory interface port.
    Memory,
    /// Array streamed over time, one element per transfer (the paper's
    /// `uint10 x[1024]` example in Section 2.1).
    Stream,
}

/// The complete directive set for one synthesis run.
///
/// # Examples
///
/// ```
/// use hls_core::{Directives, Unroll};
///
/// // The paper's third architecture: merging on, U=2 on the 16-iteration
/// // loops.
/// let d = Directives::new(10.0)
///     .unroll("dfe", Unroll::Factor(2))
///     .unroll("dfe_adapt", Unroll::Factor(2))
///     .unroll("dfe_shift", Unroll::Factor(2));
/// assert_eq!(d.loop_directive("dfe").unroll, Unroll::Factor(2));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Directives {
    /// Target clock period in nanoseconds.
    pub clock_period_ns: f64,
    /// Loop merging policy (the tool default enables merging).
    pub merge_policy: MergePolicy,
    /// Per-loop directives, keyed by loop label.
    pub loops: BTreeMap<String, LoopDirective>,
    /// Per-array mapping, keyed by variable name.
    pub arrays: BTreeMap<String, ArrayMapping>,
    /// Per-parameter interface kinds, keyed by parameter name.
    pub interfaces: BTreeMap<String, InterfaceKind>,
    /// Optional cap on functional units per class (scheduling resource
    /// constraint); keys are `OpClass` display names.
    pub fu_limits: BTreeMap<String, u32>,
}

impl Directives {
    /// Creates a directive set with the given clock period and the tool
    /// defaults: merging enabled, no unrolling, arrays in registers,
    /// register-handshake interfaces.
    pub fn new(clock_period_ns: f64) -> Self {
        Directives {
            clock_period_ns,
            merge_policy: MergePolicy::default(),
            loops: BTreeMap::new(),
            arrays: BTreeMap::new(),
            interfaces: BTreeMap::new(),
            fu_limits: BTreeMap::new(),
        }
    }

    /// Disables loop merging (the paper's second architecture: "none").
    pub fn no_merging(mut self) -> Self {
        self.merge_policy = MergePolicy::Off;
        self
    }

    /// Sets the merge policy.
    pub fn merge_policy(mut self, policy: MergePolicy) -> Self {
        self.merge_policy = policy;
        self
    }

    /// Sets the unroll factor of one loop.
    pub fn unroll(mut self, label: &str, unroll: Unroll) -> Self {
        self.loops.entry(label.to_string()).or_default().unroll = unroll;
        self
    }

    /// Pipelines one loop with the given initiation interval.
    pub fn pipeline(mut self, label: &str, ii: u32) -> Self {
        self.loops.entry(label.to_string()).or_default().pipeline_ii = Some(ii);
        self
    }

    /// Excludes one loop from merging.
    pub fn no_merge(mut self, label: &str) -> Self {
        self.loops.entry(label.to_string()).or_default().no_merge = true;
        self
    }

    /// Maps one array variable.
    pub fn map_array(mut self, var: &str, mapping: ArrayMapping) -> Self {
        self.arrays.insert(var.to_string(), mapping);
        self
    }

    /// Sets the interface kind of one parameter.
    pub fn interface(mut self, param: &str, kind: InterfaceKind) -> Self {
        self.interfaces.insert(param.to_string(), kind);
        self
    }

    /// Caps the number of functional units of one class.
    pub fn limit_fu(mut self, class: crate::tech::OpClass, max: u32) -> Self {
        self.fu_limits.insert(class.to_string(), max);
        self
    }

    /// The directive for a loop (defaults when unset).
    pub fn loop_directive(&self, label: &str) -> LoopDirective {
        self.loops.get(label).copied().unwrap_or_default()
    }

    /// The mapping for an array (registers when unset).
    pub fn array_mapping(&self, var: &str) -> ArrayMapping {
        self.arrays.get(var).copied().unwrap_or_default()
    }

    /// The interface kind for a parameter (register-handshake when unset).
    pub fn interface_kind(&self, param: &str) -> InterfaceKind {
        self.interfaces.get(param).copied().unwrap_or_default()
    }

    /// The FU limit for a class, if any.
    pub fn fu_limit(&self, class: crate::tech::OpClass) -> Option<u32> {
        self.fu_limits.get(&class.to_string()).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::OpClass;

    #[test]
    fn defaults_match_tool_defaults() {
        let d = Directives::new(10.0);
        assert_eq!(d.merge_policy, MergePolicy::AllowHazards);
        assert_eq!(d.loop_directive("anything").unroll, Unroll::None);
        assert_eq!(d.array_mapping("x"), ArrayMapping::Registers);
        assert_eq!(d.interface_kind("data"), InterfaceKind::RegisterHandshake);
        assert_eq!(d.fu_limit(OpClass::Mul), None);
    }

    #[test]
    fn unroll_factor_semantics() {
        assert_eq!(Unroll::None.factor(16), 1);
        assert_eq!(Unroll::Factor(2).factor(16), 2);
        assert_eq!(Unroll::Factor(32).factor(16), 16); // clamped to trip
        assert_eq!(Unroll::Full.factor(16), 16);
        assert_eq!(Unroll::Factor(0).factor(16), 1); // degenerate
    }

    #[test]
    fn builder_accumulates() {
        let d = Directives::new(10.0)
            .no_merging()
            .unroll("dfe", Unroll::Factor(2))
            .pipeline("ffe", 1)
            .map_array(
                "x",
                ArrayMapping::Memory {
                    read_ports: 1,
                    write_ports: 1,
                },
            )
            .interface("data", InterfaceKind::Wire)
            .limit_fu(OpClass::Mul, 4);
        assert_eq!(d.merge_policy, MergePolicy::Off);
        assert_eq!(d.loop_directive("dfe").unroll, Unroll::Factor(2));
        assert_eq!(d.loop_directive("ffe").pipeline_ii, Some(1));
        assert!(matches!(d.array_mapping("x"), ArrayMapping::Memory { .. }));
        assert_eq!(d.interface_kind("data"), InterfaceKind::Wire);
        assert_eq!(d.fu_limit(OpClass::Mul), Some(4));
    }
}
