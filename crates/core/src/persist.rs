//! Deterministic JSON codecs for mid-pipeline artifacts.
//!
//! The persistent tier of the pass cache ([`crate::passcache`]) stores
//! stage outputs — [`TransformResult`], [`Lowered`], and the netlist
//! optimizer's report/obligation pair — on disk. These codecs give them a
//! byte-stable encoding built on [`hls_ir::Json`]: key order is fixed,
//! floats are rendered as IEEE-754 bit patterns (never shortest-decimal),
//! and `i64`/`i128` values travel as decimal strings so nothing is
//! squeezed through an `f64`.
//!
//! Decoding is total but unforgiving: any malformed, truncated or
//! schema-drifted document decodes to `None`, which the cache treats as a
//! miss (and quarantines the file). A decoded artifact is bit-identical
//! to the one encoded — the differential tests in this module round-trip
//! real synthesis output and compare with `PartialEq` on every field.

use fixpt::{Fixed, Format, Overflow, Quantization, Signedness};
use hls_ir::{
    BinOp, CmpOp, Direction, Expr, Function, Json, Loop, Stmt, Ty, UnOp, Var, VarId, VarKind,
};

use crate::dfg::{Dfg, Node, NodeId, NodeKind};
use crate::directives::InterfaceKind;
use crate::lower::{Lowered, Port, Segment};
use crate::netlist::{NetlistObligation, NetlistReport, PassDelta};
use crate::transform::{HazardKind, MergeHazard, MergeReport, TransformResult};

// ---------------------------------------------------------------------------
// Scalar helpers
// ---------------------------------------------------------------------------

fn i64_to_json(v: i64) -> Json {
    Json::str(v.to_string())
}

fn i64_from_json(j: &Json) -> Option<i64> {
    j.as_str()?.parse().ok()
}

fn f64_to_json(v: f64) -> Json {
    Json::str(format!("{:016x}", v.to_bits()))
}

fn f64_from_json(j: &Json) -> Option<f64> {
    Some(f64::from_bits(u64::from_str_radix(j.as_str()?, 16).ok()?))
}

fn usize_from_json(j: &Json) -> Option<usize> {
    Some(j.as_u64()? as usize)
}

fn fmt_to_json(f: Format) -> Json {
    Json::Arr(vec![
        Json::count(f.width() as u64),
        Json::num(f.int_bits()),
        Json::Bool(f.is_signed()),
    ])
}

fn fmt_from_json(j: &Json) -> Option<Format> {
    let a = j.as_arr()?;
    if a.len() != 3 {
        return None;
    }
    let width = a[0].as_u64()? as u32;
    let int_bits = a[1].as_i64()? as i32;
    let sign = if a[2].as_bool()? {
        Signedness::Signed
    } else {
        Signedness::Unsigned
    };
    Format::new(width, int_bits, sign).ok()
}

fn fixed_to_json(x: Fixed) -> Json {
    Json::Arr(vec![
        Json::str(x.raw().to_string()),
        fmt_to_json(x.format()),
    ])
}

fn fixed_from_json(j: &Json) -> Option<Fixed> {
    let a = j.as_arr()?;
    if a.len() != 2 {
        return None;
    }
    let raw: i128 = a[0].as_str()?.parse().ok()?;
    Fixed::from_raw(raw, fmt_from_json(&a[1])?).ok()
}

// ---------------------------------------------------------------------------
// Enum string tables
// ---------------------------------------------------------------------------

fn quant_str(q: Quantization) -> &'static str {
    match q {
        Quantization::Trn => "trn",
        Quantization::TrnZero => "trn_zero",
        Quantization::Rnd => "rnd",
        Quantization::RndZero => "rnd_zero",
        Quantization::RndMinInf => "rnd_min_inf",
        Quantization::RndInf => "rnd_inf",
        Quantization::RndConv => "rnd_conv",
    }
}

fn quant_parse(s: &str) -> Option<Quantization> {
    Some(match s {
        "trn" => Quantization::Trn,
        "trn_zero" => Quantization::TrnZero,
        "rnd" => Quantization::Rnd,
        "rnd_zero" => Quantization::RndZero,
        "rnd_min_inf" => Quantization::RndMinInf,
        "rnd_inf" => Quantization::RndInf,
        "rnd_conv" => Quantization::RndConv,
        _ => return None,
    })
}

fn ovf_str(o: Overflow) -> &'static str {
    match o {
        Overflow::Wrap => "wrap",
        Overflow::Sat => "sat",
        Overflow::SatZero => "sat_zero",
        Overflow::SatSym => "sat_sym",
    }
}

fn ovf_parse(s: &str) -> Option<Overflow> {
    Some(match s {
        "wrap" => Overflow::Wrap,
        "sat" => Overflow::Sat,
        "sat_zero" => Overflow::SatZero,
        "sat_sym" => Overflow::SatSym,
        _ => return None,
    })
}

fn unop_str(op: UnOp) -> &'static str {
    match op {
        UnOp::Neg => "neg",
        UnOp::Signum => "signum",
        UnOp::Not => "not",
    }
}

fn unop_parse(s: &str) -> Option<UnOp> {
    Some(match s {
        "neg" => UnOp::Neg,
        "signum" => UnOp::Signum,
        "not" => UnOp::Not,
        _ => return None,
    })
}

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Shl => "shl",
        BinOp::Shr => "shr",
        BinOp::And => "and",
        BinOp::Or => "or",
    }
}

fn binop_parse(s: &str) -> Option<BinOp> {
    Some(match s {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "shl" => BinOp::Shl,
        "shr" => BinOp::Shr,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        _ => return None,
    })
}

fn cmpop_str(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "eq",
        CmpOp::Ne => "ne",
        CmpOp::Lt => "lt",
        CmpOp::Le => "le",
        CmpOp::Gt => "gt",
        CmpOp::Ge => "ge",
    }
}

fn cmpop_parse(s: &str) -> Option<CmpOp> {
    Some(match s {
        "eq" => CmpOp::Eq,
        "ne" => CmpOp::Ne,
        "lt" => CmpOp::Lt,
        "le" => CmpOp::Le,
        "gt" => CmpOp::Gt,
        "ge" => CmpOp::Ge,
        _ => return None,
    })
}

fn varkind_str(k: VarKind) -> &'static str {
    match k {
        VarKind::Param => "param",
        VarKind::Static => "static",
        VarKind::Local => "local",
        VarKind::Counter => "counter",
    }
}

fn varkind_parse(s: &str) -> Option<VarKind> {
    Some(match s {
        "param" => VarKind::Param,
        "static" => VarKind::Static,
        "local" => VarKind::Local,
        "counter" => VarKind::Counter,
        _ => return None,
    })
}

fn direction_str(d: Direction) -> &'static str {
    match d {
        Direction::In => "in",
        Direction::Out => "out",
        Direction::InOut => "inout",
    }
}

fn direction_parse(s: &str) -> Option<Direction> {
    Some(match s {
        "in" => Direction::In,
        "out" => Direction::Out,
        "inout" => Direction::InOut,
        _ => return None,
    })
}

fn iface_str(k: InterfaceKind) -> &'static str {
    match k {
        InterfaceKind::Wire => "wire",
        InterfaceKind::RegisterHandshake => "reg_handshake",
        InterfaceKind::Memory => "memory",
        InterfaceKind::Stream => "stream",
    }
}

fn iface_parse(s: &str) -> Option<InterfaceKind> {
    Some(match s {
        "wire" => InterfaceKind::Wire,
        "reg_handshake" => InterfaceKind::RegisterHandshake,
        "memory" => InterfaceKind::Memory,
        "stream" => InterfaceKind::Stream,
        _ => return None,
    })
}

fn hazard_str(k: HazardKind) -> &'static str {
    match k {
        HazardKind::ReadBeforeWrite => "read-before-write",
        HazardKind::WriteBeforeRead => "write-before-read",
        HazardKind::WriteOrder => "write-order",
    }
}

fn hazard_parse(s: &str) -> Option<HazardKind> {
    Some(match s {
        "read-before-write" => HazardKind::ReadBeforeWrite,
        "write-before-read" => HazardKind::WriteBeforeRead,
        "write-order" => HazardKind::WriteOrder,
        _ => return None,
    })
}

/// Interns a netlist pass name back to the optimizer's `&'static str`
/// table ([`crate::netlist::Mode`] names).
fn pass_name_intern(s: &str) -> Option<&'static str> {
    Some(match s {
        "const-fold" => "const-fold",
        "reg-const-prop" => "reg-const-prop",
        "cse" => "cse",
        "rebalance" => "rebalance",
        _ => return None,
    })
}

// ---------------------------------------------------------------------------
// IR: types, variables, expressions, statements, functions
// ---------------------------------------------------------------------------

fn ty_to_json(t: &Ty) -> Json {
    match t {
        Ty::Bool => Json::str("bool"),
        Ty::Fixed(f) => fmt_to_json(*f),
    }
}

fn ty_from_json(j: &Json) -> Option<Ty> {
    match j {
        Json::Str(s) if s == "bool" => Some(Ty::Bool),
        _ => Some(Ty::Fixed(fmt_from_json(j)?)),
    }
}

fn varid_to_json(v: VarId) -> Json {
    Json::count(v.index() as u64)
}

fn varid_from_json(j: &Json) -> Option<VarId> {
    Some(VarId::from_raw(j.as_u64()? as u32))
}

fn var_to_json(v: &Var) -> Json {
    Json::Arr(vec![
        Json::str(v.name.clone()),
        ty_to_json(&v.ty),
        Json::str(varkind_str(v.kind)),
        match v.len {
            None => Json::Null,
            Some(n) => Json::size(n),
        },
    ])
}

fn var_from_json(j: &Json) -> Option<Var> {
    let a = j.as_arr()?;
    if a.len() != 4 {
        return None;
    }
    Some(Var {
        name: a[0].as_str()?.to_string(),
        ty: ty_from_json(&a[1])?,
        kind: varkind_parse(a[2].as_str()?)?,
        len: match &a[3] {
            Json::Null => None,
            other => Some(usize_from_json(other)?),
        },
    })
}

fn expr_to_json(e: &Expr) -> Json {
    match e {
        Expr::Const(x) => Json::Arr(vec![Json::str("c"), fixed_to_json(*x)]),
        Expr::ConstBool(b) => Json::Arr(vec![Json::str("cb"), Json::Bool(*b)]),
        Expr::Var(v) => Json::Arr(vec![Json::str("v"), varid_to_json(*v)]),
        Expr::Load { array, index } => Json::Arr(vec![
            Json::str("ld"),
            varid_to_json(*array),
            expr_to_json(index),
        ]),
        Expr::Unary { op, arg } => Json::Arr(vec![
            Json::str("u"),
            Json::str(unop_str(*op)),
            expr_to_json(arg),
        ]),
        Expr::Binary { op, lhs, rhs } => Json::Arr(vec![
            Json::str("b"),
            Json::str(binop_str(*op)),
            expr_to_json(lhs),
            expr_to_json(rhs),
        ]),
        Expr::Compare { op, lhs, rhs } => Json::Arr(vec![
            Json::str("cmp"),
            Json::str(cmpop_str(*op)),
            expr_to_json(lhs),
            expr_to_json(rhs),
        ]),
        Expr::Select { cond, then_, else_ } => Json::Arr(vec![
            Json::str("sel"),
            expr_to_json(cond),
            expr_to_json(then_),
            expr_to_json(else_),
        ]),
        Expr::Cast {
            ty,
            quantization,
            overflow,
            arg,
        } => Json::Arr(vec![
            Json::str("cast"),
            ty_to_json(ty),
            Json::str(quant_str(*quantization)),
            Json::str(ovf_str(*overflow)),
            expr_to_json(arg),
        ]),
    }
}

fn expr_from_json(j: &Json) -> Option<Expr> {
    let a = j.as_arr()?;
    let tag = a.first()?.as_str()?;
    Some(match (tag, a.len()) {
        ("c", 2) => Expr::Const(fixed_from_json(&a[1])?),
        ("cb", 2) => Expr::ConstBool(a[1].as_bool()?),
        ("v", 2) => Expr::Var(varid_from_json(&a[1])?),
        ("ld", 3) => Expr::Load {
            array: varid_from_json(&a[1])?,
            index: Box::new(expr_from_json(&a[2])?),
        },
        ("u", 3) => Expr::Unary {
            op: unop_parse(a[1].as_str()?)?,
            arg: Box::new(expr_from_json(&a[2])?),
        },
        ("b", 4) => Expr::Binary {
            op: binop_parse(a[1].as_str()?)?,
            lhs: Box::new(expr_from_json(&a[2])?),
            rhs: Box::new(expr_from_json(&a[3])?),
        },
        ("cmp", 4) => Expr::Compare {
            op: cmpop_parse(a[1].as_str()?)?,
            lhs: Box::new(expr_from_json(&a[2])?),
            rhs: Box::new(expr_from_json(&a[3])?),
        },
        ("sel", 4) => Expr::Select {
            cond: Box::new(expr_from_json(&a[1])?),
            then_: Box::new(expr_from_json(&a[2])?),
            else_: Box::new(expr_from_json(&a[3])?),
        },
        ("cast", 5) => Expr::Cast {
            ty: ty_from_json(&a[1])?,
            quantization: quant_parse(a[2].as_str()?)?,
            overflow: ovf_parse(a[3].as_str()?)?,
            arg: Box::new(expr_from_json(&a[4])?),
        },
        _ => return None,
    })
}

fn stmts_to_json(stmts: &[Stmt]) -> Json {
    Json::Arr(stmts.iter().map(stmt_to_json).collect())
}

fn stmts_from_json(j: &Json) -> Option<Vec<Stmt>> {
    j.as_arr()?.iter().map(stmt_from_json).collect()
}

fn stmt_to_json(s: &Stmt) -> Json {
    match s {
        Stmt::Assign { var, value } => Json::Arr(vec![
            Json::str("as"),
            varid_to_json(*var),
            expr_to_json(value),
        ]),
        Stmt::Store {
            array,
            index,
            value,
        } => Json::Arr(vec![
            Json::str("st"),
            varid_to_json(*array),
            expr_to_json(index),
            expr_to_json(value),
        ]),
        Stmt::For(l) => Json::Arr(vec![Json::str("for"), loop_to_json(l)]),
        Stmt::If { cond, then_, else_ } => Json::Arr(vec![
            Json::str("if"),
            expr_to_json(cond),
            stmts_to_json(then_),
            stmts_to_json(else_),
        ]),
    }
}

fn stmt_from_json(j: &Json) -> Option<Stmt> {
    let a = j.as_arr()?;
    let tag = a.first()?.as_str()?;
    Some(match (tag, a.len()) {
        ("as", 3) => Stmt::Assign {
            var: varid_from_json(&a[1])?,
            value: expr_from_json(&a[2])?,
        },
        ("st", 4) => Stmt::Store {
            array: varid_from_json(&a[1])?,
            index: expr_from_json(&a[2])?,
            value: expr_from_json(&a[3])?,
        },
        ("for", 2) => Stmt::For(loop_from_json(&a[1])?),
        ("if", 4) => Stmt::If {
            cond: expr_from_json(&a[1])?,
            then_: stmts_from_json(&a[2])?,
            else_: stmts_from_json(&a[3])?,
        },
        _ => return None,
    })
}

fn loop_to_json(l: &Loop) -> Json {
    Json::obj(vec![
        ("label", Json::str(l.label.clone())),
        ("var", varid_to_json(l.var)),
        ("start", i64_to_json(l.start)),
        ("cmp", Json::str(cmpop_str(l.cmp))),
        ("bound", i64_to_json(l.bound)),
        ("step", i64_to_json(l.step)),
        ("body", stmts_to_json(&l.body)),
    ])
}

fn loop_from_json(j: &Json) -> Option<Loop> {
    Some(Loop {
        label: j.get("label")?.as_str()?.to_string(),
        var: varid_from_json(j.get("var")?)?,
        start: i64_from_json(j.get("start")?)?,
        cmp: cmpop_parse(j.get("cmp")?.as_str()?)?,
        bound: i64_from_json(j.get("bound")?)?,
        step: i64_from_json(j.get("step")?)?,
        body: stmts_from_json(j.get("body")?)?,
    })
}

/// Encodes a [`Function`] (name, variable table, parameters, body).
pub fn function_to_json(f: &Function) -> Json {
    Json::obj(vec![
        ("name", Json::str(f.name.clone())),
        ("vars", Json::Arr(f.vars.iter().map(var_to_json).collect())),
        (
            "params",
            Json::Arr(f.params.iter().map(|&p| varid_to_json(p)).collect()),
        ),
        ("body", stmts_to_json(&f.body)),
    ])
}

/// Decodes a [`Function`]; `None` on any malformed field.
pub fn function_from_json(j: &Json) -> Option<Function> {
    Some(Function {
        name: j.get("name")?.as_str()?.to_string(),
        vars: j
            .get("vars")?
            .as_arr()?
            .iter()
            .map(var_from_json)
            .collect::<Option<Vec<_>>>()?,
        params: j
            .get("params")?
            .as_arr()?
            .iter()
            .map(varid_from_json)
            .collect::<Option<Vec<_>>>()?,
        body: stmts_from_json(j.get("body")?)?,
    })
}

// ---------------------------------------------------------------------------
// DFG, segments, lowered designs
// ---------------------------------------------------------------------------

fn node_kind_to_json(k: &NodeKind) -> Json {
    match k {
        NodeKind::Const(x) => Json::Arr(vec![Json::str("c"), fixed_to_json(*x)]),
        NodeKind::VarRead(v) => Json::Arr(vec![Json::str("vr"), varid_to_json(*v)]),
        NodeKind::VarWrite(v) => Json::Arr(vec![Json::str("vw"), varid_to_json(*v)]),
        NodeKind::Bin(op) => Json::Arr(vec![Json::str("b"), Json::str(binop_str(*op))]),
        NodeKind::MulPow2 => Json::Arr(vec![Json::str("mp2")]),
        NodeKind::Un(op) => Json::Arr(vec![Json::str("u"), Json::str(unop_str(*op))]),
        NodeKind::Cmp(op) => Json::Arr(vec![Json::str("cmp"), Json::str(cmpop_str(*op))]),
        NodeKind::Mux => Json::Arr(vec![Json::str("mux")]),
        NodeKind::EnableMux => Json::Arr(vec![Json::str("emux")]),
        NodeKind::Cast(q, o) => Json::Arr(vec![
            Json::str("cast"),
            Json::str(quant_str(*q)),
            Json::str(ovf_str(*o)),
        ]),
        NodeKind::Load(v) => Json::Arr(vec![Json::str("ld"), varid_to_json(*v)]),
        NodeKind::Store(v) => Json::Arr(vec![Json::str("st"), varid_to_json(*v)]),
        NodeKind::StoreCond(v) => Json::Arr(vec![Json::str("stc"), varid_to_json(*v)]),
    }
}

fn node_kind_from_json(j: &Json) -> Option<NodeKind> {
    let a = j.as_arr()?;
    let tag = a.first()?.as_str()?;
    Some(match (tag, a.len()) {
        ("c", 2) => NodeKind::Const(fixed_from_json(&a[1])?),
        ("vr", 2) => NodeKind::VarRead(varid_from_json(&a[1])?),
        ("vw", 2) => NodeKind::VarWrite(varid_from_json(&a[1])?),
        ("b", 2) => NodeKind::Bin(binop_parse(a[1].as_str()?)?),
        ("mp2", 1) => NodeKind::MulPow2,
        ("u", 2) => NodeKind::Un(unop_parse(a[1].as_str()?)?),
        ("cmp", 2) => NodeKind::Cmp(cmpop_parse(a[1].as_str()?)?),
        ("mux", 1) => NodeKind::Mux,
        ("emux", 1) => NodeKind::EnableMux,
        ("cast", 3) => NodeKind::Cast(quant_parse(a[1].as_str()?)?, ovf_parse(a[2].as_str()?)?),
        ("ld", 2) => NodeKind::Load(varid_from_json(&a[1])?),
        ("st", 2) => NodeKind::Store(varid_from_json(&a[1])?),
        ("stc", 2) => NodeKind::StoreCond(varid_from_json(&a[1])?),
        _ => return None,
    })
}

fn node_to_json(n: &Node) -> Json {
    Json::Arr(vec![
        node_kind_to_json(&n.kind),
        Json::Arr(
            n.preds
                .iter()
                .map(|p| Json::count(p.index() as u64))
                .collect(),
        ),
        fmt_to_json(n.format),
    ])
}

fn dfg_to_json(d: &Dfg) -> Json {
    Json::obj(vec![
        (
            "nodes",
            Json::Arr(d.nodes().iter().map(node_to_json).collect()),
        ),
        (
            "live_in",
            Json::Arr(d.live_in.iter().map(|&v| varid_to_json(v)).collect()),
        ),
        (
            "live_out",
            Json::Arr(d.live_out.iter().map(|&v| varid_to_json(v)).collect()),
        ),
    ])
}

fn dfg_from_json(j: &Json) -> Option<Dfg> {
    let mut dfg = Dfg::default();
    let nodes = j.get("nodes")?.as_arr()?;
    for n in nodes {
        let a = n.as_arr()?;
        if a.len() != 3 {
            return None;
        }
        let kind = node_kind_from_json(&a[0])?;
        let preds: Vec<NodeId> = a[1]
            .as_arr()?
            .iter()
            .map(|p| {
                let raw = p.as_u64()? as u32;
                // A predecessor must reference an earlier node; reject
                // forward edges outright rather than building a cyclic DFG.
                ((raw as usize) < nodes.len()).then_some(NodeId(raw))
            })
            .collect::<Option<Vec<_>>>()?;
        let format = fmt_from_json(&a[2])?;
        dfg.push(kind, preds, format);
    }
    dfg.live_in = j
        .get("live_in")?
        .as_arr()?
        .iter()
        .map(varid_from_json)
        .collect::<Option<Vec<_>>>()?;
    dfg.live_out = j
        .get("live_out")?
        .as_arr()?
        .iter()
        .map(varid_from_json)
        .collect::<Option<Vec<_>>>()?;
    Some(dfg)
}

fn segment_to_json(s: &Segment) -> Json {
    match s {
        Segment::Straight { dfg } => Json::obj(vec![("dfg", dfg_to_json(dfg))]),
        Segment::Loop {
            label,
            trip,
            counter,
            start,
            cmp,
            bound,
            step,
            pipeline_ii,
            dfg,
        } => Json::obj(vec![
            ("label", Json::str(label.clone())),
            ("trip", Json::size(*trip)),
            ("counter", varid_to_json(*counter)),
            ("start", i64_to_json(*start)),
            ("cmp", Json::str(cmpop_str(*cmp))),
            ("bound", i64_to_json(*bound)),
            ("step", i64_to_json(*step)),
            (
                "ii",
                match pipeline_ii {
                    None => Json::Null,
                    Some(ii) => Json::count(*ii as u64),
                },
            ),
            ("dfg", dfg_to_json(dfg)),
        ]),
    }
}

fn segment_from_json(j: &Json) -> Option<Segment> {
    if j.get("label").is_none() {
        return Some(Segment::Straight {
            dfg: dfg_from_json(j.get("dfg")?)?,
        });
    }
    Some(Segment::Loop {
        label: j.get("label")?.as_str()?.to_string(),
        trip: usize_from_json(j.get("trip")?)?,
        counter: varid_from_json(j.get("counter")?)?,
        start: i64_from_json(j.get("start")?)?,
        cmp: cmpop_parse(j.get("cmp")?.as_str()?)?,
        bound: i64_from_json(j.get("bound")?)?,
        step: i64_from_json(j.get("step")?)?,
        pipeline_ii: match j.get("ii")? {
            Json::Null => None,
            other => Some(other.as_u64()? as u32),
        },
        dfg: dfg_from_json(j.get("dfg")?)?,
    })
}

fn port_to_json(p: &Port) -> Json {
    Json::obj(vec![
        ("name", Json::str(p.name.clone())),
        ("dir", Json::str(direction_str(p.direction))),
        ("kind", Json::str(iface_str(p.kind))),
        ("width", Json::count(p.width as u64)),
        ("elements", Json::size(p.elements)),
    ])
}

fn port_from_json(j: &Json) -> Option<Port> {
    Some(Port {
        name: j.get("name")?.as_str()?.to_string(),
        direction: direction_parse(j.get("dir")?.as_str()?)?,
        kind: iface_parse(j.get("kind")?.as_str()?)?,
        width: j.get("width")?.as_u64()? as u32,
        elements: usize_from_json(j.get("elements")?)?,
    })
}

/// Encodes a [`Lowered`] design (function, segments, ports, handshake).
pub fn lowered_to_json(l: &Lowered) -> Json {
    Json::obj(vec![
        ("func", function_to_json(&l.func)),
        (
            "segments",
            Json::Arr(l.segments.iter().map(segment_to_json).collect()),
        ),
        (
            "ports",
            Json::Arr(l.ports.iter().map(port_to_json).collect()),
        ),
        ("handshake", Json::Bool(l.handshake)),
    ])
}

/// Decodes a [`Lowered`] design; `None` on any malformed field.
pub fn lowered_from_json(j: &Json) -> Option<Lowered> {
    Some(Lowered {
        func: function_from_json(j.get("func")?)?,
        segments: j
            .get("segments")?
            .as_arr()?
            .iter()
            .map(segment_from_json)
            .collect::<Option<Vec<_>>>()?,
        ports: j
            .get("ports")?
            .as_arr()?
            .iter()
            .map(port_from_json)
            .collect::<Option<Vec<_>>>()?,
        handshake: j.get("handshake")?.as_bool()?,
    })
}

// ---------------------------------------------------------------------------
// Transform results
// ---------------------------------------------------------------------------

fn merge_report_to_json(m: &MergeReport) -> Json {
    Json::obj(vec![
        (
            "merged",
            Json::Arr(m.merged.iter().map(|s| Json::str(s.clone())).collect()),
        ),
        ("label", Json::str(m.label.clone())),
        ("trip", Json::size(m.trip_count)),
        (
            "hazards",
            Json::Arr(
                m.hazards
                    .iter()
                    .map(|h| {
                        Json::obj(vec![
                            ("first", Json::str(h.first.clone())),
                            ("second", Json::str(h.second.clone())),
                            ("var", Json::str(h.var.clone())),
                            ("kind", Json::str(hazard_str(h.kind))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn merge_report_from_json(j: &Json) -> Option<MergeReport> {
    Some(MergeReport {
        merged: j
            .get("merged")?
            .as_arr()?
            .iter()
            .map(|s| Some(s.as_str()?.to_string()))
            .collect::<Option<Vec<_>>>()?,
        label: j.get("label")?.as_str()?.to_string(),
        trip_count: usize_from_json(j.get("trip")?)?,
        hazards: j
            .get("hazards")?
            .as_arr()?
            .iter()
            .map(|h| {
                Some(MergeHazard {
                    first: h.get("first")?.as_str()?.to_string(),
                    second: h.get("second")?.as_str()?.to_string(),
                    var: h.get("var")?.as_str()?.to_string(),
                    kind: hazard_parse(h.get("kind")?.as_str()?)?,
                })
            })
            .collect::<Option<Vec<_>>>()?,
    })
}

/// Encodes a [`TransformResult`] (rewritten function plus merge reports).
pub fn transform_to_json(t: &TransformResult) -> Json {
    Json::obj(vec![
        ("func", function_to_json(&t.func)),
        (
            "merges",
            Json::Arr(t.merges.iter().map(merge_report_to_json).collect()),
        ),
    ])
}

/// Decodes a [`TransformResult`]; `None` on any malformed field.
pub fn transform_from_json(j: &Json) -> Option<TransformResult> {
    Some(TransformResult {
        func: function_from_json(j.get("func")?)?,
        merges: j
            .get("merges")?
            .as_arr()?
            .iter()
            .map(merge_report_from_json)
            .collect::<Option<Vec<_>>>()?,
    })
}

// ---------------------------------------------------------------------------
// Netlist optimizer outputs
// ---------------------------------------------------------------------------

fn pass_delta_to_json(d: &PassDelta) -> Json {
    Json::obj(vec![
        ("pass", Json::str(d.pass)),
        ("changed", Json::size(d.changed_segments)),
        ("cells_before", Json::size(d.cells_before)),
        ("cells_after", Json::size(d.cells_after)),
        ("depth_before", Json::size(d.depth_before)),
        ("depth_after", Json::size(d.depth_after)),
        ("crit_before", f64_to_json(d.critical_ns_before)),
        ("crit_after", f64_to_json(d.critical_ns_after)),
    ])
}

fn pass_delta_from_json(j: &Json) -> Option<PassDelta> {
    Some(PassDelta {
        pass: pass_name_intern(j.get("pass")?.as_str()?)?,
        changed_segments: usize_from_json(j.get("changed")?)?,
        cells_before: usize_from_json(j.get("cells_before")?)?,
        cells_after: usize_from_json(j.get("cells_after")?)?,
        depth_before: usize_from_json(j.get("depth_before")?)?,
        depth_after: usize_from_json(j.get("depth_after")?)?,
        critical_ns_before: f64_from_json(j.get("crit_before")?)?,
        critical_ns_after: f64_from_json(j.get("crit_after")?)?,
    })
}

/// Encodes a [`NetlistReport`] with bit-exact critical-path floats.
pub fn report_to_json(r: &NetlistReport) -> Json {
    Json::obj(vec![(
        "deltas",
        Json::Arr(r.deltas.iter().map(pass_delta_to_json).collect()),
    )])
}

/// Decodes a [`NetlistReport`]; `None` on any malformed field.
pub fn report_from_json(j: &Json) -> Option<NetlistReport> {
    Some(NetlistReport {
        deltas: j
            .get("deltas")?
            .as_arr()?
            .iter()
            .map(pass_delta_from_json)
            .collect::<Option<Vec<_>>>()?,
    })
}

/// Encodes a [`NetlistObligation`] (pass name plus before/after designs).
pub fn obligation_to_json(ob: &NetlistObligation) -> Json {
    Json::obj(vec![
        ("pass", Json::str(ob.pass)),
        ("before", lowered_to_json(&ob.before)),
        ("after", lowered_to_json(&ob.after)),
    ])
}

/// Decodes a [`NetlistObligation`]; `None` on any malformed field.
pub fn obligation_from_json(j: &Json) -> Option<NetlistObligation> {
    Some(NetlistObligation {
        pass: pass_name_intern(j.get("pass")?.as_str()?)?,
        before: lowered_from_json(j.get("before")?)?,
        after: lowered_from_json(j.get("after")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{optimize_lowered, NetlistOptConfig};
    use crate::tech::TechLibrary;
    use crate::transform::apply_loop_transforms;
    use crate::Directives;
    use hls_ir::parse_function;

    const SRC: &str = r#"
        void kernel(sc_fixed<8,4> x[4], sc_fixed<12,6> *out) {
            static sc_fixed<8,4> taps[4];
            sc_fixed<12,6> acc = 0;
            shift: for (int i = 3; i > 0; i--) {
                taps[i] = taps[i - 1];
            }
            taps[0] = x[0];
            mac: for (int k = 0; k < 4; k++) {
                if (taps[k] > 0) {
                    acc += taps[k] * 2;
                } else {
                    acc -= (sc_fixed<8,4>)(taps[k] >> 1);
                }
            }
            *out = acc - x[0] + x[0];
        }
    "#;

    #[test]
    fn function_round_trips() {
        let func = parse_function(SRC).unwrap();
        let j = function_to_json(&func);
        let text = j.write();
        let back = function_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(func, back);
        // The encoding itself is byte-stable.
        assert_eq!(text, function_to_json(&back).write());
    }

    #[test]
    fn transform_round_trips() {
        let func = parse_function(SRC).unwrap();
        let mut d = Directives::new(10.0);
        d.loops.entry("mac".into()).or_default().unroll = crate::directives::Unroll::Factor(2);
        let t = apply_loop_transforms(&func, &d);
        let j = transform_to_json(&t);
        let back = transform_from_json(&Json::parse(&j.write()).unwrap()).unwrap();
        assert_eq!(t.func, back.func);
        assert_eq!(t.merges, back.merges);
    }

    #[test]
    fn lowered_report_and_obligations_round_trip() {
        let func = parse_function(SRC).unwrap();
        let d = Directives::new(10.0);
        let mut low = crate::lower(&func, &d);
        let outcome = optimize_lowered(
            &mut low,
            &NetlistOptConfig::default(),
            &TechLibrary::asic_100mhz(),
        );

        let back = lowered_from_json(&Json::parse(&lowered_to_json(&low).write()).unwrap());
        assert_eq!(Some(low), back);

        let r = &outcome.report;
        let back = report_from_json(&Json::parse(&report_to_json(r).write()).unwrap()).unwrap();
        assert_eq!(r, &back);
        for (i, (a, b)) in r.deltas.iter().zip(&back.deltas).enumerate() {
            assert_eq!(
                a.critical_ns_before.to_bits(),
                b.critical_ns_before.to_bits(),
                "delta {i} before bits"
            );
            assert_eq!(a.critical_ns_after.to_bits(), b.critical_ns_after.to_bits());
        }

        assert!(!outcome.obligations.is_empty());
        for ob in &outcome.obligations {
            let back = obligation_from_json(&Json::parse(&obligation_to_json(ob).write()).unwrap())
                .unwrap();
            assert_eq!(ob.pass, back.pass);
            assert_eq!(ob.before, back.before);
            assert_eq!(ob.after, back.after);
        }
    }

    #[test]
    fn malformed_documents_decode_to_none() {
        let func = parse_function(SRC).unwrap();
        let good = function_to_json(&func).write();
        // Truncated JSON fails to parse at all; a structurally valid but
        // schema-drifted document must decode to None, not panic.
        assert!(Json::parse(&good[..good.len() / 2]).is_err());
        let j = Json::parse(&good.replace("\"param\"", "\"banana\"")).unwrap();
        assert!(function_from_json(&j).is_none());
        assert!(lowered_from_json(&Json::obj(vec![("func", Json::Null)])).is_none());
        assert!(transform_from_json(&Json::Null).is_none());
    }
}
