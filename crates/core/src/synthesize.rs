//! The top-level synthesis flow: validate → transform → lower → schedule →
//! allocate → report.
//!
//! [`synthesize`] is a thin wrapper over the pass-manager pipeline in
//! [`crate::pipeline`]; use [`crate::synthesize_traced`] when you also
//! want the per-pass trace and structured diagnostics.

use hls_ir::Function;

use crate::allocate::Allocation;
use crate::directives::Directives;
use crate::error::SynthesisError;
use crate::lower::Lowered;
use crate::metrics::DesignMetrics;
use crate::pipeline::{synthesize_traced, PipelineConfig};
use crate::schedule::Schedule;
use crate::tech::TechLibrary;
use crate::transform::MergeReport;

/// Everything produced by one synthesis run.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// The function after loop transforms (pre-lowering).
    pub transformed: Function,
    /// The lowered design: segments, ports, staging rewrites.
    pub lowered: Lowered,
    /// One schedule per segment.
    pub schedules: Vec<Schedule>,
    /// Allocation and area breakdown.
    pub allocation: Allocation,
    /// Headline metrics.
    pub metrics: DesignMetrics,
    /// Merges performed (with any accepted hazards).
    pub merges: Vec<MergeReport>,
}

impl SynthesisResult {
    /// The bill-of-materials report.
    pub fn bill_of_materials(&self) -> String {
        crate::report::bill_of_materials(&self.allocation)
    }

    /// The Gantt chart report.
    pub fn gantt_chart(&self) -> String {
        crate::report::gantt_chart(&self.lowered, &self.schedules)
    }

    /// The critical-path report.
    pub fn critical_path_report(&self) -> String {
        crate::report::critical_path_report(&self.lowered, &self.schedules)
    }

    /// The architecture summary.
    pub fn summary(&self) -> String {
        crate::report::summary(&self.metrics, &self.lowered)
    }
}

/// Synthesizes `func` under `directives` against `lib`.
///
/// # Errors
///
/// Returns a [`SynthesisError`] when the IR fails validation, a directive
/// names an unknown loop or variable, the clock is infeasible for some
/// operation, or a requested pipeline II is below the minimum.
///
/// # Examples
///
/// ```
/// use hls_core::{synthesize, Directives, TechLibrary, Unroll};
/// use hls_ir::{FunctionBuilder, Ty, Expr, CmpOp};
///
/// let mut b = FunctionBuilder::new("sum8");
/// let x = b.param_array("x", Ty::fixed(10, 0), 8);
/// let out = b.param_scalar("out", Ty::fixed(14, 4));
/// let acc = b.local("acc", Ty::fixed(14, 4));
/// b.assign(acc, Expr::int_const(0));
/// b.for_loop("sum", 0, CmpOp::Lt, 8, 1, |b, k| {
///     b.assign(acc, Expr::add(Expr::var(acc), Expr::load(x, Expr::var(k))));
/// });
/// b.assign(out, Expr::var(acc));
/// let f = b.build();
///
/// let rolled = synthesize(&f, &Directives::new(10.0), &TechLibrary::asic_100mhz())?;
/// let unrolled = synthesize(
///     &f,
///     &Directives::new(10.0).unroll("sum", Unroll::Factor(4)),
///     &TechLibrary::asic_100mhz(),
/// )?;
/// assert!(unrolled.metrics.latency_cycles < rolled.metrics.latency_cycles);
/// # Ok::<(), hls_core::SynthesisError>(())
/// ```
pub fn synthesize(
    func: &Function,
    directives: &Directives,
    lib: &TechLibrary,
) -> Result<SynthesisResult, SynthesisError> {
    synthesize_traced(func, directives, lib, &PipelineConfig::default()).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directives::Unroll;
    use hls_ir::{CmpOp, Expr, FunctionBuilder, Ty};

    fn sum_loop() -> Function {
        let mut b = FunctionBuilder::new("sum");
        let x = b.param_array("x", Ty::fixed(10, 0), 8);
        let out = b.param_scalar("out", Ty::fixed(14, 4));
        let acc = b.local("acc", Ty::fixed(14, 4));
        b.assign(acc, Expr::int_const(0));
        b.for_loop("sum", 0, CmpOp::Lt, 8, 1, |b, k| {
            b.assign(acc, Expr::add(Expr::var(acc), Expr::load(x, Expr::var(k))));
        });
        b.assign(out, Expr::var(acc));
        b.build()
    }

    #[test]
    fn baseline_latency_accounts_all_segments() {
        let f = sum_loop();
        let r = synthesize(&f, &Directives::new(10.0), &TechLibrary::asic_100mhz()).unwrap();
        // init (1) + loop (8) + output commit (1) = 10.
        assert_eq!(r.metrics.latency_cycles, 10, "{}", r.metrics);
        assert_eq!(r.metrics.latency_ns, 100.0);
    }

    #[test]
    fn unknown_loop_directive_rejected() {
        let f = sum_loop();
        let d = Directives::new(10.0).unroll("nope", Unroll::Factor(2));
        let err = synthesize(&f, &d, &TechLibrary::asic_100mhz()).unwrap_err();
        assert!(matches!(err, SynthesisError::UnknownLoop { .. }), "{err}");
    }

    #[test]
    fn unknown_array_directive_rejected() {
        let f = sum_loop();
        let d =
            Directives::new(10.0).map_array("ghost", crate::directives::ArrayMapping::Registers);
        let err = synthesize(&f, &d, &TechLibrary::asic_100mhz()).unwrap_err();
        assert!(
            matches!(err, SynthesisError::UnknownVariable { .. }),
            "{err}"
        );
    }

    #[test]
    fn invalid_ir_rejected() {
        let mut b = FunctionBuilder::new("bad");
        let s = b.param_scalar("s", Ty::int(8));
        let out = b.param_scalar("out", Ty::int(8));
        b.assign(out, Expr::load(s, Expr::int_const(0)));
        let f = b.build();
        let err = synthesize(&f, &Directives::new(10.0), &TechLibrary::asic_100mhz()).unwrap_err();
        assert!(matches!(err, SynthesisError::InvalidIr { .. }), "{err}");
    }

    #[test]
    fn pipelining_a_single_cycle_body_gives_no_benefit() {
        // The paper: "for this algorithm ... loop pipelining does not
        // provide as much benefit as loop unrolling. The main reason is that
        // the loop body is simple enough that each iteration of the loop can
        // be executed in a single cycle."
        let f = sum_loop();
        let plain = synthesize(&f, &Directives::new(10.0), &TechLibrary::asic_100mhz()).unwrap();
        let piped = synthesize(
            &f,
            &Directives::new(10.0).pipeline("sum", 1),
            &TechLibrary::asic_100mhz(),
        )
        .unwrap();
        assert_eq!(plain.metrics.latency_cycles, piped.metrics.latency_cycles);
    }

    #[test]
    fn unrolling_reduces_latency() {
        let f = sum_loop();
        // U=2: two chained adds still fit one cycle -> 1 + 4 + 1 = 6.
        let u2 = synthesize(
            &f,
            &Directives::new(10.0).unroll("sum", Unroll::Factor(2)),
            &TechLibrary::asic_100mhz(),
        )
        .unwrap();
        assert_eq!(u2.metrics.latency_cycles, 6, "{}", u2.metrics);
        // U=4 chains four accumulator adds; the body may need two cycles
        // (the reason the paper kept U=2 on its accumulating loop), but
        // latency still beats the rolled 10 cycles.
        let u4 = synthesize(
            &f,
            &Directives::new(10.0).unroll("sum", Unroll::Factor(4)),
            &TechLibrary::asic_100mhz(),
        )
        .unwrap();
        assert!(u4.metrics.latency_cycles < 10, "{}", u4.metrics);
    }

    #[test]
    fn full_unroll_collapses_into_straight_code() {
        let f = sum_loop();
        let full = synthesize(
            &f,
            &Directives::new(10.0).unroll("sum", Unroll::Full),
            &TechLibrary::asic_100mhz(),
        )
        .unwrap();
        // 8 chained 14-bit adds at ~2.2 ns each exceed one cycle but fit a
        // few; latency must be well under the rolled 10.
        assert!(full.metrics.latency_cycles <= 5, "{}", full.metrics);
        assert!(full.transformed.loops().is_empty());
    }

    #[test]
    fn infeasible_pipeline_ii_reported() {
        // A loop whose body takes 2 cycles with the accumulator written in
        // the second cannot sustain II = 1.
        let mut b = FunctionBuilder::new("deep");
        let x = b.param_array("x", Ty::fixed(14, 2), 8);
        let acc = b.param_scalar("acc", Ty::fixed(16, 4));
        b.for_loop("l", 0, CmpOp::Lt, 8, 1, |b, k| {
            // Three chained multiplies exceed one 10 ns cycle.
            let t = Expr::mul(
                Expr::mul(Expr::load(x, Expr::var(k)), Expr::load(x, Expr::var(k))),
                Expr::mul(Expr::load(x, Expr::var(k)), Expr::var(acc)),
            );
            b.assign(acc, Expr::cast(Ty::fixed(16, 4), t));
        });
        let f = b.build();
        let d = Directives::new(10.0).pipeline("l", 1);
        match synthesize(&f, &d, &TechLibrary::asic_100mhz()) {
            Err(SynthesisError::InfeasibleInitiationInterval {
                label,
                requested,
                minimum,
            }) => {
                assert_eq!(label, "l");
                assert_eq!(requested, 1);
                assert!(minimum > 1, "minimum {minimum}");
            }
            other => panic!("expected infeasible II, got {other:?}"),
        }
    }

    #[test]
    fn streamed_arrays_access_over_time() {
        // Section 2.1: "an array uint10 x[1024] may generate a port of
        // width 10 bits that is read over time". A streamed input array
        // serializes its element accesses, so a fully-unrolled reader
        // cannot read all elements in one cycle.
        let mk = || {
            let mut b = FunctionBuilder::new("stream_sum");
            let x = b.param_array("x", Ty::fixed(10, 10), 8);
            let out = b.param_scalar("out", Ty::fixed(14, 14));
            let acc = b.local("acc", Ty::fixed(14, 14));
            b.assign(acc, Expr::int_const(0));
            b.for_loop("s", 0, CmpOp::Lt, 8, 1, |b, k| {
                b.assign(acc, Expr::add(Expr::var(acc), Expr::load(x, Expr::var(k))));
            });
            b.assign(out, Expr::var(acc));
            b.build()
        };
        let lib = TechLibrary::asic_100mhz();
        let registered = synthesize(
            &mk(),
            &Directives::new(10.0).unroll("s", Unroll::Full),
            &lib,
        )
        .unwrap();
        let streamed = synthesize(
            &mk(),
            &Directives::new(10.0)
                .unroll("s", Unroll::Full)
                .interface("x", crate::directives::InterfaceKind::Stream),
            &lib,
        )
        .unwrap();
        assert!(
            streamed.metrics.latency_cycles > registered.metrics.latency_cycles,
            "streamed {} vs registered {}",
            streamed.metrics.latency_cycles,
            registered.metrics.latency_cycles
        );
        // One element per cycle: at least 8 cycles just for the reads.
        assert!(streamed.metrics.latency_cycles >= 8);
    }

    #[test]
    fn reports_render() {
        let f = sum_loop();
        let r = synthesize(&f, &Directives::new(10.0), &TechLibrary::asic_100mhz()).unwrap();
        assert!(r.bill_of_materials().contains("total area"));
        assert!(r.gantt_chart().contains("segment"));
        assert!(r.critical_path_report().contains("critical path"));
        assert!(r.summary().contains("ports"));
    }
}
