//! Allocation and binding: functional units, registers, muxes.
//!
//! FSM states are mutually exclusive, so functional units are shared across
//! every cycle of every segment: the number of FUs of a class is the peak
//! per-cycle demand, and each shared FU pays mux area proportional to the
//! number of operations bound to it. Register demand combines the design's
//! architectural state (static arrays, staged outputs, counters) with the
//! peak number of values alive across a cycle boundary (left-edge style).

use std::collections::BTreeMap;

use hls_ir::{Function, Json, VarKind};

use crate::dfg::{Dfg, NodeKind};
use crate::directives::{ArrayMapping, Directives};
use crate::lower::{Lowered, Segment};
use crate::schedule::Schedule;
use crate::tech::{OpClass, TechLibrary};

/// One allocated functional-unit group.
#[derive(Debug, Clone, PartialEq)]
pub struct FuGroup {
    /// Operator class.
    pub class: OpClass,
    /// Instances allocated (peak per-cycle demand).
    pub count: u32,
    /// Width of the widest operation bound to the group.
    pub width: u32,
    /// Total operations bound across all states.
    pub bound_ops: u32,
    /// Area of the group's FU instances.
    pub fu_area: f64,
    /// Mux area paid for sharing.
    pub mux_area: f64,
}

/// The allocation result and area breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// Functional-unit groups (only classes that consume logic).
    pub fu_groups: Vec<FuGroup>,
    /// Architectural register bits (statics, params, counters, staging).
    pub state_bits: u64,
    /// Peak intermediate register bits (values crossing cycle boundaries).
    pub temp_bits: u64,
    /// FSM state count.
    pub fsm_states: usize,
    /// Area of functional units.
    pub fu_area: f64,
    /// Area of sharing muxes.
    pub mux_area: f64,
    /// Area of registers.
    pub reg_area: f64,
    /// Area of the controller.
    pub ctrl_area: f64,
    /// Total area (abstract units).
    pub total_area: f64,
}

impl Allocation {
    /// Instances allocated for a class (0 when unused).
    pub fn fu_count(&self, class: OpClass) -> u32 {
        self.fu_groups
            .iter()
            .find(|g| g.class == class)
            .map(|g| g.count)
            .unwrap_or(0)
    }

    /// Serializes the allocation for the `hls-serve` artifact store.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "fu_groups",
                Json::Arr(self.fu_groups.iter().map(FuGroup::to_json).collect()),
            ),
            ("state_bits", Json::count(self.state_bits)),
            ("temp_bits", Json::count(self.temp_bits)),
            ("fsm_states", Json::size(self.fsm_states)),
            ("fu_area", Json::Num(self.fu_area)),
            ("mux_area", Json::Num(self.mux_area)),
            ("reg_area", Json::Num(self.reg_area)),
            ("ctrl_area", Json::Num(self.ctrl_area)),
            ("total_area", Json::Num(self.total_area)),
        ])
    }

    /// Deserializes an allocation written by [`Allocation::to_json`].
    pub fn from_json(v: &Json) -> Result<Allocation, String> {
        let num = |k: &str| {
            v.get(k)
                .and_then(Json::as_f64)
                .ok_or(format!("allocation: missing {k}"))
        };
        let fu_groups = v
            .get("fu_groups")
            .and_then(Json::as_arr)
            .ok_or("allocation: missing fu_groups")?
            .iter()
            .map(FuGroup::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Allocation {
            fu_groups,
            state_bits: v
                .get("state_bits")
                .and_then(Json::as_u64)
                .ok_or("allocation: missing state_bits")?,
            temp_bits: v
                .get("temp_bits")
                .and_then(Json::as_u64)
                .ok_or("allocation: missing temp_bits")?,
            fsm_states: v
                .get("fsm_states")
                .and_then(Json::as_u64)
                .ok_or("allocation: missing fsm_states")? as usize,
            fu_area: num("fu_area")?,
            mux_area: num("mux_area")?,
            reg_area: num("reg_area")?,
            ctrl_area: num("ctrl_area")?,
            total_area: num("total_area")?,
        })
    }
}

impl FuGroup {
    /// Serializes one functional-unit group.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("class", Json::str(self.class.to_string())),
            ("count", Json::count(self.count as u64)),
            ("width", Json::count(self.width as u64)),
            ("bound_ops", Json::count(self.bound_ops as u64)),
            ("fu_area", Json::Num(self.fu_area)),
            ("mux_area", Json::Num(self.mux_area)),
        ])
    }

    /// Deserializes one group written by [`FuGroup::to_json`].
    pub fn from_json(v: &Json) -> Result<FuGroup, String> {
        let int = |k: &str| {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or(format!("fu_group: missing {k}"))
        };
        let class_name = v
            .get("class")
            .and_then(Json::as_str)
            .ok_or("fu_group: missing class")?;
        Ok(FuGroup {
            class: OpClass::parse(class_name)
                .ok_or_else(|| format!("fu_group: unknown class {class_name:?}"))?,
            count: int("count")? as u32,
            width: int("width")? as u32,
            bound_ops: int("bound_ops")? as u32,
            fu_area: v
                .get("fu_area")
                .and_then(Json::as_f64)
                .ok_or("fu_group: missing fu_area")?,
            mux_area: v
                .get("mux_area")
                .and_then(Json::as_f64)
                .ok_or("fu_group: missing mux_area")?,
        })
    }
}

/// Performs allocation over all scheduled segments.
pub fn allocate(
    func: &Function,
    lowered: &Lowered,
    schedules: &[Schedule],
    directives: &Directives,
    lib: &TechLibrary,
) -> Allocation {
    assert_eq!(
        lowered.segments.len(),
        schedules.len(),
        "one schedule per segment"
    );

    // Peak per-cycle demand and totals per (class).
    let mut peak: BTreeMap<OpClass, u32> = BTreeMap::new();
    let mut widths: BTreeMap<OpClass, u32> = BTreeMap::new();
    let mut totals: BTreeMap<OpClass, u32> = BTreeMap::new();
    let mut fsm_states = 0usize;
    let mut temp_bits_peak = 0u64;

    for (seg, sched) in lowered.segments.iter().zip(schedules) {
        let dfg = seg.dfg();
        fsm_states += sched.depth.max(1) as usize;
        // One pass over the nodes accumulates per-(cycle, class) counts;
        // max/sum reductions are order-independent, so this matches the
        // historical per-cycle rescan exactly.
        let mut used: BTreeMap<(u32, OpClass), u32> = BTreeMap::new();
        for i in 0..sched.node_cycle.len() {
            let class = sched.node_class[i];
            if !counts_as_datapath(class) {
                continue;
            }
            *used.entry((sched.node_cycle[i], class)).or_insert(0) += 1;
            let w = sched.node_width[i];
            let e = widths.entry(class).or_insert(0);
            *e = (*e).max(w);
            *totals.entry(class).or_insert(0) += 1;
        }
        for ((_, class), n) in used {
            let e = peak.entry(class).or_insert(0);
            *e = (*e).max(n);
        }
        // Values alive across cycle boundaries inside the segment.
        temp_bits_peak = temp_bits_peak.max(live_bits(dfg, sched));
    }

    // Loop counters also need an adder and comparator; account one per loop
    // segment (they run concurrently with body datapath logic).
    let loop_count = lowered
        .segments
        .iter()
        .filter(|s| matches!(s, Segment::Loop { .. }))
        .count() as u32;
    if loop_count > 0 {
        let e = peak.entry(OpClass::Add).or_insert(0);
        *e += 1; // one shared counter incrementer alongside the peak demand
        let w = widths.entry(OpClass::Add).or_insert(0);
        *w = (*w).max(8);
        let c = peak.entry(OpClass::Cmp).or_insert(0);
        *c = (*c).max(1);
        widths.entry(OpClass::Cmp).or_insert(8);
    }

    let mut fu_groups = Vec::new();
    let mut fu_area = 0.0;
    let mut mux_area = 0.0;
    for (class, count) in &peak {
        let width = widths.get(class).copied().unwrap_or(1);
        let bound = totals.get(class).copied().unwrap_or(0);
        let a = lib.area(*class, width) * *count as f64;
        // Sharing muxes: each instance serving k ops needs a k-way mux on
        // each of two operand inputs.
        let per_fu = if *count > 0 {
            bound.div_ceil(*count)
        } else {
            0
        };
        let m = lib.mux_tree_area(per_fu as usize, width) * 2.0 * *count as f64;
        fu_area += a;
        mux_area += m;
        fu_groups.push(FuGroup {
            class: *class,
            count: *count,
            width,
            bound_ops: bound,
            fu_area: a,
            mux_area: m,
        });
    }

    // Architectural state: statics, parameters (registered interfaces),
    // counters and staged locals that live across segments.
    let mut state_bits = 0u64;
    for (_, v) in func.iter_vars() {
        let bits = v.ty.width() as u64 * v.len.unwrap_or(1) as u64;
        let is_mem = matches!(
            directives.array_mapping(&v.name),
            ArrayMapping::Memory { .. }
        );
        match v.kind {
            VarKind::Static | VarKind::Param => {
                if !is_mem {
                    state_bits += bits;
                }
            }
            VarKind::Counter => state_bits += 8, // narrowed counter register
            VarKind::Local => {
                // Locals that cross segment boundaries (live-in of any
                // segment) are architectural registers too.
                let crosses = lowered.segments.iter().any(|s| {
                    s.dfg()
                        .live_in
                        .iter()
                        .any(|id| func.var(*id).name == v.name)
                });
                if crosses {
                    state_bits += bits;
                }
            }
        }
    }

    let reg_area = lib.register_area(state_bits + temp_bits_peak);
    let ctrl_area = lib.controller_area(fsm_states);
    let total_area = fu_area + mux_area + reg_area + ctrl_area;

    Allocation {
        fu_groups,
        state_bits,
        temp_bits: temp_bits_peak,
        fsm_states,
        fu_area,
        mux_area,
        reg_area,
        ctrl_area,
        total_area,
    }
}

/// Classes that consume datapath logic worth allocating. Shared with the
/// explorer's lower bound (`crate::bound`), which must price exactly the
/// classes the allocator does.
pub(crate) fn counts_as_datapath(class: OpClass) -> bool {
    matches!(
        class,
        OpClass::Add
            | OpClass::Mul
            | OpClass::Cmp
            | OpClass::Mux
            | OpClass::Neg
            | OpClass::Sign
            | OpClass::Cast
    )
}

/// Peak bits of values produced in one cycle and consumed in a later one
/// (they need a pipeline/temporary register).
fn live_bits(dfg: &Dfg, sched: &Schedule) -> u64 {
    if sched.depth <= 1 {
        return 0;
    }
    // One edge sweep computes every producer's last-use cycle; each value
    // live across boundaries [def, last_use) contributes its width to that
    // range of a difference array, whose prefix-sum maximum is the peak.
    let n = dfg.len();
    let mut last_use: Vec<u32> = (0..n).map(|i| sched.node_cycle[i]).collect();
    for (id, m) in dfg.iter() {
        let uc = sched.node_cycle[id.index()];
        for p in &m.preds {
            let e = &mut last_use[p.index()];
            *e = (*e).max(uc);
        }
    }
    let boundaries = sched.depth as usize - 1;
    let mut diff = vec![0i64; boundaries + 1];
    for (id, nd) in dfg.iter() {
        if matches!(
            nd.kind,
            NodeKind::VarWrite(_)
                | NodeKind::Store(_)
                | NodeKind::StoreCond(_)
                | NodeKind::Const(_)
        ) {
            continue; // committed to architectural state or wired
        }
        let def = sched.node_cycle[id.index()] as usize;
        let lu = last_use[id.index()] as usize;
        if lu > def && def < boundaries {
            diff[def] += nd.format.width() as i64;
            diff[lu.min(boundaries)] -= nd.format.width() as i64;
        }
    }
    let mut peak = 0i64;
    let mut bits = 0i64;
    for d in diff.iter().take(boundaries) {
        bits += d;
        peak = peak.max(bits);
    }
    peak as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::schedule::schedule_dfg;
    use crate::transform::apply_loop_transforms;
    use hls_ir::{CmpOp, Expr, FunctionBuilder, Ty};

    fn synth_alloc(func: &Function, d: &Directives) -> Allocation {
        let t = apply_loop_transforms(func, d);
        let lowered = lower(&t.func, d);
        let lib = TechLibrary::asic_100mhz();
        let is_mem = |_: hls_ir::VarId| -> Option<(u32, u32)> { None };
        let schedules: Vec<Schedule> = lowered
            .segments
            .iter()
            .map(|s| schedule_dfg(s.dfg(), d, &lib, &is_mem).expect("schedules"))
            .collect();
        allocate(&lowered.func, &lowered, &schedules, d, &lib)
    }

    fn mac_loop(unrolled: u32) -> (Function, Directives) {
        let mut b = FunctionBuilder::new("fir");
        let x = b.param_array("x", Ty::fixed(10, 0), 16);
        let c = b.param_array("c", Ty::fixed(10, 0), 16);
        let out = b.param_scalar("out", Ty::fixed(24, 4));
        let acc = b.local("acc", Ty::fixed(24, 4));
        b.assign(acc, Expr::int_const(0));
        b.for_loop("mac", 0, CmpOp::Lt, 16, 1, |b, k| {
            b.assign(
                acc,
                Expr::add(
                    Expr::var(acc),
                    Expr::mul(Expr::load(x, Expr::var(k)), Expr::load(c, Expr::var(k))),
                ),
            );
        });
        b.assign(out, Expr::var(acc));
        let mut d = Directives::new(10.0);
        if unrolled > 1 {
            d = d.unroll("mac", crate::directives::Unroll::Factor(unrolled));
        }
        (b.build(), d)
    }

    #[test]
    fn unrolling_increases_multipliers_and_area() {
        let (f, d1) = mac_loop(1);
        let a1 = synth_alloc(&f, &d1);
        let (_, d4) = mac_loop(4);
        let a4 = synth_alloc(&f, &d4);
        assert_eq!(a1.fu_count(OpClass::Mul), 1);
        // Unrolling by 4 exposes 4 multiplies; chained accumulation may
        // split the body into 2 cycles, so the peak is at least 2.
        assert!(
            a4.fu_count(OpClass::Mul) >= 2,
            "{}",
            a4.fu_count(OpClass::Mul)
        );
        assert!(a4.fu_count(OpClass::Mul) > a1.fu_count(OpClass::Mul));
        assert!(a4.total_area > a1.total_area);
    }

    #[test]
    fn state_bits_cover_params_and_locals() {
        let (f, d) = mac_loop(1);
        let a = synth_alloc(&f, &d);
        // x and c arrays: 16 * 10 bits each; out 24; acc crosses segments.
        assert!(a.state_bits >= (160 + 160 + 24) as u64, "{}", a.state_bits);
    }

    #[test]
    fn fsm_states_match_segment_depths() {
        let (f, d) = mac_loop(1);
        let a = synth_alloc(&f, &d);
        // init straight (1) + loop body (1) + tail (1) + output commit is in
        // the tail or its own; allow a small range but require >= 3.
        assert!(a.fsm_states >= 3, "{}", a.fsm_states);
    }

    #[test]
    fn sharing_cost_appears_in_mux_area() {
        let (f, d1) = mac_loop(1);
        let a1 = synth_alloc(&f, &d1);
        // One multiplier bound to 16 ops (well, 1 op in body but reused per
        // iteration: binding is per schedule, so body has 1) — mux area may
        // be zero here; with unroll 4, 4 muls each bound once -> still zero.
        // The accumulators' adds share an adder with counter logic; just
        // assert the field is finite and non-negative.
        assert!(a1.mux_area >= 0.0);
    }
}
