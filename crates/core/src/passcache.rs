//! Content-addressed pass-level cache for incremental synthesis.
//!
//! Every cacheable pipeline stage (`loop-transforms`, `lower`,
//! `netlist-opt`, `schedule`, `allocate`) derives a stable key from its
//! *exact* inputs: the key of the input slot it consumes (so keys chain
//! through the pipeline), the directive subset the stage actually reads,
//! the [`TechLibrary::fingerprint`] when the stage uses the timing/area
//! model, and the clock period bits only for clock-dependent stages.
//! Identical inputs therefore reuse identical results across sweep
//! points, across serve requests, and — for the clock-independent prefix
//! — across process restarts; any key-relevant input change misses by
//! construction.
//!
//! The cache is two-tiered:
//!
//! - a sharded in-memory map with an LRU cap on entries and approximate
//!   bytes (mirroring the serve store's `(mtime,digest)` LRU), and
//! - an optional persistent tier ([`crate::docstore`]) holding the
//!   clock-independent stages (`loop-transforms`, `lower`, `netlist-opt`)
//!   with the serve store's tmp+rename / integrity-recheck / quarantine
//!   envelope. `schedule` and `allocate` results are cheap to recompute
//!   from a cached netlist and clock-dependent, so they stay in memory
//!   only.
//!
//! Hits replay the stage's exact output object; the pipeline reports
//! them as memo hits in [`crate::pipeline::PassTrace`], so cached and
//! cold runs produce byte-identical artifacts.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use hls_ir::{stable_digest, Expr, Function, Json, Stmt};

use crate::allocate::Allocation;
use crate::directives::Directives;
use crate::docstore::DocStore;
use crate::lower::Lowered;
use crate::netlist::{NetlistObligation, NetlistReport};
use crate::persist;
use crate::schedule::Schedule;
use crate::tech::TechLibrary;
use crate::transform::TransformResult;

/// Key-derivation schema tag; bumped whenever key composition changes so
/// stale persistent tiers read as misses.
const KEY_SCHEMA: &str = "pc1";

const SHARDS: usize = 16;

// ---------------------------------------------------------------------------
// Key derivation
// ---------------------------------------------------------------------------

/// Key of the pipeline's input slot: the source function's canonical IR
/// rendering (parameter formats, statements, loop structure — everything
/// synthesis reads).
pub fn base_key(func: &Function) -> String {
    stable_digest(format!("{KEY_SCHEMA};base;{func}").as_bytes())
}

/// `loop-transforms` key: input function plus the merge policy and
/// per-loop directives the transform pipeline reads (the same subset
/// [`crate::explore::transform_signature`] renders).
pub fn transform_key(base_key: &str, d: &Directives) -> String {
    stable_digest(
        format!(
            "{KEY_SCHEMA};loop-transforms;{base_key};{}",
            crate::explore::transform_signature(d)
        )
        .as_bytes(),
    )
}

/// `lower` key: transformed-function key plus the loop, array and
/// interface directives lowering reads (pipelining, port synthesis).
/// Clock-independent.
pub fn lower_key(transform_key: &str, d: &Directives) -> String {
    stable_digest(
        format!(
            "{KEY_SCHEMA};lower;{transform_key};loops={:?};arrays={:?};ifaces={:?}",
            d.loops, d.arrays, d.interfaces
        )
        .as_bytes(),
    )
}

/// `netlist-opt` key: lowered-design key plus the optimizer config and
/// the library fingerprint (rebalancing uses the delay model).
/// Clock-independent — clock twins share this entry.
pub fn netlist_key(lower_key: &str, d: &Directives, lib: &TechLibrary) -> String {
    stable_digest(
        format!(
            "{KEY_SCHEMA};netlist-opt;{lower_key};opt={};lib={}",
            d.netlist_opt.to_json().write(),
            lib.fingerprint()
        )
        .as_bytes(),
    )
}

/// `schedule` key: optimized-netlist key plus the exact clock period
/// bits and the array/interface/FU-limit directives the scheduler reads,
/// plus the library fingerprint.
pub fn schedule_key(netlist_key: &str, d: &Directives, lib: &TechLibrary) -> String {
    stable_digest(
        format!(
            "{KEY_SCHEMA};schedule;{netlist_key};clk={:016x};arrays={:?};ifaces={:?};fu={:?};lib={}",
            d.clock_period_ns.to_bits(),
            d.arrays,
            d.interfaces,
            d.fu_limits,
            lib.fingerprint()
        )
        .as_bytes(),
    )
}

/// `allocate` key: schedule key (which already pins the clock and
/// netlist) plus the array mapping directives and library fingerprint
/// binding/area read.
pub fn allocate_key(schedule_key: &str, d: &Directives, lib: &TechLibrary) -> String {
    stable_digest(
        format!(
            "{KEY_SCHEMA};allocate;{schedule_key};arrays={:?};lib={}",
            d.arrays,
            lib.fingerprint()
        )
        .as_bytes(),
    )
}

// ---------------------------------------------------------------------------
// Cached values
// ---------------------------------------------------------------------------

/// The netlist optimizer's cached output: the rewritten design plus the
/// measurements and proof obligations it shipped (replayed on a hit so
/// downstream verification sees exactly what a cold run would).
#[derive(Debug, Clone)]
pub struct NetlistEntry {
    /// The design after optimization.
    pub lowered: Lowered,
    /// Per-pass measurements.
    pub report: NetlistReport,
    /// One proof obligation per pass that changed the design. Shared so a
    /// hit hands downstream verification the cached list without copying
    /// the two `Lowered` snapshots inside every obligation.
    pub obligations: Arc<Vec<NetlistObligation>>,
}

#[derive(Clone)]
enum Value {
    Transform(Arc<TransformResult>),
    Lowered(Arc<Lowered>),
    Netlist(Arc<NetlistEntry>),
    Schedule(Arc<Vec<Schedule>>),
    Allocate(Arc<Allocation>),
}

struct Entry {
    value: Value,
    bytes: usize,
    tick: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<String, Entry>,
    bytes: usize,
}

// ---------------------------------------------------------------------------
// Size estimation (for the approximate-bytes LRU cap)
// ---------------------------------------------------------------------------

fn stmt_weight(stmts: &[Stmt]) -> usize {
    fn expr_w(e: &Expr) -> usize {
        1 + match e {
            Expr::Load { index, .. } => expr_w(index),
            Expr::Unary { arg, .. } => expr_w(arg),
            Expr::Binary { lhs, rhs, .. } | Expr::Compare { lhs, rhs, .. } => {
                expr_w(lhs) + expr_w(rhs)
            }
            Expr::Select { cond, then_, else_ } => expr_w(cond) + expr_w(then_) + expr_w(else_),
            Expr::Cast { arg, .. } => expr_w(arg),
            _ => 0,
        }
    }
    stmts
        .iter()
        .map(|s| match s {
            Stmt::Assign { value, .. } => 1 + expr_w(value),
            Stmt::Store { index, value, .. } => 1 + expr_w(index) + expr_w(value),
            Stmt::For(l) => 2 + stmt_weight(&l.body),
            Stmt::If { cond, then_, else_ } => {
                1 + expr_w(cond) + stmt_weight(then_) + stmt_weight(else_)
            }
        })
        .sum()
}

fn approx_func(f: &Function) -> usize {
    64 * f.vars.len() + 48 * stmt_weight(&f.body)
}

fn approx_transform(t: &TransformResult) -> usize {
    approx_func(&t.func) + 64 * t.merges.len() + 64
}

fn approx_lowered(l: &Lowered) -> usize {
    approx_func(&l.func)
        + l.segments
            .iter()
            .map(|s| 64 + 48 * s.dfg().len())
            .sum::<usize>()
        + 64 * l.ports.len()
        + 64
}

fn approx_netlist(e: &NetlistEntry) -> usize {
    approx_lowered(&e.lowered)
        + e.obligations
            .iter()
            .map(|ob| approx_lowered(&ob.before) + approx_lowered(&ob.after))
            .sum::<usize>()
        + 96 * e.report.deltas.len()
}

fn approx_schedules(s: &[Schedule]) -> usize {
    s.iter()
        .map(|x| 64 + 32 * x.node_cycle.len())
        .sum::<usize>()
        + 32
}

fn approx_allocation(a: &Allocation) -> usize {
    128 + 96 * a.fu_groups.len()
}

// ---------------------------------------------------------------------------
// The cache
// ---------------------------------------------------------------------------

/// Configuration for [`PassCache`].
#[derive(Debug, Clone)]
pub struct PassCacheConfig {
    /// Maximum in-memory entries before LRU eviction.
    pub max_entries: usize,
    /// Maximum approximate in-memory bytes before LRU eviction.
    pub max_bytes: usize,
    /// Root of the persistent tier; `None` keeps the cache memory-only.
    pub persist_dir: Option<PathBuf>,
}

impl Default for PassCacheConfig {
    fn default() -> Self {
        PassCacheConfig {
            max_entries: 8192,
            max_bytes: 256 << 20,
            persist_dir: None,
        }
    }
}

/// A census of the cache's activity and occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassCacheStats {
    /// Lookups served from either tier.
    pub hits: u64,
    /// Lookups that found nothing (the stage ran cold).
    pub misses: u64,
    /// Values inserted into the in-memory tier.
    pub inserts: u64,
    /// In-memory entries displaced by the LRU cap.
    pub evictions: u64,
    /// The subset of `hits` served by the persistent tier.
    pub persist_hits: u64,
    /// Current in-memory entry count.
    pub entries: u64,
    /// Current approximate in-memory bytes.
    pub bytes: u64,
    /// Entries in the persistent tier (0 when disabled).
    pub persist_entries: u64,
    /// Bytes in the persistent tier (0 when disabled).
    pub persist_bytes: u64,
    /// Persistent entries quarantined after failing integrity checks.
    pub persist_quarantined: u64,
}

impl PassCacheStats {
    /// Stable JSON form for `--stats` and the cluster stats frame.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("hits", Json::count(self.hits)),
            ("misses", Json::count(self.misses)),
            ("inserts", Json::count(self.inserts)),
            ("evictions", Json::count(self.evictions)),
            ("persist_hits", Json::count(self.persist_hits)),
            ("entries", Json::count(self.entries)),
            ("bytes", Json::count(self.bytes)),
            ("persist_entries", Json::count(self.persist_entries)),
            ("persist_bytes", Json::count(self.persist_bytes)),
            ("persist_quarantined", Json::count(self.persist_quarantined)),
        ])
    }
}

/// The two-tier content-addressed pass cache. Cheap to share: clone an
/// `Arc<PassCache>` into every [`crate::pipeline::PipelineConfig`] that
/// should reuse results.
pub struct PassCache {
    shards: Vec<Mutex<Shard>>,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    persist_hits: AtomicU64,
    persist: Option<DocStore>,
    entries_cap: usize,
    bytes_cap: usize,
}

impl std::fmt::Debug for PassCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassCache")
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for PassCache {
    fn default() -> Self {
        PassCache::new(PassCacheConfig::default())
    }
}

impl PassCache {
    /// Creates a cache. The persistent tier is best-effort: if the
    /// directory cannot be created the cache runs memory-only (a pass
    /// cache must never turn an I/O problem into a synthesis failure).
    pub fn new(cfg: PassCacheConfig) -> PassCache {
        let persist = cfg
            .persist_dir
            .as_ref()
            .and_then(|dir| DocStore::open(dir).ok());
        PassCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            persist_hits: AtomicU64::new(0),
            persist,
            entries_cap: (cfg.max_entries / SHARDS).max(1),
            bytes_cap: (cfg.max_bytes / SHARDS).max(1),
        }
    }

    /// A memory-only cache with the default caps.
    pub fn in_memory() -> PassCache {
        PassCache::new(PassCacheConfig::default())
    }

    /// True when a persistent tier is attached.
    pub fn is_persistent(&self) -> bool {
        self.persist.is_some()
    }

    /// Snapshot of counters and occupancy across both tiers.
    pub fn stats(&self) -> PassCacheStats {
        let mut entries = 0u64;
        let mut bytes = 0u64;
        for shard in &self.shards {
            let s = shard.lock().expect("pass cache shard poisoned");
            entries += s.map.len() as u64;
            bytes += s.bytes as u64;
        }
        let (persist_entries, persist_bytes) = self.persist.as_ref().map_or((0, 0), |p| p.census());
        let persist_quarantined = self.persist.as_ref().map_or(0, |p| p.quarantined());
        PassCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            persist_hits: self.persist_hits.load(Ordering::Relaxed),
            entries,
            bytes,
            persist_entries,
            persist_bytes,
            persist_quarantined,
        }
    }

    fn shard(&self, key: &str) -> &Mutex<Shard> {
        let b = key.as_bytes().first().copied().unwrap_or(0) as usize;
        // Keys are lowercase hex; the low nibble spreads uniformly.
        &self.shards[b & (SHARDS - 1)]
    }

    fn get_mem(&self, key: &str) -> Option<Value> {
        let mut shard = self.shard(key).lock().expect("pass cache shard poisoned");
        let entry = shard.map.get_mut(key)?;
        entry.tick = self.tick.fetch_add(1, Ordering::Relaxed);
        Some(entry.value.clone())
    }

    fn put_mem(&self, key: &str, value: Value, bytes: usize) {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(key).lock().expect("pass cache shard poisoned");
        if let Some(old) = shard
            .map
            .insert(key.to_string(), Entry { value, bytes, tick })
        {
            shard.bytes = shard.bytes.saturating_sub(old.bytes);
        }
        shard.bytes += bytes;
        self.inserts.fetch_add(1, Ordering::Relaxed);
        // LRU eviction against both caps, mirroring the serve store's
        // oldest-first budget enforcement.
        while shard.map.len() > self.entries_cap || shard.bytes > self.bytes_cap {
            let Some(oldest) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if oldest == key && shard.map.len() == 1 {
                // A single entry over the byte cap stays resident; evicting
                // the value we just inserted would make the cache useless
                // for designs larger than the cap.
                break;
            }
            if let Some(e) = shard.map.remove(&oldest) {
                shard.bytes = shard.bytes.saturating_sub(e.bytes);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn hit(&self, from_persist: bool) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        if from_persist {
            self.persist_hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    fn persist_put(&self, key: &str, stage: &str, data: impl FnOnce() -> Json) {
        if let Some(store) = &self.persist {
            // Content-addressed entries are immutable: a key already on
            // disk holds exactly this body, so rewriting it would only
            // burn a tmp+rename cycle.
            if store.contains(key) {
                return;
            }
            let body = Json::obj(vec![("stage", Json::str(stage)), ("data", data())]);
            store.put(key, &body);
        }
    }

    /// Whether the in-memory tier currently holds `key`.
    ///
    /// A read-only probe: no counters move and the entry's LRU position
    /// is untouched, so memo layers that already hold the value can skip
    /// a redundant [`put`](PassCache::put_transform) without distorting
    /// the hit/miss statistics.
    pub fn contains(&self, key: &str) -> bool {
        self.shard(key)
            .lock()
            .expect("pass cache shard poisoned")
            .map
            .contains_key(key)
    }

    fn persist_get(&self, key: &str, stage: &str) -> Option<Json> {
        let store = self.persist.as_ref()?;
        let body = store.get(key)?;
        if body.get("stage")?.as_str()? != stage {
            return None;
        }
        body.get("data").cloned()
    }

    /// Looks up a `loop-transforms` result.
    pub fn get_transform(&self, key: &str) -> Option<Arc<TransformResult>> {
        if let Some(Value::Transform(t)) = self.get_mem(key) {
            self.hit(false);
            return Some(t);
        }
        if let Some(data) = self.persist_get(key, "loop-transforms") {
            if let Some(t) = persist::transform_from_json(&data) {
                let t = Arc::new(t);
                self.put_mem(key, Value::Transform(t.clone()), approx_transform(&t));
                self.hit(true);
                return Some(t);
            }
        }
        self.miss();
        None
    }

    /// Stores a `loop-transforms` result in both tiers.
    pub fn put_transform(&self, key: &str, t: &Arc<TransformResult>) {
        self.put_mem(key, Value::Transform(t.clone()), approx_transform(t));
        self.persist_put(key, "loop-transforms", || persist::transform_to_json(t));
    }

    /// Looks up a `lower` result.
    pub fn get_lowered(&self, key: &str) -> Option<Arc<Lowered>> {
        if let Some(Value::Lowered(l)) = self.get_mem(key) {
            self.hit(false);
            return Some(l);
        }
        if let Some(data) = self.persist_get(key, "lower") {
            if let Some(l) = persist::lowered_from_json(&data) {
                let l = Arc::new(l);
                self.put_mem(key, Value::Lowered(l.clone()), approx_lowered(&l));
                self.hit(true);
                return Some(l);
            }
        }
        self.miss();
        None
    }

    /// Stores a `lower` result in both tiers.
    pub fn put_lowered(&self, key: &str, l: &Arc<Lowered>) {
        self.put_mem(key, Value::Lowered(l.clone()), approx_lowered(l));
        self.persist_put(key, "lower", || persist::lowered_to_json(l));
    }

    /// Looks up a `netlist-opt` outcome (design, report, obligations).
    pub fn get_netlist(&self, key: &str) -> Option<Arc<NetlistEntry>> {
        if let Some(Value::Netlist(e)) = self.get_mem(key) {
            self.hit(false);
            return Some(e);
        }
        if let Some(data) = self.persist_get(key, "netlist-opt") {
            if let Some(e) = netlist_entry_from_json(&data) {
                let e = Arc::new(e);
                self.put_mem(key, Value::Netlist(e.clone()), approx_netlist(&e));
                self.hit(true);
                return Some(e);
            }
        }
        self.miss();
        None
    }

    /// Stores a `netlist-opt` outcome in both tiers.
    pub fn put_netlist(&self, key: &str, e: &Arc<NetlistEntry>) {
        self.put_mem(key, Value::Netlist(e.clone()), approx_netlist(e));
        self.persist_put(key, "netlist-opt", || netlist_entry_to_json(e));
    }

    /// Looks up a `schedule` result (in-memory tier only: schedules are
    /// clock-dependent and cheap relative to the stages above them).
    pub fn get_schedules(&self, key: &str) -> Option<Arc<Vec<Schedule>>> {
        if let Some(Value::Schedule(s)) = self.get_mem(key) {
            self.hit(false);
            return Some(s);
        }
        self.miss();
        None
    }

    /// Stores a `schedule` result.
    pub fn put_schedules(&self, key: &str, s: &Arc<Vec<Schedule>>) {
        self.put_mem(key, Value::Schedule(s.clone()), approx_schedules(s));
    }

    /// Looks up an `allocate` result (in-memory tier only).
    pub fn get_allocation(&self, key: &str) -> Option<Arc<Allocation>> {
        if let Some(Value::Allocate(a)) = self.get_mem(key) {
            self.hit(false);
            return Some(a);
        }
        self.miss();
        None
    }

    /// Stores an `allocate` result.
    pub fn put_allocation(&self, key: &str, a: &Arc<Allocation>) {
        self.put_mem(key, Value::Allocate(a.clone()), approx_allocation(a));
    }
}

fn netlist_entry_to_json(e: &NetlistEntry) -> Json {
    Json::obj(vec![
        ("lowered", persist::lowered_to_json(&e.lowered)),
        ("report", persist::report_to_json(&e.report)),
        (
            "obligations",
            Json::Arr(
                e.obligations
                    .iter()
                    .map(persist::obligation_to_json)
                    .collect(),
            ),
        ),
    ])
}

fn netlist_entry_from_json(j: &Json) -> Option<NetlistEntry> {
    Some(NetlistEntry {
        lowered: persist::lowered_from_json(j.get("lowered")?)?,
        report: persist::report_from_json(j.get("report")?)?,
        obligations: j
            .get("obligations")?
            .as_arr()?
            .iter()
            .map(persist::obligation_from_json)
            .collect::<Option<Vec<_>>>()
            .map(Arc::new)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directives::MergePolicy;
    use crate::transform::apply_loop_transforms;
    use hls_ir::parse_function;

    const SRC: &str = r#"
        void k(sc_fixed<8,4> x[2], sc_fixed<12,6> *out) {
            sc_fixed<12,6> acc = 0;
            l: for (int i = 0; i < 2; i++) {
                acc += x[i] * 2;
            }
            *out = acc;
        }
    "#;

    fn sample_transform() -> Arc<TransformResult> {
        let func = parse_function(SRC).unwrap();
        Arc::new(apply_loop_transforms(&func, &Directives::new(10.0)))
    }

    #[test]
    fn keys_chain_and_separate_stages() {
        let func = parse_function(SRC).unwrap();
        let d = Directives::new(10.0);
        let lib = TechLibrary::asic_100mhz();
        let b = base_key(&func);
        let t = transform_key(&b, &d);
        let l = lower_key(&t, &d);
        let n = netlist_key(&l, &d, &lib);
        let s = schedule_key(&n, &d, &lib);
        let a = allocate_key(&s, &d, &lib);
        let all = [&b, &t, &l, &n, &s, &a];
        for (i, x) in all.iter().enumerate() {
            assert_eq!(x.len(), 32);
            for y in &all[i + 1..] {
                assert_ne!(x, y, "stage keys must not collide");
            }
        }
        // Determinism: recomputation yields the same key.
        assert_eq!(t, transform_key(&base_key(&func), &d));
    }

    #[test]
    fn clock_only_affects_clock_dependent_stages() {
        let func = parse_function(SRC).unwrap();
        let lib = TechLibrary::asic_100mhz();
        let d1 = Directives::new(10.0);
        let mut d2 = Directives::new(10.0);
        d2.clock_period_ns = f64::from_bits(d2.clock_period_ns.to_bits() + 1);
        let b = base_key(&func);
        assert_eq!(transform_key(&b, &d1), transform_key(&b, &d2));
        let t = transform_key(&b, &d1);
        assert_eq!(lower_key(&t, &d1), lower_key(&t, &d2));
        let l = lower_key(&t, &d1);
        assert_eq!(netlist_key(&l, &d1, &lib), netlist_key(&l, &d2, &lib));
        let n = netlist_key(&l, &d1, &lib);
        // One clock LSB forces a schedule miss.
        assert_ne!(schedule_key(&n, &d1, &lib), schedule_key(&n, &d2, &lib));
    }

    #[test]
    fn lru_evicts_oldest_first() {
        let cache = PassCache::new(PassCacheConfig {
            max_entries: SHARDS, // one entry per shard
            max_bytes: usize::MAX,
            persist_dir: None,
        });
        let t = sample_transform();
        // Two keys landing in the same shard: second insert evicts first.
        let k1 = "00aaaaaaaaaaaaaaaaaaaaaaaaaaaaaa";
        let k2 = "00bbbbbbbbbbbbbbbbbbbbbbbbbbbbbb";
        cache.put_transform(k1, &t);
        cache.put_transform(k2, &t);
        assert!(cache.get_transform(k1).is_none());
        assert!(cache.get_transform(k2).is_some());
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.inserts, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn byte_cap_keeps_most_recent() {
        let t = sample_transform();
        let one = approx_transform(&t);
        let cache = PassCache::new(PassCacheConfig {
            max_entries: usize::MAX >> 1,
            // Per-shard cap fits one entry but not two.
            max_bytes: one * SHARDS + SHARDS,
            persist_dir: None,
        });
        cache.put_transform("00aaaaaaaaaaaaaaaaaaaaaaaaaaaaaa", &t);
        cache.put_transform("00bbbbbbbbbbbbbbbbbbbbbbbbbbbbbb", &t);
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 1);
        assert!(cache
            .get_transform("00bbbbbbbbbbbbbbbbbbbbbbbbbbbbbb")
            .is_some());
    }

    #[test]
    fn one_directive_bit_forces_a_miss() {
        let func = parse_function(SRC).unwrap();
        let b = base_key(&func);
        let d1 = Directives::new(10.0);
        // One directive bit (an unroll factor) re-keys the transform
        // stage and, through key chaining, every stage downstream.
        let d2 = Directives::new(10.0).unroll("l", crate::directives::Unroll::Factor(2));
        assert_ne!(transform_key(&b, &d1), transform_key(&b, &d2));
        // A merge-policy flip re-keys too.
        let mut d3 = Directives::new(10.0);
        d3.merge_policy = if d3.merge_policy == MergePolicy::Off {
            MergePolicy::AllowHazards
        } else {
            MergePolicy::Off
        };
        assert_ne!(transform_key(&b, &d1), transform_key(&b, &d3));
    }

    #[test]
    fn one_library_delay_forces_a_miss_downstream_only() {
        let func = parse_function(SRC).unwrap();
        let d = Directives::new(10.0);
        let lib1 = TechLibrary::asic_100mhz();
        let lib2 = lib1.with_delay_base_offset(1e-3);
        let b = base_key(&func);
        let t = transform_key(&b, &d);
        let l = lower_key(&t, &d);
        // Transforms and lowering never read the library, so their keys
        // are library-blind by construction; the first library consumer
        // (netlist-opt) and everything after it must miss.
        assert_ne!(netlist_key(&l, &d, &lib1), netlist_key(&l, &d, &lib2));
        let n = netlist_key(&l, &d, &lib1);
        assert_ne!(schedule_key(&n, &d, &lib1), schedule_key(&n, &d, &lib2));
    }

    #[test]
    fn corrupt_persistent_entry_quarantines_and_repopulates() {
        fn truncate_objects(dir: &std::path::Path) {
            for entry in std::fs::read_dir(dir).expect("readable dir") {
                let path = entry.expect("dir entry").path();
                if path.is_dir() {
                    if path.file_name().is_some_and(|n| n == "quarantine") {
                        continue;
                    }
                    truncate_objects(&path);
                } else if path.extension().is_some_and(|e| e == "json") {
                    let data = std::fs::read(&path).expect("readable object");
                    std::fs::write(&path, &data[..data.len() / 2]).expect("truncable object");
                }
            }
        }
        let dir =
            std::env::temp_dir().join(format!("hls-passcache-test-{}-corrupt", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let t = sample_transform();
        let key = stable_digest(b"corrupt-me");
        let config = PassCacheConfig {
            persist_dir: Some(dir.clone()),
            ..PassCacheConfig::default()
        };
        PassCache::new(config.clone()).put_transform(&key, &t);
        // Tear every persisted object in place, as a crash mid-write
        // (against the store's tmp+rename discipline) or disk fault
        // would.
        truncate_objects(&dir);
        let cache = PassCache::new(config.clone());
        assert!(
            cache.get_transform(&key).is_none(),
            "torn entry must read as a miss, never a wrong value"
        );
        assert!(cache.stats().persist_quarantined >= 1, "teardown recorded");
        // The miss's recompute repopulates the persistent tier...
        cache.put_transform(&key, &t);
        // ...and a fresh process serves the repaired entry again.
        let cache = PassCache::new(config);
        let back = cache.get_transform(&key).expect("repopulated entry");
        assert_eq!(back.func, t.func);
        assert_eq!(cache.stats().persist_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistent_tier_survives_reopen() {
        let dir =
            std::env::temp_dir().join(format!("hls-passcache-test-{}-reopen", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let t = sample_transform();
        let key = stable_digest(b"transform-key");
        {
            let cache = PassCache::new(PassCacheConfig {
                persist_dir: Some(dir.clone()),
                ..PassCacheConfig::default()
            });
            cache.put_transform(&key, &t);
        }
        let cache = PassCache::new(PassCacheConfig {
            persist_dir: Some(dir.clone()),
            ..PassCacheConfig::default()
        });
        let back = cache.get_transform(&key).expect("persisted entry");
        assert_eq!(back.func, t.func);
        let s = cache.stats();
        assert_eq!(s.persist_hits, 1);
        assert!(s.persist_entries >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
