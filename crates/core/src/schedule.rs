//! Resource-constrained list scheduling with operator chaining.
//!
//! Scheduling "transforms the sequential specification into an architecture
//! with a well defined cycle-by-cycle behavior" (Section 2.5). Nodes are
//! placed into cycles in priority order (longest combinational path first);
//! a node may *chain* combinationally after a same-cycle predecessor as long
//! as the accumulated delay fits the clock period, which is what lets a
//! complete complex MAC execute in a single 10 ns cycle.

use std::collections::BTreeMap;

use hls_ir::VarId;

use crate::dfg::{Dfg, NodeId, NodeKind};
use crate::directives::Directives;
use crate::error::SynthesisError;
use crate::tech::{OpClass, TechLibrary};

/// The cycle-by-cycle placement of one DFG.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Cycle of each node (indexed by [`NodeId::index`]).
    pub node_cycle: Vec<u32>,
    /// Start time of each node within its cycle (ns).
    pub node_start_ns: Vec<f64>,
    /// End time of each node within its cycle (ns).
    pub node_end_ns: Vec<f64>,
    /// Number of cycles the region occupies.
    pub depth: u32,
    /// Operator class per node (resolved against the array mappings).
    pub node_class: Vec<OpClass>,
    /// Width used for delay/area characterization per node (operand width
    /// for multipliers, output width otherwise).
    pub node_width: Vec<u32>,
}

impl Schedule {
    /// Nodes placed in `cycle`, in start-time order.
    pub fn nodes_in_cycle(&self, cycle: u32) -> Vec<NodeId> {
        let mut v: Vec<usize> = (0..self.node_cycle.len())
            .filter(|i| self.node_cycle[*i] == cycle)
            .collect();
        v.sort_by(|a, b| {
            self.node_start_ns[*a]
                .partial_cmp(&self.node_start_ns[*b])
                .expect("finite start times")
        });
        v.into_iter().map(|i| NodeId(i as u32)).collect()
    }

    /// The longest combinational path in any cycle (critical path, ns).
    pub fn critical_path_ns(&self) -> f64 {
        self.node_end_ns.iter().cloned().fold(0.0, f64::max)
    }
}

/// Schedules one DFG.
///
/// # Errors
///
/// Returns [`SynthesisError::InfeasibleClock`] when a single operation is
/// slower than the clock period and [`SynthesisError::Unschedulable`] when
/// resource constraints cannot be met.
pub fn schedule_dfg(
    dfg: &Dfg,
    directives: &Directives,
    lib: &TechLibrary,
    mem_ports: &dyn Fn(VarId) -> Option<(u32, u32)>,
) -> Result<Schedule, SynthesisError> {
    let is_memory = |v: VarId| mem_ports(v).is_some();
    let clock = directives.clock_period_ns;
    let n = dfg.len();
    let classes: Vec<OpClass> = dfg
        .nodes()
        .iter()
        .map(|nd| nd.op_class(&is_memory))
        .collect();
    let char_widths: Vec<u32> = dfg
        .nodes()
        .iter()
        .map(|nd| match &nd.kind {
            NodeKind::Bin(hls_ir::BinOp::Mul) => nd
                .preds
                .iter()
                .take(2)
                .map(|p| dfg.node(*p).format.width())
                .max()
                .unwrap_or(nd.format.width()),
            _ => nd.format.width(),
        })
        .collect();
    let delays: Vec<f64> = classes
        .iter()
        .zip(&char_widths)
        .map(|(class, width)| lib.delay(*class, *width))
        .collect();

    for (i, d) in delays.iter().enumerate() {
        if *d > clock {
            return Err(SynthesisError::InfeasibleClock {
                op: format!(
                    "{:?} ({} bits)",
                    dfg.nodes()[i].kind,
                    dfg.nodes()[i].format.width()
                ),
                delay_ns: *d,
                clock_ns: clock,
            });
        }
    }

    // Successor lists and priorities (longest path to a sink, in ns).
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, nd) in dfg.nodes().iter().enumerate() {
        for p in &nd.preds {
            succs[p.index()].push(i);
        }
    }
    let mut priority = vec![0.0f64; n];
    for i in (0..n).rev() {
        let down = succs[i].iter().map(|s| priority[*s]).fold(0.0, f64::max);
        priority[i] = delays[i] + down;
    }

    let mut node_cycle = vec![u32::MAX; n];
    let mut node_start = vec![0.0f64; n];
    let mut node_end = vec![0.0f64; n];
    let mut remaining = n;
    let mut cycle: u32 = 0;
    // Per-cycle resource usage.
    let max_cycles = (n as u32 + 4) * 4 + 64;

    while remaining > 0 {
        if cycle > max_cycles {
            return Err(SynthesisError::Unschedulable {
                context: format!("{remaining} operations left after {cycle} cycles"),
            });
        }
        let mut fu_used: BTreeMap<OpClass, u32> = BTreeMap::new();
        let mut mem_reads: BTreeMap<VarId, u32> = BTreeMap::new();
        let mut mem_writes: BTreeMap<VarId, u32> = BTreeMap::new();
        loop {
            // Ready nodes: all preds scheduled in earlier cycles or already
            // placed in this one.
            let mut ready: Vec<usize> = (0..n)
                .filter(|&i| {
                    node_cycle[i] == u32::MAX
                        && dfg.nodes()[i]
                            .preds
                            .iter()
                            .all(|p| node_cycle[p.index()] <= cycle)
                })
                .collect();
            ready.sort_by(|a, b| {
                priority[*b]
                    .partial_cmp(&priority[*a])
                    .expect("finite priorities")
            });
            let mut placed_any = false;
            for i in ready {
                let nd = &dfg.nodes()[i];
                let start = nd
                    .preds
                    .iter()
                    .map(|p| {
                        if node_cycle[p.index()] == cycle {
                            node_end[p.index()]
                        } else {
                            0.0
                        }
                    })
                    .fold(0.0, f64::max);
                if start + delays[i] > clock {
                    continue; // must wait for the next cycle
                }
                let class = classes[i];
                if let Some(limit) = directives.fu_limit(class) {
                    if fu_used.get(&class).copied().unwrap_or(0) >= limit {
                        continue;
                    }
                }
                if let Some(arr) = nd.accessed_array() {
                    if let Some((rp, wp)) = mem_ports(arr) {
                        match class {
                            OpClass::MemRead if mem_reads.get(&arr).copied().unwrap_or(0) >= rp => {
                                continue;
                            }
                            OpClass::MemWrite
                                if mem_writes.get(&arr).copied().unwrap_or(0) >= wp =>
                            {
                                continue;
                            }
                            _ => {}
                        }
                    }
                }
                node_cycle[i] = cycle;
                node_start[i] = start;
                node_end[i] = start + delays[i];
                *fu_used.entry(class).or_insert(0) += 1;
                if let Some(arr) = nd.accessed_array() {
                    if is_memory(arr) {
                        match class {
                            OpClass::MemRead => *mem_reads.entry(arr).or_insert(0) += 1,
                            OpClass::MemWrite => *mem_writes.entry(arr).or_insert(0) += 1,
                            _ => {}
                        }
                    }
                }
                remaining -= 1;
                placed_any = true;
            }
            if !placed_any {
                break;
            }
        }
        if remaining > 0 {
            cycle += 1;
        }
    }

    let depth = if n == 0 {
        0
    } else {
        node_cycle.iter().copied().max().unwrap_or(0) + 1
    };
    Ok(Schedule {
        node_cycle,
        node_start_ns: node_start,
        node_end_ns: node_end,
        depth,
        node_class: classes,
        node_width: char_widths,
    })
}

/// The minimum initiation interval forced by loop-carried recurrences.
pub fn recurrence_min_ii(dfg: &Dfg, schedule: &Schedule) -> u32 {
    let mut min_ii = 1u32;
    for var in &dfg.live_out {
        if !dfg.live_in.contains(var) {
            continue;
        }
        // Scalar recurrence: write cycle - read cycle + 1.
        let read_cycle = dfg
            .iter()
            .filter(|(_, n)| matches!(n.kind, NodeKind::VarRead(v) if v == *var))
            .map(|(id, _)| schedule.node_cycle[id.index()])
            .min();
        let write_cycle = dfg
            .iter()
            .filter(|(_, n)| {
                matches!(n.kind, NodeKind::VarWrite(v) if v == *var)
                    || matches!(n.kind, NodeKind::Store(v) if v == *var)
                    || matches!(n.kind, NodeKind::StoreCond(v) if v == *var)
            })
            .map(|(id, _)| schedule.node_cycle[id.index()])
            .max();
        if let (Some(r), Some(w)) = (read_cycle, write_cycle) {
            if w >= r {
                min_ii = min_ii.max(w - r + 1);
            }
        }
    }
    // Array recurrences (load and store of the same array in the body).
    for (id, n) in dfg.iter() {
        if let NodeKind::Store(arr) | NodeKind::StoreCond(arr) = n.kind {
            let first_load = dfg
                .iter()
                .filter(|(_, m)| matches!(m.kind, NodeKind::Load(a) if a == arr))
                .map(|(lid, _)| schedule.node_cycle[lid.index()])
                .min();
            if let Some(l) = first_load {
                let w = schedule.node_cycle[id.index()];
                if w >= l {
                    min_ii = min_ii.max(w - l + 1);
                }
            }
        }
    }
    min_ii
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::build_dfg;
    use hls_ir::{CmpOp, Expr, FunctionBuilder, Ty};

    fn is_reg(_: VarId) -> Option<(u32, u32)> {
        None
    }

    #[test]
    fn mac_chains_into_one_cycle() {
        let mut b = FunctionBuilder::new("mac");
        let x = b.param_scalar("x", Ty::fixed(10, 0));
        let c = b.param_scalar("c", Ty::fixed(10, 0));
        let acc = b.param_scalar("acc", Ty::fixed(22, 2));
        b.assign(
            acc,
            Expr::add(Expr::var(acc), Expr::mul(Expr::var(x), Expr::var(c))),
        );
        let f = b.build();
        let dfg = build_dfg(&f, &f.body);
        let d = Directives::new(10.0);
        let lib = TechLibrary::asic_100mhz();
        let s = schedule_dfg(&dfg, &d, &lib, &is_reg).expect("schedules");
        assert_eq!(s.depth, 1, "complex of a simple MAC must fit one cycle");
        assert!(s.critical_path_ns() <= 10.0);
    }

    #[test]
    fn long_chain_splits_across_cycles() {
        // Eight chained 20-bit multiplies cannot fit one 10 ns cycle.
        let mut b = FunctionBuilder::new("chain");
        let x = b.param_scalar("x", Ty::fixed(8, 2));
        let out = b.param_scalar("out", Ty::fixed(8, 2));
        let mut tmp = Vec::new();
        for i in 0..4 {
            tmp.push(b.local(format!("t{i}"), Ty::fixed(8, 2)));
        }
        b.assign(tmp[0], Expr::mul(Expr::var(x), Expr::var(x)));
        for i in 1..4 {
            b.assign(tmp[i], Expr::mul(Expr::var(tmp[i - 1]), Expr::var(x)));
        }
        b.assign(out, Expr::var(tmp[3]));
        let f = b.build();
        let dfg = build_dfg(&f, &f.body);
        let d = Directives::new(10.0);
        let lib = TechLibrary::asic_100mhz();
        let s = schedule_dfg(&dfg, &d, &lib, &is_reg).expect("schedules");
        assert!(s.depth >= 2, "depth = {}", s.depth);
        // Dependences respected.
        for (id, n) in dfg.iter() {
            for p in &n.preds {
                assert!(s.node_cycle[p.index()] <= s.node_cycle[id.index()]);
                if s.node_cycle[p.index()] == s.node_cycle[id.index()] {
                    assert!(s.node_end_ns[p.index()] <= s.node_start_ns[id.index()] + 1e-9);
                }
            }
        }
    }

    #[test]
    fn fu_limit_serializes_ops() {
        // Four independent multiplies, one multiplier -> at least 4 cycles?
        // No: chaining is impossible for 10-bit muls (4.45 ns each, two fit),
        // but a 1-multiplier limit forces one per cycle.
        let mut b = FunctionBuilder::new("par");
        let xs: Vec<_> = (0..4)
            .map(|i| b.param_scalar(format!("x{i}"), Ty::fixed(10, 0)))
            .collect();
        let outs: Vec<_> = (0..4)
            .map(|i| b.param_scalar(format!("o{i}"), Ty::fixed(20, 0)))
            .collect();
        for i in 0..4 {
            b.assign(outs[i], Expr::mul(Expr::var(xs[i]), Expr::var(xs[i])));
        }
        let f = b.build();
        let dfg = build_dfg(&f, &f.body);
        let lib = TechLibrary::asic_100mhz();

        let free = schedule_dfg(&dfg, &Directives::new(10.0), &lib, &is_reg).expect("schedules");
        assert_eq!(free.depth, 1, "unconstrained: all multiplies in parallel");

        let limited = Directives::new(10.0).limit_fu(OpClass::Mul, 1);
        let s = schedule_dfg(&dfg, &limited, &lib, &is_reg).expect("schedules");
        // One multiply per cycle (chaining two muls through one FU in a
        // cycle is not possible — an FU instance is busy for the cycle).
        assert!(s.depth >= 4, "depth = {}", s.depth);
    }

    #[test]
    fn infeasible_clock_reported() {
        // A 30-bit multiply needs ~8.7 ns; a 5 ns clock cannot fit it.
        let mut b = FunctionBuilder::new("wide");
        let x = b.param_scalar("x", Ty::fixed(30, 0));
        let out = b.param_scalar("out", Ty::fixed(60, 0));
        b.assign(out, Expr::mul(Expr::var(x), Expr::var(x)));
        let f = b.build();
        let dfg = build_dfg(&f, &f.body);
        let lib = TechLibrary::asic_100mhz();
        let err = schedule_dfg(&dfg, &Directives::new(5.0), &lib, &is_reg).unwrap_err();
        assert!(
            matches!(err, SynthesisError::InfeasibleClock { .. }),
            "{err}"
        );
    }

    #[test]
    fn empty_dfg_schedules_to_zero_depth() {
        let dfg = Dfg::default();
        let lib = TechLibrary::asic_100mhz();
        let s = schedule_dfg(&dfg, &Directives::new(10.0), &lib, &is_reg).expect("schedules");
        assert_eq!(s.depth, 0);
    }

    #[test]
    fn accumulator_recurrence_forces_ii_one() {
        let mut b = FunctionBuilder::new("acc");
        let x = b.param_scalar("x", Ty::fixed(10, 0));
        let acc = b.param_scalar("acc", Ty::fixed(22, 2));
        b.assign(acc, Expr::add(Expr::var(acc), Expr::var(x)));
        let f = b.build();
        let dfg = build_dfg(&f, &f.body);
        let lib = TechLibrary::asic_100mhz();
        let s = schedule_dfg(&dfg, &Directives::new(10.0), &lib, &is_reg).expect("schedules");
        assert_eq!(recurrence_min_ii(&dfg, &s), 1);
    }

    #[test]
    fn memory_ports_limit_parallel_loads() {
        // Two loads from a memory-mapped array with one read port need two
        // cycles.
        let mut b = FunctionBuilder::new("mem");
        let a = b.param_array("a", Ty::fixed(10, 0), 8);
        let o1 = b.param_scalar("o1", Ty::fixed(10, 0));
        let o2 = b.param_scalar("o2", Ty::fixed(10, 0));
        b.assign(o1, Expr::load(a, Expr::int_const(0)));
        b.assign(o2, Expr::load(a, Expr::int_const(1)));
        let f = b.build();
        let a_id = f.params[0];
        let dfg = build_dfg(&f, &f.body);
        let lib = TechLibrary::asic_100mhz();
        let d = Directives::new(10.0);
        let one_port = move |v: VarId| (v == a_id).then_some((1u32, 1u32));
        let s = schedule_dfg(&dfg, &d, &lib, &one_port).expect("schedules");
        assert!(s.depth >= 2, "depth = {}", s.depth);

        let two_ports = move |v: VarId| (v == a_id).then_some((2u32, 1u32));
        let s2 = schedule_dfg(&dfg, &d, &lib, &two_ports).expect("schedules");
        assert!(s2.depth < s.depth, "two ports must beat one");
    }

    #[test]
    fn loop_body_with_guard_schedules() {
        // A merged-style guarded body still schedules in one cycle.
        let mut b = FunctionBuilder::new("g");
        let x = b.param_scalar("x", Ty::fixed(10, 0));
        let acc = b.param_scalar("acc", Ty::fixed(20, 4));
        let m = b.param_scalar("m", Ty::int(8));
        b.if_then(
            Expr::cmp(CmpOp::Lt, Expr::var(m), Expr::int_const(8)),
            |b| {
                b.assign(acc, Expr::add(Expr::var(acc), Expr::var(x)));
            },
        );
        let f = b.build();
        let dfg = build_dfg(&f, &f.body);
        let lib = TechLibrary::asic_100mhz();
        let s = schedule_dfg(&dfg, &Directives::new(10.0), &lib, &is_reg).expect("schedules");
        assert_eq!(s.depth, 1);
    }
}
