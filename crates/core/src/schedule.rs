//! Resource-constrained list scheduling with operator chaining.
//!
//! Scheduling "transforms the sequential specification into an architecture
//! with a well defined cycle-by-cycle behavior" (Section 2.5). Nodes are
//! placed into cycles in priority order (longest combinational path first);
//! a node may *chain* combinationally after a same-cycle predecessor as long
//! as the accumulated delay fits the clock period, which is what lets a
//! complete complex MAC execute in a single 10 ns cycle.

use std::collections::BTreeMap;

use hls_ir::VarId;

use crate::dfg::{Dfg, FixedBitSet, NodeId, NodeKind};
use crate::directives::Directives;
use crate::error::SynthesisError;
use crate::tech::{OpClass, TechLibrary};

/// The cycle-by-cycle placement of one DFG.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Cycle of each node (indexed by [`NodeId::index`]).
    pub node_cycle: Vec<u32>,
    /// Start time of each node within its cycle (ns).
    pub node_start_ns: Vec<f64>,
    /// End time of each node within its cycle (ns).
    pub node_end_ns: Vec<f64>,
    /// Number of cycles the region occupies.
    pub depth: u32,
    /// Operator class per node (resolved against the array mappings).
    pub node_class: Vec<OpClass>,
    /// Width used for delay/area characterization per node (operand width
    /// for multipliers, output width otherwise).
    pub node_width: Vec<u32>,
}

impl Schedule {
    /// Nodes placed in `cycle`, in start-time order.
    pub fn nodes_in_cycle(&self, cycle: u32) -> Vec<NodeId> {
        let mut v: Vec<usize> = (0..self.node_cycle.len())
            .filter(|i| self.node_cycle[*i] == cycle)
            .collect();
        v.sort_by(|a, b| {
            self.node_start_ns[*a]
                .partial_cmp(&self.node_start_ns[*b])
                .expect("finite start times")
        });
        v.into_iter().map(|i| NodeId(i as u32)).collect()
    }

    /// The longest combinational path in any cycle (critical path, ns).
    pub fn critical_path_ns(&self) -> f64 {
        self.node_end_ns.iter().cloned().fold(0.0, f64::max)
    }
}

/// Schedules one DFG.
///
/// # Errors
///
/// Returns [`SynthesisError::InfeasibleClock`] when a single operation is
/// slower than the clock period and [`SynthesisError::Unschedulable`] when
/// resource constraints cannot be met.
pub fn schedule_dfg(
    dfg: &Dfg,
    directives: &Directives,
    lib: &TechLibrary,
    mem_ports: &dyn Fn(VarId) -> Option<(u32, u32)>,
) -> Result<Schedule, SynthesisError> {
    let is_memory = |v: VarId| mem_ports(v).is_some();
    let clock = directives.clock_period_ns;
    let n = dfg.len();
    let (classes, char_widths) = node_resources(dfg, &is_memory);
    let delays: Vec<f64> = classes
        .iter()
        .zip(&char_widths)
        .map(|(class, width)| lib.delay(*class, *width))
        .collect();

    for (i, d) in delays.iter().enumerate() {
        if *d > clock {
            return Err(SynthesisError::InfeasibleClock {
                op: format!(
                    "{:?} ({} bits)",
                    dfg.nodes()[i].kind,
                    dfg.nodes()[i].format.width()
                ),
                delay_ns: *d,
                clock_ns: clock,
            });
        }
    }

    // Successor lists in CSR (flattened) form: one contiguous `u32` arena
    // indexed by per-node offsets, replacing the `Vec<Vec<_>>` the hot loop
    // used to chase. Node indices are topological by construction (the DFG
    // builder appends operands before their consumers), so a single reverse
    // sweep yields the longest-path-to-sink priorities.
    let mut succ_off = vec![0u32; n + 1];
    for nd in dfg.nodes() {
        for p in &nd.preds {
            succ_off[p.index() + 1] += 1;
        }
    }
    for i in 0..n {
        succ_off[i + 1] += succ_off[i];
    }
    let mut succ = vec![0u32; succ_off[n] as usize];
    let mut fill = succ_off.clone();
    for (i, nd) in dfg.nodes().iter().enumerate() {
        for p in &nd.preds {
            succ[fill[p.index()] as usize] = i as u32;
            fill[p.index()] += 1;
        }
    }
    let succs_of = |i: usize| &succ[succ_off[i] as usize..succ_off[i + 1] as usize];

    let mut priority = vec![0.0f64; n];
    for i in (0..n).rev() {
        let down = succs_of(i)
            .iter()
            .map(|s| priority[*s as usize])
            .fold(0.0, f64::max);
        priority[i] = delays[i] + down;
    }

    let mut node_cycle = vec![u32::MAX; n];
    let mut node_start = vec![0.0f64; n];
    let mut node_end = vec![0.0f64; n];
    let mut remaining = n;
    let mut cycle: u32 = 0;
    let max_cycles = (n as u32 + 4) * 4 + 64;

    // Readiness is tracked incrementally: a per-node count of unscheduled
    // predecessors (duplicate operand edges are mirrored in the CSR arena,
    // so the counts stay consistent), a bitset of the nodes placed in the
    // cycle being filled (the chaining-start computation only needs "was
    // this pred placed *this* cycle"), and explicit ready queues instead of
    // per-iteration rescans of every node.
    //
    // Equivalence with the rescan formulation is exact: a ready node that
    // fails placement in cycle `c` can never succeed later within `c` —
    // its chaining start is fixed (all predecessors are already scheduled)
    // and per-cycle resource usage only grows — so the original's repeated
    // rescans only ever place *newly ready* nodes after their first
    // attempt. Processing each newly-ready batch in (priority desc, index
    // asc) order reproduces the stable-sorted rescan bit for bit, and
    // failed nodes defer to the next cycle's queue.
    let mut pending_preds: Vec<u32> = dfg.nodes().iter().map(|nd| nd.preds.len() as u32).collect();
    let mut placed_in_cycle = FixedBitSet::new(n);
    let mut ready: Vec<u32> = (0..n as u32)
        .filter(|&i| pending_preds[i as usize] == 0)
        .collect();
    let by_priority = |priority: &[f64], batch: &mut Vec<u32>| {
        batch.sort_unstable_by(|a, b| {
            priority[*b as usize]
                .partial_cmp(&priority[*a as usize])
                .expect("finite priorities")
                .then_with(|| a.cmp(b))
        });
    };

    while remaining > 0 {
        if cycle > max_cycles {
            return Err(SynthesisError::Unschedulable {
                context: format!("{remaining} operations left after {cycle} cycles"),
            });
        }
        let mut fu_used: BTreeMap<OpClass, u32> = BTreeMap::new();
        let mut mem_reads: BTreeMap<VarId, u32> = BTreeMap::new();
        let mut mem_writes: BTreeMap<VarId, u32> = BTreeMap::new();
        placed_in_cycle.clear();
        let mut deferred: Vec<u32> = Vec::new();
        let mut batch = std::mem::take(&mut ready);
        while !batch.is_empty() {
            by_priority(&priority, &mut batch);
            let mut newly_ready: Vec<u32> = Vec::new();
            for &iu in &batch {
                let i = iu as usize;
                let nd = &dfg.nodes()[i];
                let start = nd
                    .preds
                    .iter()
                    .map(|p| {
                        if placed_in_cycle.contains(p.index()) {
                            node_end[p.index()]
                        } else {
                            0.0
                        }
                    })
                    .fold(0.0, f64::max);
                let class = classes[i];
                let mut fits = start + delays[i] <= clock;
                if fits {
                    if let Some(limit) = directives.fu_limit(class) {
                        if fu_used.get(&class).copied().unwrap_or(0) >= limit {
                            fits = false;
                        }
                    }
                }
                if fits {
                    if let Some(arr) = nd.accessed_array() {
                        if let Some((rp, wp)) = mem_ports(arr) {
                            match class {
                                OpClass::MemRead
                                    if mem_reads.get(&arr).copied().unwrap_or(0) >= rp =>
                                {
                                    fits = false;
                                }
                                OpClass::MemWrite
                                    if mem_writes.get(&arr).copied().unwrap_or(0) >= wp =>
                                {
                                    fits = false;
                                }
                                _ => {}
                            }
                        }
                    }
                }
                if !fits {
                    deferred.push(iu); // must wait for the next cycle
                    continue;
                }
                node_cycle[i] = cycle;
                node_start[i] = start;
                node_end[i] = start + delays[i];
                placed_in_cycle.insert(i);
                *fu_used.entry(class).or_insert(0) += 1;
                if let Some(arr) = nd.accessed_array() {
                    if is_memory(arr) {
                        match class {
                            OpClass::MemRead => *mem_reads.entry(arr).or_insert(0) += 1,
                            OpClass::MemWrite => *mem_writes.entry(arr).or_insert(0) += 1,
                            _ => {}
                        }
                    }
                }
                remaining -= 1;
                for &s in succs_of(i) {
                    pending_preds[s as usize] -= 1;
                    if pending_preds[s as usize] == 0 {
                        newly_ready.push(s);
                    }
                }
            }
            batch = newly_ready;
        }
        ready = deferred;
        if remaining > 0 {
            cycle += 1;
        }
    }

    let depth = if n == 0 {
        0
    } else {
        node_cycle.iter().copied().max().unwrap_or(0) + 1
    };
    Ok(Schedule {
        node_cycle,
        node_start_ns: node_start,
        node_end_ns: node_end,
        depth,
        node_class: classes,
        node_width: char_widths,
    })
}

/// Per-node operator classes and characterization widths — the one
/// resource model the scheduler, the allocator (via [`Schedule`]'s
/// `node_class`/`node_width`) and the explorer's lower bound
/// (`crate::bound`) all price against. Multipliers characterize at the
/// wider *operand* width; everything else at its output width.
pub(crate) fn node_resources(
    dfg: &Dfg,
    is_memory: &dyn Fn(VarId) -> bool,
) -> (Vec<OpClass>, Vec<u32>) {
    let classes: Vec<OpClass> = dfg
        .nodes()
        .iter()
        .map(|nd| nd.op_class(is_memory))
        .collect();
    let char_widths: Vec<u32> = dfg
        .nodes()
        .iter()
        .map(|nd| match &nd.kind {
            NodeKind::Bin(hls_ir::BinOp::Mul) => nd
                .preds
                .iter()
                .take(2)
                .map(|p| dfg.node(*p).format.width())
                .max()
                .unwrap_or(nd.format.width()),
            _ => nd.format.width(),
        })
        .collect();
    (classes, char_widths)
}

/// The minimum initiation interval forced by loop-carried recurrences.
///
/// One pass over the graph collects, per variable, the earliest read/load
/// cycle and the latest write/store cycle; the per-variable span (when the
/// write lands no earlier than the read) is the recurrence's minimum II.
pub fn recurrence_min_ii(dfg: &Dfg, schedule: &Schedule) -> u32 {
    let mut first_read: BTreeMap<VarId, u32> = BTreeMap::new();
    let mut last_write: BTreeMap<VarId, u32> = BTreeMap::new();
    let mut first_load: BTreeMap<VarId, u32> = BTreeMap::new();
    let mut last_store: BTreeMap<VarId, u32> = BTreeMap::new();
    for (id, n) in dfg.iter() {
        let c = schedule.node_cycle[id.index()];
        match n.kind {
            NodeKind::VarRead(v) => {
                let e = first_read.entry(v).or_insert(c);
                *e = (*e).min(c);
            }
            NodeKind::VarWrite(v) => {
                let e = last_write.entry(v).or_insert(c);
                *e = (*e).max(c);
            }
            NodeKind::Load(a) => {
                let e = first_load.entry(a).or_insert(c);
                *e = (*e).min(c);
            }
            NodeKind::Store(a) | NodeKind::StoreCond(a) => {
                let e = last_store.entry(a).or_insert(c);
                *e = (*e).max(c);
                // Stores also count as writes for scalar-style recurrences
                // (matching the historical per-variable scan).
                let w = last_write.entry(a).or_insert(c);
                *w = (*w).max(c);
            }
            _ => {}
        }
    }

    let mut min_ii = 1u32;
    // Scalar recurrence: write cycle - read cycle + 1.
    for var in &dfg.live_out {
        if !dfg.live_in.contains(var) {
            continue;
        }
        if let (Some(&r), Some(&w)) = (first_read.get(var), last_write.get(var)) {
            if w >= r {
                min_ii = min_ii.max(w - r + 1);
            }
        }
    }
    // Array recurrences (load and store of the same array in the body).
    for (arr, &w) in &last_store {
        if let Some(&l) = first_load.get(arr) {
            if w >= l {
                min_ii = min_ii.max(w - l + 1);
            }
        }
    }
    min_ii
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::build_dfg;
    use hls_ir::{CmpOp, Expr, FunctionBuilder, Ty};

    fn is_reg(_: VarId) -> Option<(u32, u32)> {
        None
    }

    #[test]
    fn mac_chains_into_one_cycle() {
        let mut b = FunctionBuilder::new("mac");
        let x = b.param_scalar("x", Ty::fixed(10, 0));
        let c = b.param_scalar("c", Ty::fixed(10, 0));
        let acc = b.param_scalar("acc", Ty::fixed(22, 2));
        b.assign(
            acc,
            Expr::add(Expr::var(acc), Expr::mul(Expr::var(x), Expr::var(c))),
        );
        let f = b.build();
        let dfg = build_dfg(&f, &f.body);
        let d = Directives::new(10.0);
        let lib = TechLibrary::asic_100mhz();
        let s = schedule_dfg(&dfg, &d, &lib, &is_reg).expect("schedules");
        assert_eq!(s.depth, 1, "complex of a simple MAC must fit one cycle");
        assert!(s.critical_path_ns() <= 10.0);
    }

    #[test]
    fn long_chain_splits_across_cycles() {
        // Eight chained 20-bit multiplies cannot fit one 10 ns cycle.
        let mut b = FunctionBuilder::new("chain");
        let x = b.param_scalar("x", Ty::fixed(8, 2));
        let out = b.param_scalar("out", Ty::fixed(8, 2));
        let mut tmp = Vec::new();
        for i in 0..4 {
            tmp.push(b.local(format!("t{i}"), Ty::fixed(8, 2)));
        }
        b.assign(tmp[0], Expr::mul(Expr::var(x), Expr::var(x)));
        for i in 1..4 {
            b.assign(tmp[i], Expr::mul(Expr::var(tmp[i - 1]), Expr::var(x)));
        }
        b.assign(out, Expr::var(tmp[3]));
        let f = b.build();
        let dfg = build_dfg(&f, &f.body);
        let d = Directives::new(10.0);
        let lib = TechLibrary::asic_100mhz();
        let s = schedule_dfg(&dfg, &d, &lib, &is_reg).expect("schedules");
        assert!(s.depth >= 2, "depth = {}", s.depth);
        // Dependences respected.
        for (id, n) in dfg.iter() {
            for p in &n.preds {
                assert!(s.node_cycle[p.index()] <= s.node_cycle[id.index()]);
                if s.node_cycle[p.index()] == s.node_cycle[id.index()] {
                    assert!(s.node_end_ns[p.index()] <= s.node_start_ns[id.index()] + 1e-9);
                }
            }
        }
    }

    #[test]
    fn fu_limit_serializes_ops() {
        // Four independent multiplies, one multiplier -> at least 4 cycles?
        // No: chaining is impossible for 10-bit muls (4.45 ns each, two fit),
        // but a 1-multiplier limit forces one per cycle.
        let mut b = FunctionBuilder::new("par");
        let xs: Vec<_> = (0..4)
            .map(|i| b.param_scalar(format!("x{i}"), Ty::fixed(10, 0)))
            .collect();
        let outs: Vec<_> = (0..4)
            .map(|i| b.param_scalar(format!("o{i}"), Ty::fixed(20, 0)))
            .collect();
        for i in 0..4 {
            b.assign(outs[i], Expr::mul(Expr::var(xs[i]), Expr::var(xs[i])));
        }
        let f = b.build();
        let dfg = build_dfg(&f, &f.body);
        let lib = TechLibrary::asic_100mhz();

        let free = schedule_dfg(&dfg, &Directives::new(10.0), &lib, &is_reg).expect("schedules");
        assert_eq!(free.depth, 1, "unconstrained: all multiplies in parallel");

        let limited = Directives::new(10.0).limit_fu(OpClass::Mul, 1);
        let s = schedule_dfg(&dfg, &limited, &lib, &is_reg).expect("schedules");
        // One multiply per cycle (chaining two muls through one FU in a
        // cycle is not possible — an FU instance is busy for the cycle).
        assert!(s.depth >= 4, "depth = {}", s.depth);
    }

    #[test]
    fn infeasible_clock_reported() {
        // A 30-bit multiply needs ~8.7 ns; a 5 ns clock cannot fit it.
        let mut b = FunctionBuilder::new("wide");
        let x = b.param_scalar("x", Ty::fixed(30, 0));
        let out = b.param_scalar("out", Ty::fixed(60, 0));
        b.assign(out, Expr::mul(Expr::var(x), Expr::var(x)));
        let f = b.build();
        let dfg = build_dfg(&f, &f.body);
        let lib = TechLibrary::asic_100mhz();
        let err = schedule_dfg(&dfg, &Directives::new(5.0), &lib, &is_reg).unwrap_err();
        assert!(
            matches!(err, SynthesisError::InfeasibleClock { .. }),
            "{err}"
        );
    }

    #[test]
    fn empty_dfg_schedules_to_zero_depth() {
        let dfg = Dfg::default();
        let lib = TechLibrary::asic_100mhz();
        let s = schedule_dfg(&dfg, &Directives::new(10.0), &lib, &is_reg).expect("schedules");
        assert_eq!(s.depth, 0);
    }

    #[test]
    fn accumulator_recurrence_forces_ii_one() {
        let mut b = FunctionBuilder::new("acc");
        let x = b.param_scalar("x", Ty::fixed(10, 0));
        let acc = b.param_scalar("acc", Ty::fixed(22, 2));
        b.assign(acc, Expr::add(Expr::var(acc), Expr::var(x)));
        let f = b.build();
        let dfg = build_dfg(&f, &f.body);
        let lib = TechLibrary::asic_100mhz();
        let s = schedule_dfg(&dfg, &Directives::new(10.0), &lib, &is_reg).expect("schedules");
        assert_eq!(recurrence_min_ii(&dfg, &s), 1);
    }

    #[test]
    fn memory_ports_limit_parallel_loads() {
        // Two loads from a memory-mapped array with one read port need two
        // cycles.
        let mut b = FunctionBuilder::new("mem");
        let a = b.param_array("a", Ty::fixed(10, 0), 8);
        let o1 = b.param_scalar("o1", Ty::fixed(10, 0));
        let o2 = b.param_scalar("o2", Ty::fixed(10, 0));
        b.assign(o1, Expr::load(a, Expr::int_const(0)));
        b.assign(o2, Expr::load(a, Expr::int_const(1)));
        let f = b.build();
        let a_id = f.params[0];
        let dfg = build_dfg(&f, &f.body);
        let lib = TechLibrary::asic_100mhz();
        let d = Directives::new(10.0);
        let one_port = move |v: VarId| (v == a_id).then_some((1u32, 1u32));
        let s = schedule_dfg(&dfg, &d, &lib, &one_port).expect("schedules");
        assert!(s.depth >= 2, "depth = {}", s.depth);

        let two_ports = move |v: VarId| (v == a_id).then_some((2u32, 1u32));
        let s2 = schedule_dfg(&dfg, &d, &lib, &two_ports).expect("schedules");
        assert!(s2.depth < s.depth, "two ports must beat one");
    }

    #[test]
    fn loop_body_with_guard_schedules() {
        // A merged-style guarded body still schedules in one cycle.
        let mut b = FunctionBuilder::new("g");
        let x = b.param_scalar("x", Ty::fixed(10, 0));
        let acc = b.param_scalar("acc", Ty::fixed(20, 4));
        let m = b.param_scalar("m", Ty::int(8));
        b.if_then(
            Expr::cmp(CmpOp::Lt, Expr::var(m), Expr::int_const(8)),
            |b| {
                b.assign(acc, Expr::add(Expr::var(acc), Expr::var(x)));
            },
        );
        let f = b.build();
        let dfg = build_dfg(&f, &f.body);
        let lib = TechLibrary::asic_100mhz();
        let s = schedule_dfg(&dfg, &Directives::new(10.0), &lib, &is_reg).expect("schedules");
        assert_eq!(s.depth, 1);
    }
}
