//! The pass-manager equivalence gate: `EquivGate` registered as a
//! `PassHook` verifies a design the moment the `metrics` pass lands, and
//! vetoes the remaining pipeline on a counterexample.

use hls_core::{Directives, Pipeline, PipelineConfig, PipelineState, TechLibrary};
use hls_ir::{CmpOp, Expr, FunctionBuilder, Ty};
use hls_verify::EquivGate;

fn sum_loop() -> hls_ir::Function {
    let mut b = FunctionBuilder::new("sum");
    let x = b.param_array("x", Ty::fixed(10, 0), 8);
    let out = b.param_scalar("out", Ty::fixed(14, 4));
    let acc = b.local("acc", Ty::fixed(14, 4));
    b.assign(acc, Expr::int_const(0));
    b.for_loop("sum", 0, CmpOp::Lt, 8, 1, |b, k| {
        b.assign(acc, Expr::add(Expr::var(acc), Expr::load(x, Expr::var(k))));
    });
    b.assign(out, Expr::var(acc));
    b.build()
}

#[test]
fn gate_passes_a_correct_design_and_records_it() {
    let f = sum_loop();
    let gate = EquivGate;
    let mut state = PipelineState::new(&f, &Directives::new(10.0), &TechLibrary::asic_100mhz());
    let run = Pipeline::synthesis(PipelineConfig::default())
        .with_hook(&gate)
        .run(&mut state);
    assert!(run.error.is_none());
    assert!(!run.diagnostics.has_errors(), "{}", run.diagnostics);
    let ok = run
        .diagnostics
        .find("equiv-ok")
        .expect("gate note recorded");
    assert_eq!(ok.pass, "metrics");
    assert!(state.to_result().is_some(), "pipeline completed");
}

#[test]
fn gate_discharges_netlist_obligations_inline() {
    // With the optimizer on (the default), the gate's `netlist-opt`
    // branch must prove every per-pass rewrite obligation and record the
    // proof in the pass trace, alongside the end-to-end `equiv-ok`.
    let f = sum_loop();
    let gate = EquivGate;
    let mut state = PipelineState::new(&f, &Directives::new(10.0), &TechLibrary::asic_100mhz());
    let run = Pipeline::synthesis(PipelineConfig::default())
        .with_hook(&gate)
        .run(&mut state);
    assert!(run.error.is_none());
    assert!(!run.diagnostics.has_errors(), "{}", run.diagnostics);
    let note = run
        .diagnostics
        .find("netlist-equiv-ok")
        .expect("netlist obligations proved and recorded");
    assert_eq!(note.pass, "netlist-opt");
    assert!(
        run.diagnostics.find("netlist-equiv-unknown").is_none(),
        "every rewrite on this design must be decidable"
    );
    assert!(run.diagnostics.find("equiv-ok").is_some());
}

#[test]
fn gate_vetoes_an_unsound_netlist_rewrite() {
    // Corrupt a lowered design with the deliberately broken self-test
    // rewrite, hand its obligation to the gate via the pipeline artifact
    // slot, and the gate must emit the aborting error diagnostic.
    use hls_core::PassHook;
    let f = {
        let mut b = FunctionBuilder::new("diff");
        let x = b.param_scalar("x", Ty::fixed(4, 2));
        let y = b.param_scalar("y", Ty::fixed(4, 2));
        let out = b.param_scalar("out", Ty::fixed(6, 3));
        b.assign(out, Expr::sub(Expr::var(x), Expr::var(y)));
        b.build()
    };
    let d = Directives::new(10.0);
    let mut low = hls_core::lower(&f, &d);
    let ob = hls_core::apply_unsound_rewrite_for_selftest(&mut low)
        .expect("diff kernel has a subtraction to corrupt");
    let mut state = PipelineState::new(&f, &d, &TechLibrary::asic_100mhz());
    state.put_artifact("netlist-obligations", std::sync::Arc::new(vec![ob]));
    let mut diags = hls_core::Diagnostics::default();
    EquivGate.after_pass("netlist-opt", &state, &mut diags);
    let err = diags
        .find("netlist-equiv-failed")
        .expect("unsound rewrite must be vetoed");
    assert!(
        err.message.contains("selftest-unsound"),
        "diagnostic names the offending pass: {}",
        err.message
    );
}

#[test]
fn gate_runs_once_even_with_rtl_passes_downstream() {
    // The gate keys on the `metrics` pass specifically; appending more
    // passes after it must not re-trigger verification, and the gated
    // pipeline still reaches them.
    struct Tail;
    impl hls_core::Pass for Tail {
        fn name(&self) -> &'static str {
            "tail"
        }
        fn run(
            &self,
            _state: &mut PipelineState,
            _diags: &mut hls_core::Diagnostics,
        ) -> Result<(), hls_core::SynthesisError> {
            Ok(())
        }
    }
    let f = sum_loop();
    let gate = EquivGate;
    let mut state = PipelineState::new(&f, &Directives::new(10.0), &TechLibrary::asic_100mhz());
    let run = Pipeline::synthesis(PipelineConfig::default())
        .with_pass(Tail)
        .with_hook(&gate)
        .run(&mut state);
    assert!(run.error.is_none());
    assert_eq!(run.trace.passes.last().unwrap().pass, "tail");
    let notes = run
        .diagnostics
        .iter()
        .filter(|d| d.code == "equiv-ok")
        .count();
    assert_eq!(notes, 1);
}
