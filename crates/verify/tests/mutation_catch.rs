//! Mutation testing of the checker itself: seed deliberate
//! scheduling/control bugs into a correct FSMD and require a concrete
//! counterexample back. A verifier that cannot catch a planted off-by-one
//! proves nothing when it says "equivalent".

use hls_core::{synthesize, Directives, TechLibrary};
use hls_ir::{CmpOp, Expr, Function, FunctionBuilder, Ty};
use hls_verify::{
    fuzz_equiv, mutate_fsmd, mutations_for, prove_equiv, verify_equiv, ProveVerdict, VerifyFinding,
};
use rtl::Fsmd;

fn synth(f: &Function) -> Fsmd {
    let r =
        synthesize(f, &Directives::new(10.0), &TechLibrary::asic_100mhz()).expect("synthesizes");
    Fsmd::from_synthesis(&r)
}

/// Tiny accumulator: total input cone (2 × 4 bits) is bit-blastable, so
/// the prover can *decide* — not merely fail to prove — every mutant.
fn narrow_sum() -> Function {
    let mut b = FunctionBuilder::new("narrow_sum");
    let x = b.param_array("x", Ty::fixed(4, 0), 2);
    let out = b.param_scalar("out", Ty::fixed(8, 0));
    let acc = b.local("acc", Ty::fixed(8, 0));
    b.assign(acc, Expr::int_const(0));
    b.for_loop("l", 0, CmpOp::Lt, 2, 1, |b, k| {
        b.assign(acc, Expr::add(Expr::var(acc), Expr::load(x, Expr::var(k))));
    });
    b.assign(out, Expr::var(acc));
    b.build()
}

/// Same shape plus a *data-dependent* array access whose index is
/// select-clamped into range. Concretely the index is always in bounds,
/// but interval analysis cannot prove it (the union of the select arms
/// spans the raw input range), so the symbolic engine reports
/// `Unsupported` and the pipeline must take the differential-fuzzing path.
fn wide_sum() -> Function {
    let mut b = FunctionBuilder::new("wide_sum");
    let x = b.param_array("x", Ty::fixed(12, 0), 4);
    let y = b.param_scalar("y", Ty::int(4));
    let out = b.param_scalar("out", Ty::fixed(16, 0));
    let acc = b.local("acc", Ty::fixed(16, 0));
    b.assign(acc, Expr::int_const(0));
    b.for_loop("l", 0, CmpOp::Lt, 3, 1, |b, k| {
        b.assign(acc, Expr::add(Expr::var(acc), Expr::load(x, Expr::var(k))));
    });
    // idx = y < 0 ? 0 : (y >= 4 ? 0 : y) — always 0..3 at runtime.
    let idx = Expr::select(
        Expr::cmp(CmpOp::Lt, Expr::var(y), Expr::int_const(0)),
        Expr::int_const(0),
        Expr::select(
            Expr::cmp(CmpOp::Ge, Expr::var(y), Expr::int_const(4)),
            Expr::int_const(0),
            Expr::var(y),
        ),
    );
    b.assign(acc, Expr::add(Expr::var(acc), Expr::load(x, idx)));
    b.assign(out, Expr::var(acc));
    b.build()
}

#[test]
fn narrow_design_is_proved() {
    let verdict = prove_equiv(&synth(&narrow_sum()));
    assert!(verdict.is_proved(), "expected proof, got {verdict:?}");
}

#[test]
fn every_narrow_mutant_is_disproved_with_a_witness() {
    let fsmd = synth(&narrow_sum());
    let mutations = mutations_for(&fsmd);
    assert!(!mutations.is_empty(), "loop design must admit mutations");
    for m in &mutations {
        let mutant = mutate_fsmd(&fsmd, m).expect("mutation applies");
        match prove_equiv(&mutant) {
            ProveVerdict::Disproved(cex) => {
                // The witness must be executable evidence: the two values
                // really differ on the reported inputs.
                assert_eq!(cex.observable, "out");
                assert_ne!(cex.ir_value, cex.rtl_value, "{m}: vacuous witness");
                assert!(!cex.inputs.is_empty(), "{m}: witness has no inputs");
            }
            other => panic!("{m}: expected Disproved, got {other:?}"),
        }
    }
}

#[test]
fn wide_mutants_are_caught_by_fuzzing_with_shrunk_stimulus() {
    let fsmd = synth(&wide_sum());

    // Sanity: the unmutated design is too wide to prove but fuzzes clean.
    let clean = verify_equiv(&fsmd);
    assert!(clean.passed(), "clean design failed: {}", clean.describe());
    assert!(
        matches!(clean.finding, VerifyFinding::Fuzzed { .. }),
        "expected the fuzz path, got {:?}",
        clean.finding
    );

    for m in &mutations_for(&fsmd) {
        let mutant = mutate_fsmd(&fsmd, m).expect("mutation applies");
        let report = verify_equiv(&mutant);
        assert!(!report.passed(), "{m}: mutant slipped through");
        match report.finding {
            VerifyFinding::FuzzCounterexample(cex) => {
                assert!(
                    cex.stimulus.len() <= 4,
                    "{m}: counterexample not shrunk: {} calls",
                    cex.stimulus.len()
                );
                assert!(cex.failing_call < cex.stimulus.len());
            }
            VerifyFinding::ProofCounterexample(_) => {}
            other => panic!("{m}: expected a counterexample, got {other:?}"),
        }
    }
}

#[test]
fn fuzzing_is_deterministic() {
    let fsmd = synth(&wide_sum());
    let a = fuzz_equiv(&fsmd);
    let b = fuzz_equiv(&fsmd);
    assert_eq!(a.calls, b.calls);
    assert_eq!(a.corpus, b.corpus);
    assert_eq!(a.coverage.states(), b.coverage.states());
    assert_eq!(
        a.coverage.branch_directions(),
        b.coverage.branch_directions()
    );
    assert!(a.counterexample.is_none() && b.counterexample.is_none());
    assert!(a.coverage.states() > 0, "no controller coverage recorded");
    assert!(a.coverage.branch_directions() > 0, "no branch coverage");
}

#[test]
fn explore_verified_passes_a_correct_design_space() {
    let cfg = hls_core::ExploreConfig {
        unroll_factors: vec![1, 2],
        per_loop_refinement: false,
        verify: hls_core::VerifyLevel::Pareto,
        ..hls_core::ExploreConfig::default()
    };
    let r = hls_verify::explore_verified(&wide_sum(), &cfg, &TechLibrary::asic_100mhz());
    assert!(!r.points.is_empty());
    assert!(
        r.verify_failures.is_empty(),
        "spurious verify failures: {:?}",
        r.verify_failures
    );
}
