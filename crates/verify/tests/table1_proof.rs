//! The acceptance bar: `hls-verify` *proves* IR↔FSMD equivalence for all
//! four Table-1 architectures of the 64-QAM decoder — symbolically (one
//! canonical node per observable) or by exhaustive bit-blast of narrow
//! residual cones. Ad-hoc stimulus no longer carries the claim alone.

use hls_core::synthesize;
use hls_verify::{prove_equiv, ProofMethod, ProveVerdict};
use qam_decoder::{build_qam_decoder_ir, table1_architectures, table1_library, DecoderParams};
use rtl::Fsmd;

fn proved_architecture(name: &str) {
    let ir = build_qam_decoder_ir(&DecoderParams::default());
    let arch = table1_architectures()
        .into_iter()
        .find(|a| a.name == name)
        .expect("known architecture");
    let r = synthesize(&ir.func, &arch.directives, &table1_library()).expect("synthesizes");
    let fsmd = Fsmd::from_synthesis(&r);
    match prove_equiv(&fsmd) {
        ProveVerdict::Proved {
            obligations,
            sym_nodes,
        } => {
            assert!(!obligations.is_empty(), "no observables proved");
            let canonical = obligations
                .iter()
                .filter(|o| o.method == ProofMethod::Canonical)
                .count();
            assert!(
                canonical > 0,
                "expected at least one canonical-form proof ({sym_nodes} nodes)"
            );
        }
        other => panic!("{name}: expected proof, got {other:?}"),
    }
}

#[test]
fn proves_merged() {
    proved_architecture("merged");
}

#[test]
fn proves_none() {
    proved_architecture("none");
}

#[test]
fn proves_merged_u2() {
    proved_architecture("merged-u2");
}

#[test]
fn proves_merged_u4() {
    proved_architecture("merged-u4");
}
