//! Fused synth+verify exploration against the serial reference on the
//! paper's decoder: the budgeted, fused, worker-pool flow must return the
//! exact Pareto frontier and per-point metrics of the historical
//! explore-then-reverify flow across a sweep covering all four Table-1
//! directive sets — and the sweep-scoped prover's memo layers must be
//! both effective (clock twins share proofs) and sound (replayed
//! verdicts match fresh ones).

use hls_core::{synthesize, ExploreConfig, MergePolicy, VerifyLevel};
use hls_verify::{explore_verified, explore_verified_serial, verify_equiv, ExploreProver};
use qam_decoder::{build_qam_decoder_ir, table1_architectures, table1_library, DecoderParams};
use rtl::Fsmd;

/// The Table-1 knob space (uniform + per-loop unrolls 1/2/4, both merge
/// policies) across a clock pair chosen so slow-clock twins exist.
fn sweep() -> ExploreConfig {
    ExploreConfig {
        clock_period_ns: 10.0,
        clock_periods_ns: vec![10.0, 20.0, 40.0],
        unroll_factors: vec![1, 2, 4],
        merge_policies: vec![MergePolicy::Off, MergePolicy::AllowHazards],
        per_loop_refinement: true,
        verify: VerifyLevel::All,
        budget: None,
        cache: None,
        loop_grids: None,
    }
}

#[test]
fn fused_budgeted_sweep_matches_the_serial_reference() {
    let ir = build_qam_decoder_ir(&DecoderParams::default());
    let lib = table1_library();
    let config = sweep();

    let reference = explore_verified_serial(&ir.func, &config, &lib);
    let fused = explore_verified(&ir.func, &config, &lib);
    let budgeted = explore_verified(&ir.func, &config.clone().budgeted(), &lib);

    assert!(reference.verify_failures.is_empty(), "reference must prove");
    for (name, r) in [("fused", &fused), ("budgeted", &budgeted)] {
        assert!(r.verify_failures.is_empty(), "{name} flow must prove");
        let key = |r: &hls_core::ExploreResult| -> Vec<(u64, u64)> {
            r.pareto()
                .iter()
                .map(|p| (p.latency_cycles, p.area.to_bits()))
                .collect()
        };
        assert_eq!(key(&reference), key(r), "{name} frontier differs");
    }
    // Fused evaluates the identical point list with identical metrics.
    assert_eq!(reference.points.len(), fused.points.len());
    for (a, b) in reference.points.iter().zip(&fused.points) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.latency_cycles, b.latency_cycles);
        assert_eq!(a.area.to_bits(), b.area.to_bits());
    }
    // Budgeted may prune dominated interior points but must account for
    // every reference point and agree on the ones it evaluated.
    assert_eq!(
        reference.points.len(),
        budgeted.points.len() + budgeted.pruned.len()
    );
    for p in &budgeted.points {
        let r = reference
            .points
            .iter()
            .find(|q| q.label == p.label)
            .expect("budgeted point exists in the reference");
        assert_eq!(r.latency_cycles, p.latency_cycles);
        assert_eq!(r.area.to_bits(), p.area.to_bits());
    }
}

#[test]
fn table1_architectures_verify_through_the_prover() {
    let ir = build_qam_decoder_ir(&DecoderParams::default());
    let lib = table1_library();
    let fused = explore_verified(&ir.func, &sweep(), &lib);
    let prover = ExploreProver::new();
    for arch in table1_architectures() {
        let r = synthesize(&ir.func, &arch.directives, &lib).expect("Table-1 synthesizes");
        // Every Table-1 design point proves through the sweep-scoped
        // prover with the same verdict the standalone pipeline reaches.
        let fsmd = Fsmd::from_synthesis(&r);
        let memoized = prover.verify(&arch.directives, &fsmd);
        assert!(memoized.passed(), "{} must prove", arch.name);
        assert_eq!(memoized.describe(), verify_equiv(&fsmd).describe());
        // The uniform directive sets are sweep candidates and must land
        // in the fused sweep with their exact synthesized metrics. The
        // asymmetric multi-loop sets (merged-u2, merged-u4) are the
        // paper's designer-guided refinements outside the sweep family.
        // Table-1 rows pin netlist optimization off (the paper baseline)
        // while the sweep runs at the default level, so the comparison
        // point is the same architecture re-synthesized at the default.
        if ["merged", "none"].contains(&arch.name) {
            let swept = arch
                .directives
                .clone()
                .netlist_opt_level(hls_core::OptLevel::default());
            let r = synthesize(&ir.func, &swept, &lib).expect("Table-1 synthesizes");
            assert!(
                fused.points.iter().any(|p| {
                    p.latency_cycles == r.metrics.latency_cycles
                        && p.area.to_bits() == r.metrics.area.to_bits()
                }),
                "sweep misses Table-1 architecture {} ({} cycles)",
                arch.name,
                r.metrics.latency_cycles
            );
        }
    }
}

#[test]
fn prover_replays_clock_twin_verdicts_exactly() {
    let ir = build_qam_decoder_ir(&DecoderParams::default());
    let lib = table1_library();
    // 20 ns and 40 ns chain identically for the merged decoder: same
    // schedule, same machine, different clock annotation.
    let d20 = hls_core::Directives::new(20.0);
    let d40 = hls_core::Directives::new(40.0);
    let f20 = Fsmd::from_synthesis(&synthesize(&ir.func, &d20, &lib).expect("ok"));
    let f40 = Fsmd::from_synthesis(&synthesize(&ir.func, &d40, &lib).expect("ok"));
    assert!(f20.same_machine(&f40), "20/40 ns must be clock twins");
    assert!(
        !f20.same_machine(&Fsmd::from_synthesis(
            &synthesize(&ir.func, &hls_core::Directives::new(5.0), &lib).expect("ok")
        )),
        "5 ns schedules differently and must not be a twin"
    );

    let prover = ExploreProver::new();
    let r20 = prover.verify(&d20, &f20);
    let r40 = prover.verify(&d40, &f40);
    let stats = prover.stats();
    assert_eq!(stats.contexts, 1, "twins share one IR context");
    assert_eq!(stats.proofs, 1, "second twin replays the verdict");
    assert_eq!(stats.memo_hits, 1);
    // The replayed verdict is the fresh one.
    assert!(r20.passed() && r40.passed());
    assert_eq!(r20.describe(), r40.describe());
    assert_eq!(r40.describe(), verify_equiv(&f40).describe());
}
