use fixpt::{Fixed, Format, Overflow, Quantization};
use hls_verify::sym::{Op, SymTable};
use std::collections::HashMap;

#[test]
fn cast_elimination_vs_shl_wrap() {
    // x: signed(4,4), value 3. Cast to signed(9,9) is lossless by format
    // interval, so the rewrite removes it — which is fine, because the
    // shift pins the format it wraps in rather than reading it off the
    // (rewritten) operand node.
    let mut t = SymTable::new();
    let f4 = Format::signed(4, 4);
    let f9 = Format::signed(9, 9);
    let x = t.fresh_input(f4);
    let c = t.intern(Op::Cast(x, f9, Quantization::Trn, Overflow::Wrap));
    let s = t.intern(Op::Shl(c, 2, f9));
    let mut env = HashMap::new();
    let v = Fixed::from_raw(3, f4).unwrap();
    env.insert(0u32, v);
    let got = t.eval(&[s], &env)[0];
    // Concrete machine: cast 3 into signed(9) (=3), then shl 2 in 9-bit -> 12.
    let concrete = v.cast_with(f9, Quantization::Trn, Overflow::Wrap).shl(2);
    assert_eq!(
        got.raw(),
        concrete.raw(),
        "symbolic eval diverges from concrete semantics"
    );
}
