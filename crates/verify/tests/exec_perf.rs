//! Timing harness for the per-machine verification floor.
//!
//! Ignored by default (it is a measurement, not an assertion); run with
//!
//! ```sh
//! cargo test --release -p hls-verify --test exec_perf -- --ignored --nocapture
//! ```
//!
//! and compare the printed per-machine times against the numbers recorded
//! in EXPERIMENTS.md ("Shrinking the exec_fsmd floor").

use std::time::Instant;

use hls_verify::{prove_equiv_in, verify_equiv, IrContext, ProveOptions};
use qam_decoder::{build_qam_decoder_ir, table1_architectures, table1_library};
use rtl::Fsmd;

#[test]
#[ignore = "measurement harness; run with --ignored --nocapture"]
fn time_verify_floor_per_machine() {
    let ir = build_qam_decoder_ir(&Default::default());
    let lib = table1_library();
    let machines: Vec<(&str, Fsmd)> = table1_architectures()
        .into_iter()
        .map(|arch| {
            let r = hls_core::synthesize(&ir.func, &arch.directives, &lib).expect("synthesizes");
            (arch.name, Fsmd::from_synthesis(&r))
        })
        .collect();

    const REPEATS: usize = 5;
    let mut total_best = 0.0_f64;
    for (name, fsmd) in &machines {
        let mut best = f64::INFINITY;
        for _ in 0..REPEATS {
            let t0 = Instant::now();
            let report = verify_equiv(fsmd);
            let dt = t0.elapsed().as_secs_f64() * 1e3;
            assert!(report.passed(), "{name}: {}", report.describe());
            best = best.min(dt);
        }
        println!("{name:<12} verify_equiv best-of-{REPEATS}: {best:.3} ms");
        total_best += best;
    }
    println!("total        {total_best:.3} ms");
}

/// The shared-context path the fused explore fan-out takes: the IR side is
/// executed once, and only the FSMD side (`exec_fsmd` + obligations) runs
/// per machine. This is the floor the ROADMAP asks to shrink.
#[test]
#[ignore = "measurement harness; run with --ignored --nocapture"]
fn time_shared_context_fsmd_side() {
    let ir = build_qam_decoder_ir(&Default::default());
    let lib = table1_library();
    let opts = ProveOptions::default();
    const REPEATS: usize = 20;
    let mut total_best = 0.0_f64;
    for arch in table1_architectures() {
        let r = hls_core::synthesize(&ir.func, &arch.directives, &lib).expect("synthesizes");
        let fsmd = Fsmd::from_synthesis(&r);
        let ctx = IrContext::for_function(fsmd.function());
        let mut best = f64::INFINITY;
        for _ in 0..REPEATS {
            let t0 = Instant::now();
            let verdict = prove_equiv_in(&ctx, &fsmd, &opts);
            let dt = t0.elapsed().as_secs_f64() * 1e3;
            assert!(verdict.is_proved(), "{}", arch.name);
            best = best.min(dt);
        }
        println!(
            "{:<12} fsmd-side best-of-{REPEATS}: {best:.3} ms",
            arch.name
        );
        total_best += best;
    }
    println!("total        {total_best:.3} ms");
}
