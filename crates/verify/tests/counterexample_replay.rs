//! Counterexample fixtures end to end: plant a controller bug, let the
//! fuzzer find and shrink a mismatch, persist it in the content-addressed
//! fixture layout, load it back in a fresh pass, and replay it through the
//! public differential oracle.

use std::fs;
use std::path::PathBuf;

use hls_core::{synthesize, Directives, TechLibrary};
use hls_ir::{CmpOp, Expr, FunctionBuilder, Ty};
use hls_verify::{
    fuzz_equiv, load_counterexamples, mutate_fsmd, mutations_for, replay_stimulus,
    save_counterexample, Mutation,
};
use rtl::Fsmd;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hls-cex-replay-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// An 8-tap accumulating loop: a trip-count mutation changes the sum, so
/// the differential fuzzer reliably catches it.
fn sum_fsmd() -> Fsmd {
    let mut b = FunctionBuilder::new("sum8");
    let x = b.param_array("x", Ty::fixed(10, 2), 8);
    let out = b.param_scalar("out", Ty::fixed(14, 6));
    let acc = b.local("acc", Ty::fixed(14, 6));
    b.assign(acc, Expr::int_const(0));
    b.for_loop("sum", 0, CmpOp::Lt, 8, 1, |b, k| {
        b.assign(acc, Expr::add(Expr::var(acc), Expr::load(x, Expr::var(k))));
    });
    b.assign(out, Expr::var(acc));
    let r = synthesize(
        &b.build(),
        &Directives::new(10.0),
        &TechLibrary::asic_100mhz(),
    )
    .expect("synthesizes");
    Fsmd::from_synthesis(&r)
}

fn buggy_fsmd() -> Fsmd {
    let good = sum_fsmd();
    let mutation = mutations_for(&good)
        .into_iter()
        .find(|m| matches!(m, Mutation::TripShort { .. }))
        .expect("loop design has a trip mutation");
    mutate_fsmd(&good, &mutation).expect("mutation applies")
}

#[test]
fn fuzzer_counterexample_persists_and_replays() {
    let good = sum_fsmd();
    let bad = buggy_fsmd();

    // The fuzzer finds and shrinks a mismatch on the planted bug.
    let report = fuzz_equiv(&bad);
    let cex = report
        .counterexample
        .expect("trip-short mutation must be caught");
    assert!(
        replay_stimulus(&bad, &cex.stimulus).is_some(),
        "shrunk stimulus must still fail on the buggy machine"
    );

    // Persist, reload, and replay — as a fresh process would.
    let root = scratch_dir("roundtrip");
    let digest = save_counterexample(&root, &bad.name, &cex).expect("fixture saved");
    let fixtures = load_counterexamples(&root);
    assert_eq!(fixtures.len(), 1);
    let fixture = &fixtures[0];
    assert_eq!(fixture.digest, digest);
    assert_eq!(fixture.design, "sum8");
    assert_eq!(fixture.stimulus, cex.stimulus, "bit-exact round-trip");

    let failure = replay_stimulus(&bad, &fixture.stimulus);
    assert!(failure.is_some(), "replayed fixture must reproduce the bug");
    assert_eq!(failure.unwrap().0, fixture.failing_call);

    // The same stimulus passes on the correct machine: the fixture detects
    // the bug, not an artifact of the oracle.
    assert!(
        replay_stimulus(&good, &fixture.stimulus).is_none(),
        "fixture must pass on the unmutated design"
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn verify_equiv_persist_writes_fixture_for_fuzz_cex() {
    // verify_equiv proves this small design symbolically, so the persist
    // variant stores nothing on the good machine...
    let root = scratch_dir("persist");
    let good = sum_fsmd();
    let (report, digest) = hls_verify::verify_equiv_persist(&good, &root);
    assert!(report.passed());
    assert!(digest.is_none());
    assert!(load_counterexamples(&root).is_empty());

    // ...and every fixture that IS on disk replays deterministically.
    let bad = buggy_fsmd();
    if let Some(cex) = fuzz_equiv(&bad).counterexample {
        let d = save_counterexample(&root, &bad.name, &cex).unwrap();
        let all = load_counterexamples(&root);
        assert!(all.iter().any(|f| f.digest == d));
        for f in &all {
            assert!(replay_stimulus(&bad, &f.stimulus).is_some());
        }
    }
    let _ = fs::remove_dir_all(&root);
}
