//! Shared symbolic machine-state plumbing for the two executors.
//!
//! Both the IR-side and FSMD-side symbolic executors manipulate variables
//! holding [`SymId`]s; the helpers here (array select/update chains, index
//! constants, bounds reasoning) are deliberately *shared* so that when the
//! two sides perform the same array access they build byte-for-byte the
//! same DAG structure and hash-cons to the same node.

use fixpt::{Fixed, Format, Signedness};
use hls_ir::CmpOp;

use crate::sym::{Op, SymId, SymTable};

/// Symbolic storage for one variable: a scalar node or one node per
/// array element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymSlot {
    /// A scalar register.
    Scalar(SymId),
    /// An array, one symbolic value per element.
    Array(Vec<SymId>),
}

impl SymSlot {
    /// The scalar node.
    ///
    /// # Panics
    ///
    /// Panics if the slot is an array.
    pub fn scalar(&self) -> SymId {
        match self {
            SymSlot::Scalar(s) => *s,
            SymSlot::Array(_) => panic!("expected scalar slot"),
        }
    }

    /// The element nodes.
    ///
    /// # Panics
    ///
    /// Panics if the slot is a scalar.
    pub fn array(&self) -> &[SymId] {
        match self {
            SymSlot::Array(a) => a,
            SymSlot::Scalar(_) => panic!("expected array slot"),
        }
    }
}

/// Why a symbolic execution had to give up. An `Unsupported` execution is
/// *not* a verdict about the design — the caller falls back to fuzzing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unsupported(pub String);

impl std::fmt::Display for Unsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "symbolic execution unsupported: {}", self.0)
    }
}

/// Result type of the symbolic executors.
pub type ExecResult<T> = Result<T, Unsupported>;

/// The index format used when materializing array-index comparisons; both
/// executors must use the same one so the chains hash-cons together.
pub(crate) fn index_format() -> Format {
    Format::integer(fixpt::MAX_WIDTH, Signedness::Signed)
}

/// Interns the integer `i` as an index constant.
pub(crate) fn index_const(t: &mut SymTable, i: i64) -> SymId {
    t.constant(Fixed::from_int(i, index_format()))
}

/// Builds the mux chain selecting `elems[idx]` for a symbolic in-bounds
/// index.
pub(crate) fn select_element(t: &mut SymTable, idx: SymId, elems: &[SymId]) -> SymId {
    let mut acc = *elems.last().expect("non-empty array");
    for (i, &e) in elems.iter().enumerate().rev().skip(1) {
        let ic = index_const(t, i as i64);
        let c = t.intern(Op::Cmp(CmpOp::Eq, idx, ic));
        acc = t.intern(Op::Ite(c, e, acc));
    }
    acc
}

/// Updates `elems` in place for a (possibly symbolic, in-bounds) index
/// write, optionally gated by `cond`.
pub(crate) fn store_element(
    t: &mut SymTable,
    idx: SymId,
    val: SymId,
    cond: Option<SymId>,
    elems: &mut [SymId],
) {
    for (i, e) in elems.iter_mut().enumerate() {
        let ic = index_const(t, i as i64);
        let eq = t.intern(Op::Cmp(CmpOp::Eq, idx, ic));
        let gate = match cond {
            Some(c) => t.intern(Op::And(c, eq)),
            None => eq,
        };
        *e = t.intern(Op::Ite(gate, val, *e));
    }
}

/// `true` if the node's value enclosure proves `0 ≤ value < len`.
pub(crate) fn index_in_bounds(t: &SymTable, idx: SymId, len: usize) -> bool {
    t.interval_of(idx)
        .is_some_and(|iv| iv.within_ints(0, len as i128 - 1))
}
