//! The staged verification pipeline: prove first, fuzz the remainder.
//!
//! [`verify_equiv`] is the one call sites use: it runs the symbolic
//! prover ([`crate::equiv`]) and, only when the prover returns
//! [`ProveVerdict::Unknown`], falls back to coverage-guided differential
//! fuzzing ([`crate::fuzz`]). A [`ProveVerdict::Disproved`] or a fuzz
//! counterexample is a hard failure with a concrete witness.
//!
//! [`explore_verified`] plugs the same pipeline into design-space
//! exploration via `hls_core::explore_with_check`, gating the Pareto
//! frontier (or every point) on equivalence. [`EquivGate`] plugs it into
//! the pass manager itself: registered as a `PassHook`, it verifies the
//! design the moment metrics land and vetoes the rest of the pipeline on
//! a counterexample.

use hls_core::{
    explore_with_check, synthesize, Diagnostic, Diagnostics, ExploreConfig, ExploreResult,
    PassHook, PipelineState, TechLibrary,
};
use hls_ir::Function;
use rtl::Fsmd;

use crate::equiv::{prove_equiv_with, ProofCex, ProofMethod, ProveOptions, ProveVerdict};
use crate::fuzz::{fuzz_equiv_with, FuzzCex, FuzzConfig};

/// How [`verify_equiv`] reached its conclusion.
#[derive(Debug, Clone)]
pub enum VerifyFinding {
    /// Every observable proved equal for all inputs (canonical form or
    /// exhaustive bit-blast).
    Proved {
        /// Discharged obligations.
        obligations: usize,
        /// How many needed the bit-blast fallback.
        bit_blasted: usize,
        /// Interned DAG size.
        sym_nodes: usize,
    },
    /// The prover found a concrete input on which the machines differ.
    ProofCounterexample(ProofCex),
    /// The prover gave up; the differential fuzzer found no mismatch.
    Fuzzed {
        /// Why the prover stopped.
        prover_reason: String,
        /// Calls executed on both machines.
        calls: u64,
        /// Distinct controller states covered.
        states: usize,
        /// Distinct branch directions covered.
        branch_directions: usize,
    },
    /// The fuzzer found (and shrank) a mismatch.
    FuzzCounterexample(FuzzCex),
}

/// Outcome of [`verify_equiv`].
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// What happened.
    pub finding: VerifyFinding,
}

impl VerifyReport {
    /// `true` when no disagreement between IR and FSMD was found.
    pub fn passed(&self) -> bool {
        matches!(
            self.finding,
            VerifyFinding::Proved { .. } | VerifyFinding::Fuzzed { .. }
        )
    }

    /// One-line human-readable summary.
    pub fn describe(&self) -> String {
        match &self.finding {
            VerifyFinding::Proved {
                obligations,
                bit_blasted,
                sym_nodes,
            } => format!(
                "PROVED: {obligations} observables ({bit_blasted} by bit-blast), {sym_nodes} DAG nodes"
            ),
            VerifyFinding::ProofCounterexample(cex) => format!(
                "DISPROVED: {} = {:?} (IR) vs {:?} (FSMD) at {:?}",
                cex.observable, cex.ir_value, cex.rtl_value, cex.inputs
            ),
            VerifyFinding::Fuzzed {
                prover_reason,
                calls,
                states,
                branch_directions,
            } => format!(
                "FUZZED clean: {calls} calls, {states} controller states, \
                 {branch_directions} branch directions (prover: {prover_reason})"
            ),
            VerifyFinding::FuzzCounterexample(cex) => format!(
                "FUZZ COUNTEREXAMPLE ({} calls, fails at call {}): {}",
                cex.stimulus.len(),
                cex.failing_call,
                cex.message
            ),
        }
    }
}

/// Checks that `fsmd` implements its function's untimed semantics:
/// symbolic proof first, coverage-guided differential fuzzing if the
/// design is too wide to prove. Default knobs throughout.
pub fn verify_equiv(fsmd: &Fsmd) -> VerifyReport {
    verify_equiv_with(fsmd, &ProveOptions::default(), &FuzzConfig::default())
}

/// [`verify_equiv`] with explicit prover and fuzzer configuration.
pub fn verify_equiv_with(fsmd: &Fsmd, prove: &ProveOptions, fuzz: &FuzzConfig) -> VerifyReport {
    let finding = match prove_equiv_with(fsmd, prove) {
        ProveVerdict::Proved {
            obligations,
            sym_nodes,
        } => VerifyFinding::Proved {
            obligations: obligations.len(),
            bit_blasted: obligations
                .iter()
                .filter(|o| matches!(o.method, ProofMethod::BitBlast { .. }))
                .count(),
            sym_nodes,
        },
        ProveVerdict::Disproved(cex) => VerifyFinding::ProofCounterexample(cex),
        ProveVerdict::Unknown { reason, .. } => {
            let report = fuzz_equiv_with(fsmd, fuzz);
            match report.counterexample {
                Some(cex) => VerifyFinding::FuzzCounterexample(cex),
                None => VerifyFinding::Fuzzed {
                    prover_reason: reason,
                    calls: report.calls,
                    states: report.coverage.states(),
                    branch_directions: report.coverage.branch_directions(),
                },
            }
        }
    };
    VerifyReport { finding }
}

/// An equivalence gate for the synthesis pass manager.
///
/// Registered via `Pipeline::with_hook`, it waits for the `metrics` pass
/// (the last synthesis stage), builds the FSMD, and runs [`verify_equiv`]
/// on it. A counterexample becomes an `equiv-failed` error diagnostic —
/// aborting the remaining passes (RTL emission never sees an unproven
/// design) — and a clean result becomes an `equiv-ok` note, so the pass
/// trace records that verification ran.
#[derive(Debug, Clone, Default)]
pub struct EquivGate;

impl PassHook for EquivGate {
    fn after_pass(&self, pass: &str, state: &PipelineState, diags: &mut Diagnostics) {
        if pass != "metrics" {
            return;
        }
        let Some(result) = state.to_result() else {
            return;
        };
        let fsmd = Fsmd::from_synthesis(&result);
        let report = verify_equiv(&fsmd);
        if report.passed() {
            diags.push(Diagnostic::note("equiv-ok", report.describe()));
        } else {
            diags.push(Diagnostic::error("equiv-failed", report.describe()));
        }
    }
}

/// Design-space exploration gated on equivalence: explores like
/// `hls_core::explore`, then re-synthesizes and verifies the points
/// selected by [`ExploreConfig::verify`], recording any failure in
/// `ExploreResult::verify_failures`.
pub fn explore_verified(
    func: &Function,
    config: &ExploreConfig,
    lib: &TechLibrary,
) -> ExploreResult {
    explore_with_check(func, config, lib, &|f, d, l| {
        let r = synthesize(f, d, l).map_err(|e| format!("re-synthesis failed: {e}"))?;
        let fsmd = Fsmd::from_synthesis(&r);
        let report = verify_equiv(&fsmd);
        if report.passed() {
            Ok(())
        } else {
            Err(report.describe())
        }
    })
}
