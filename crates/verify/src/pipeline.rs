//! The staged verification pipeline: prove first, fuzz the remainder.
//!
//! [`verify_equiv`] is the one call sites use: it runs the symbolic
//! prover ([`crate::equiv`]) and, only when the prover returns
//! [`ProveVerdict::Unknown`], falls back to coverage-guided differential
//! fuzzing ([`crate::fuzz`]). A [`ProveVerdict::Disproved`] or a fuzz
//! counterexample is a hard failure with a concrete witness.
//!
//! [`explore_verified`] plugs the same pipeline into design-space
//! exploration via `hls_core::explore_with_check`, gating the Pareto
//! frontier (or every point) on equivalence. [`EquivGate`] plugs it into
//! the pass manager itself: registered as a `PassHook`, it verifies the
//! design the moment metrics land and vetoes the rest of the pipeline on
//! a counterexample.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use hls_core::{
    explore_with_check, explore_with_check_serial, synthesize, Diagnostic, Diagnostics,
    ExploreConfig, ExploreResult, PassHook, PipelineState, TechLibrary,
};
use hls_ir::Function;
use rtl::Fsmd;

use crate::equiv::{
    prove_equiv_in, prove_equiv_with, IrContext, ProofCex, ProofMethod, ProveOptions, ProveVerdict,
};
use crate::fuzz::{fuzz_equiv_with, FuzzCex, FuzzConfig};
use crate::proofcache::{fsmd_key, ProofCache, DEFAULT_OPTIONS_TAG};

/// How [`verify_equiv`] reached its conclusion.
#[derive(Debug, Clone)]
pub enum VerifyFinding {
    /// Every observable proved equal for all inputs (canonical form or
    /// exhaustive bit-blast).
    Proved {
        /// Discharged obligations.
        obligations: usize,
        /// How many needed the bit-blast fallback.
        bit_blasted: usize,
        /// Interned DAG size.
        sym_nodes: usize,
    },
    /// The prover found a concrete input on which the machines differ.
    ProofCounterexample(ProofCex),
    /// The prover gave up; the differential fuzzer found no mismatch.
    Fuzzed {
        /// Why the prover stopped.
        prover_reason: String,
        /// Calls executed on both machines.
        calls: u64,
        /// Distinct controller states covered.
        states: usize,
        /// Distinct branch directions covered.
        branch_directions: usize,
    },
    /// The fuzzer found (and shrank) a mismatch.
    FuzzCounterexample(FuzzCex),
}

/// Outcome of [`verify_equiv`].
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// What happened.
    pub finding: VerifyFinding,
}

impl VerifyReport {
    /// `true` when no disagreement between IR and FSMD was found.
    pub fn passed(&self) -> bool {
        matches!(
            self.finding,
            VerifyFinding::Proved { .. } | VerifyFinding::Fuzzed { .. }
        )
    }

    /// One-line human-readable summary.
    pub fn describe(&self) -> String {
        match &self.finding {
            VerifyFinding::Proved {
                obligations,
                bit_blasted,
                sym_nodes,
            } => format!(
                "PROVED: {obligations} observables ({bit_blasted} by bit-blast), {sym_nodes} DAG nodes"
            ),
            VerifyFinding::ProofCounterexample(cex) => format!(
                "DISPROVED: {} = {:?} (IR) vs {:?} (FSMD) at {:?}",
                cex.observable, cex.ir_value, cex.rtl_value, cex.inputs
            ),
            VerifyFinding::Fuzzed {
                prover_reason,
                calls,
                states,
                branch_directions,
            } => format!(
                "FUZZED clean: {calls} calls, {states} controller states, \
                 {branch_directions} branch directions (prover: {prover_reason})"
            ),
            VerifyFinding::FuzzCounterexample(cex) => format!(
                "FUZZ COUNTEREXAMPLE ({} calls, fails at call {}): {}",
                cex.stimulus.len(),
                cex.failing_call,
                cex.message
            ),
        }
    }
}

/// Checks that `fsmd` implements its function's untimed semantics:
/// symbolic proof first, coverage-guided differential fuzzing if the
/// design is too wide to prove. Default knobs throughout.
pub fn verify_equiv(fsmd: &Fsmd) -> VerifyReport {
    verify_equiv_with(fsmd, &ProveOptions::default(), &FuzzConfig::default())
}

/// [`verify_equiv`] with explicit prover and fuzzer configuration.
pub fn verify_equiv_with(fsmd: &Fsmd, prove: &ProveOptions, fuzz: &FuzzConfig) -> VerifyReport {
    settle(prove_equiv_with(fsmd, prove), fsmd, fuzz, false)
}

/// [`verify_equiv`] through a [`ProofCache`]: the verdict is replayed
/// when the machine's structural key (clock excluded — clock twins
/// share one proof) hits, and recorded otherwise. Only default knobs —
/// the cache key carries the options tag, so a non-default
/// configuration must use its own tag via the lower-level API.
pub fn verify_equiv_cached(fsmd: &Fsmd, cache: &ProofCache) -> VerifyReport {
    let key = fsmd_key(fsmd, DEFAULT_OPTIONS_TAG);
    if let Some(report) = cache.get_fsmd(&key) {
        return report;
    }
    let report = verify_equiv(fsmd);
    cache.put_fsmd(&key, &report);
    report
}

/// [`verify_equiv`], persisting any fuzzer-shrunk counterexample as an
/// on-disk regression fixture under `fixture_root` (see [`crate::fixtures`]
/// for the layout). A failed write never masks the verification verdict —
/// the report is returned either way, with the fixture digest alongside
/// when one was saved.
pub fn verify_equiv_persist(
    fsmd: &Fsmd,
    fixture_root: &std::path::Path,
) -> (VerifyReport, Option<String>) {
    let report = verify_equiv(fsmd);
    let digest = match &report.finding {
        VerifyFinding::FuzzCounterexample(cex) => {
            crate::fixtures::save_counterexample(fixture_root, &fsmd.name, cex).ok()
        }
        _ => None,
    };
    (report, digest)
}

/// Turns a prover verdict into a [`VerifyReport`], falling back to the
/// differential fuzzer when the prover gave up.
///
/// With `cross_check` set, even a *proved* machine runs the fuzz
/// campaign: the symbolic prover and the concrete simulators are
/// independent oracles, so agreement defends against a bug in either.
/// A divergence surfaces as a fuzz counterexample (it would mean the
/// proof was wrong); agreement leaves the `Proved` finding untouched, so
/// cross-checking never changes the shape of a passing report.
fn settle(
    verdict: ProveVerdict,
    fsmd: &Fsmd,
    fuzz: &FuzzConfig,
    cross_check: bool,
) -> VerifyReport {
    let finding = match verdict {
        ProveVerdict::Proved {
            obligations,
            sym_nodes,
        } => {
            if cross_check {
                if let Some(cex) = fuzz_equiv_with(fsmd, fuzz).counterexample {
                    return VerifyReport {
                        finding: VerifyFinding::FuzzCounterexample(cex),
                    };
                }
            }
            VerifyFinding::Proved {
                obligations: obligations.len(),
                bit_blasted: obligations
                    .iter()
                    .filter(|o| matches!(o.method, ProofMethod::BitBlast { .. }))
                    .count(),
                sym_nodes,
            }
        }
        ProveVerdict::Disproved(cex) => VerifyFinding::ProofCounterexample(cex),
        ProveVerdict::Unknown { reason, .. } => {
            let report = fuzz_equiv_with(fsmd, fuzz);
            match report.counterexample {
                Some(cex) => VerifyFinding::FuzzCounterexample(cex),
                None => VerifyFinding::Fuzzed {
                    prover_reason: reason,
                    calls: report.calls,
                    states: report.coverage.states(),
                    branch_directions: report.coverage.branch_directions(),
                },
            }
        }
    };
    VerifyReport { finding }
}

/// A sweep-scoped verifier: [`verify_equiv`] with two memoization layers
/// that exploit the structure of a design-space sweep.
///
/// 1. **IR-context sharing.** The IR side of a proof — symbolic start
///    state plus the interpreter's complete symbolic execution — depends
///    only on the FSMD's transformed function, not on its schedule,
///    binding or clock. Points are grouped by
///    `hls_core::transform_signature` (candidates sharing it share one
///    transformed function) and each group builds one [`IrContext`];
///    every proof in the group clones the symbolic table and runs only
///    the FSMD side. Roughly half of each proof's wall time is shared
///    this way. The group's function is still compared against each
///    member ([`Fsmd::function`] vs the context's), so a signature
///    collision across different source functions degrades to a private
///    context, never to a wrong proof.
/// 2. **Structural verdict memoization.** Clock twins — sweep points
///    whose schedules chain identically under different target clocks —
///    are [`Fsmd::same_machine`]: equal control, schedules, ports and
///    lowered design. The first twin's verdict is replayed for the rest;
///    the hit test is full structural equality, not a hash or heuristic.
///
/// Both layers are behind mutexes, so one prover can be shared by the
/// explorer's worker pool (it is `Sync`); [`explore_verified`] does
/// exactly that.
pub struct ExploreProver {
    prove: ProveOptions,
    fuzz: FuzzConfig,
    cross_check: bool,
    groups: Mutex<HashMap<String, Vec<Arc<ProofGroup>>>>,
    counters: Mutex<ProverStats>,
    cache: Option<Arc<ProofCache>>,
}

/// One shared-function group: the prebuilt IR context plus the verdicts
/// of every distinct machine proved so far.
struct ProofGroup {
    ctx: IrContext,
    machines: Mutex<Vec<(Fsmd, VerifyReport)>>,
}

/// Cache effectiveness counters for an [`ExploreProver`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProverStats {
    /// Distinct IR contexts built (one per distinct transformed function).
    pub contexts: usize,
    /// Proofs actually run (FSMD-side execution + obligations).
    pub proofs: usize,
    /// Verdicts replayed for structurally identical machines.
    pub memo_hits: usize,
}

impl Default for ExploreProver {
    fn default() -> ExploreProver {
        ExploreProver::new()
    }
}

impl ExploreProver {
    /// A fresh prover with default prove/fuzz knobs.
    pub fn new() -> ExploreProver {
        ExploreProver::with_options(ProveOptions::default(), FuzzConfig::default())
    }

    /// A fresh prover with explicit knobs.
    pub fn with_options(prove: ProveOptions, fuzz: FuzzConfig) -> ExploreProver {
        ExploreProver {
            prove,
            fuzz,
            cross_check: false,
            groups: Mutex::new(HashMap::new()),
            counters: Mutex::new(ProverStats::default()),
            cache: None,
        }
    }

    /// Attaches a shared [`ProofCache`]: a third memo layer that, unlike
    /// the two sweep-scoped ones, survives across sweeps (and across
    /// restarts when the cache persists). Sound for any knob setting —
    /// the cache key carries a tag derived from the exact prove/fuzz
    /// configuration (see [`ExploreProver::options_tag`]), so differently
    /// configured provers never read each other's verdicts.
    pub fn with_cache(mut self, cache: Arc<ProofCache>) -> ExploreProver {
        self.cache = Some(cache);
        self
    }

    /// Cross-check every fresh *proved* verdict with the differential
    /// fuzz campaign (the prover and the simulators are independent
    /// oracles; agreement defends against a bug in either). Passing
    /// reports keep their exact `Proved` shape, so cross-checking is
    /// observable only in wall time — and in the one case that matters,
    /// where the oracles disagree and the report becomes a fuzz
    /// counterexample.
    pub fn with_cross_check(mut self) -> ExploreProver {
        self.cross_check = true;
        self
    }

    /// The cache-key tag naming this prover's exact configuration.
    ///
    /// Defaults map to [`DEFAULT_OPTIONS_TAG`] (sharing verdicts with
    /// [`verify_equiv_cached`]); any other setting gets a tag spelling
    /// out every knob, so a verdict can only ever be replayed under the
    /// configuration that produced it.
    pub fn options_tag(&self) -> String {
        let default = ProveOptions::default();
        let dfuzz = FuzzConfig::default();
        if !self.cross_check
            && self.prove.max_blast_bits == default.max_blast_bits
            && self.fuzz.seed == dfuzz.seed
            && self.fuzz.iterations == dfuzz.iterations
            && self.fuzz.max_calls == dfuzz.max_calls
        {
            return DEFAULT_OPTIONS_TAG.to_string();
        }
        format!(
            "blast{};fuzz{:x}:{}:{};xcheck{}",
            self.prove.max_blast_bits,
            self.fuzz.seed,
            self.fuzz.iterations,
            self.fuzz.max_calls,
            self.cross_check
        )
    }

    /// [`verify_equiv`] through both memo layers. `directives` must be
    /// the directive set `fsmd` was synthesized under — its transform
    /// signature locates the shared group (and the group's function is
    /// verified against the FSMD's before anything is reused).
    pub fn verify(&self, directives: &hls_core::Directives, fsmd: &Fsmd) -> VerifyReport {
        let group = self.group_for(&hls_core::transform_signature(directives), fsmd);
        if let Some(hit) = group
            .machines
            .lock()
            .unwrap()
            .iter()
            .find(|(m, _)| m.same_machine(fsmd))
        {
            self.counters.lock().unwrap().memo_hits += 1;
            return hit.1.clone();
        }
        let key = self
            .cache
            .as_ref()
            .map(|_| fsmd_key(fsmd, &self.options_tag()));
        if let (Some(cache), Some(key)) = (&self.cache, &key) {
            if let Some(report) = cache.get_fsmd(key) {
                // Seed the structural memo so this machine's clock twins
                // hit the cheaper in-sweep layer from now on.
                group
                    .machines
                    .lock()
                    .unwrap()
                    .push((fsmd.clone(), report.clone()));
                return report;
            }
        }
        let report = settle(
            prove_equiv_in(&group.ctx, fsmd, &self.prove),
            fsmd,
            &self.fuzz,
            self.cross_check,
        );
        self.counters.lock().unwrap().proofs += 1;
        if let (Some(cache), Some(key)) = (&self.cache, &key) {
            cache.put_fsmd(key, &report);
        }
        group
            .machines
            .lock()
            .unwrap()
            .push((fsmd.clone(), report.clone()));
        report
    }

    /// The group whose context executed exactly `fsmd.function()`,
    /// building it on first sight. Signature collisions (same signature,
    /// different function) get their own group.
    fn group_for(&self, signature: &str, fsmd: &Fsmd) -> Arc<ProofGroup> {
        let mut groups = self.groups.lock().unwrap();
        let bucket = groups.entry(signature.to_string()).or_default();
        if let Some(g) = bucket.iter().find(|g| g.ctx.function() == fsmd.function()) {
            return Arc::clone(g);
        }
        let g = Arc::new(ProofGroup {
            ctx: IrContext::for_function(fsmd.function()),
            machines: Mutex::new(Vec::new()),
        });
        self.counters.lock().unwrap().contexts += 1;
        bucket.push(Arc::clone(&g));
        g
    }

    /// Cache effectiveness so far.
    pub fn stats(&self) -> ProverStats {
        *self.counters.lock().unwrap()
    }
}

/// An equivalence gate for the synthesis pass manager.
///
/// Registered via `Pipeline::with_hook`, it fires twice:
///
/// - after `netlist-opt`, it discharges the optimizer's per-pass rewrite
///   obligations through [`crate::check_netlist_obligations`] — a refuted
///   rewrite becomes a `netlist-equiv-failed` error (aborting synthesis
///   with the offending pass named), an undecidable one a warning, and a
///   fully proved set a `netlist-equiv-ok` note;
/// - after `metrics` (the last synthesis stage), it builds the FSMD and
///   runs [`verify_equiv`] on it — end to end, against the *optimized*
///   design, so netlist `Unknown`s cost attribution but never soundness.
///   A counterexample becomes an `equiv-failed` error diagnostic —
///   aborting the remaining passes (RTL emission never sees an unproven
///   design) — and a clean result becomes an `equiv-ok` note, so the
///   pass trace records that verification ran.
#[derive(Debug, Clone, Default)]
pub struct EquivGate;

impl PassHook for EquivGate {
    fn after_pass(&self, pass: &str, state: &PipelineState, diags: &mut Diagnostics) {
        gate_after_pass(pass, state, diags, None);
    }
}

/// [`EquivGate`] with a shared [`ProofCache`]: identical gating
/// semantics and byte-identical diagnostics, but netlist obligations
/// and the end-to-end FSMD proof replay cached verdicts — across
/// repeated synthesis runs, serve requests and (with a persistent
/// cache) daemon restarts.
#[derive(Debug, Clone)]
pub struct CachedEquivGate {
    cache: Arc<ProofCache>,
}

impl CachedEquivGate {
    /// A gate sharing `cache`.
    pub fn new(cache: Arc<ProofCache>) -> CachedEquivGate {
        CachedEquivGate { cache }
    }
}

impl PassHook for CachedEquivGate {
    fn after_pass(&self, pass: &str, state: &PipelineState, diags: &mut Diagnostics) {
        gate_after_pass(pass, state, diags, Some(&self.cache));
    }
}

/// Shared body of the cached and uncached gates.
fn gate_after_pass(
    pass: &str,
    state: &PipelineState,
    diags: &mut Diagnostics,
    cache: Option<&ProofCache>,
) {
    {
        if pass == "netlist-opt" {
            let obligations = state
                .artifact::<std::sync::Arc<Vec<hls_core::NetlistObligation>>>("netlist-obligations")
                .map(|obs| obs.as_slice())
                .unwrap_or_default();
            if obligations.is_empty() {
                return;
            }
            let opts = ProveOptions::default();
            let mut proved = 0usize;
            let mut unknown: Vec<String> = Vec::new();
            for (ob, verdict) in obligations
                .iter()
                .zip(crate::check_netlist_obligations_cached(
                    obligations,
                    &opts,
                    cache,
                ))
            {
                match verdict {
                    ProveVerdict::Proved { .. } => proved += 1,
                    ProveVerdict::Disproved(cex) => {
                        diags.push(Diagnostic::error(
                            "netlist-equiv-failed",
                            format!(
                                "pass {} broke observable {} (ir={}, rtl={})",
                                ob.pass, cex.observable, cex.ir_value, cex.rtl_value
                            ),
                        ));
                        return;
                    }
                    ProveVerdict::Unknown { reason, .. } => unknown.push(reason),
                }
            }
            if unknown.is_empty() {
                diags.push(Diagnostic::note(
                    "netlist-equiv-ok",
                    format!("{proved} netlist rewrite obligation(s) proved"),
                ));
            } else {
                diags.push(Diagnostic::warning(
                    "netlist-equiv-unknown",
                    format!(
                        "{proved} proved, {} undecided ({}); end-to-end gate still applies",
                        unknown.len(),
                        unknown.join("; ")
                    ),
                ));
            }
            return;
        }
        if pass != "metrics" {
            return;
        }
        let Some(result) = state.to_result() else {
            return;
        };
        let fsmd = Fsmd::from_synthesis(&result);
        let report = match cache {
            Some(cache) => verify_equiv_cached(&fsmd, cache),
            None => verify_equiv(&fsmd),
        };
        if report.passed() {
            diags.push(Diagnostic::note("equiv-ok", report.describe()));
        } else {
            diags.push(Diagnostic::error("equiv-failed", report.describe()));
        }
    }
}

/// Design-space exploration gated on equivalence: explores like
/// `hls_core::explore` and verifies the points selected by
/// [`ExploreConfig::verify`] *inside* the explorer's worker pool, reusing
/// each point's already-built synthesis result (no re-synthesis) and a
/// shared [`ExploreProver`] (IR-context sharing + structural verdict
/// memoization across the sweep). Any failure lands in
/// `ExploreResult::verify_failures`.
pub fn explore_verified(
    func: &Function,
    config: &ExploreConfig,
    lib: &TechLibrary,
) -> ExploreResult {
    explore_verified_with(func, config, lib, &ExploreProver::new())
}

/// [`explore_verified`] with a caller-owned [`ExploreProver`], so one
/// prover (and through [`ExploreProver::with_cache`], one proof cache)
/// can span several sweeps — warm re-sweeps replay verdicts instead of
/// re-proving clock twins and repeated machines from scratch.
pub fn explore_verified_with(
    func: &Function,
    config: &ExploreConfig,
    lib: &TechLibrary,
    prover: &ExploreProver,
) -> ExploreResult {
    explore_with_check(func, config, lib, &|_, d, _, result| {
        let fsmd = Fsmd::from_synthesis(result);
        let report = prover.verify(d, &fsmd);
        if report.passed() {
            Ok(())
        } else {
            Err(report.describe())
        }
    })
}

/// The pre-fusion reference flow of [`explore_verified`]: explore
/// serially, then re-synthesize and verify each selected point after the
/// frontier is known. Kept so benchmarks can measure the fused flow
/// against the historical serial-post-pass behavior.
pub fn explore_verified_serial(
    func: &Function,
    config: &ExploreConfig,
    lib: &TechLibrary,
) -> ExploreResult {
    explore_with_check_serial(func, config, lib, &|f, d, l| {
        let r = synthesize(f, d, l).map_err(|e| format!("re-synthesis failed: {e}"))?;
        let fsmd = Fsmd::from_synthesis(&r);
        let report = verify_equiv(&fsmd);
        if report.passed() {
            Ok(())
        } else {
            Err(report.describe())
        }
    })
}
