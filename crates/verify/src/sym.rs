//! Word-level symbolic expression DAGs over bit-accurate fixed point.
//!
//! Both the IR interpreter semantics and the FSMD per-state op streams are
//! executed into one shared [`SymTable`]: a hash-consed arena of
//! [`Fixed`]-valued operations. The table applies a small *normalizing
//! rewrite system* at construction time — constant folding, commutativity
//! canonicalization, shift algebra, lossless-cast elimination, cast-chain
//! collapse, and mux cast hoisting — so that two computations that are
//! equal for every input tend to intern to the *same* node id. Canonical
//! equality (`a == b` as [`SymId`]s) is therefore a proof of functional
//! equivalence; disequality is decided by the exhaustive bit-blast
//! fallback in [`crate::equiv`] when the input cone is narrow enough.
//!
//! Soundness invariant: every rewrite preserves the node's *value* for all
//! possible input valuations, and [`SymTable::eval`] reproduces exactly the
//! arithmetic the concrete executors perform (`exact_add`, `cast_with`,
//! …), so a bit-blast verdict speaks about the real machines, not an
//! abstraction. The one format-sensitive operation — shifting, which
//! wraps/truncates in the operand's *runtime* format — pins that format
//! into the node ([`Op::Shl`]/[`Op::Shr`]) at translation time, so value-
//! preserving rewrites on the operand can never change what a shift
//! computes.

use std::collections::{BTreeMap, HashMap};

use fixpt::{Fixed, Format, Overflow, Quantization, Signedness};
use hls_ir::CmpOp;

/// Identifier of one hash-consed node in a [`SymTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymId(u32);

impl SymId {
    /// The raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The operation a symbolic node performs.
///
/// Booleans are 1-bit unsigned values, exactly as the interpreter stores
/// them and the RTL wires them.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Op {
    /// A free input: an arbitrary value of the given format.
    Input(u32, Format),
    /// A constant, keyed by `(raw, format)` — the format matters because
    /// downstream shifts and casts are format-sensitive.
    Const(i128, Format),
    /// Exact widening addition.
    Add(SymId, SymId),
    /// Exact widening subtraction.
    Sub(SymId, SymId),
    /// Exact widening multiplication.
    Mul(SymId, SymId),
    /// Exact negation.
    Neg(SymId),
    /// Three-valued sign, in `Format::signed(2, 2)`.
    Signum(SymId),
    /// Boolean negation.
    Not(SymId),
    /// Strict boolean AND (expressions are effect-free, so this has the
    /// same value as the interpreter's short-circuit form).
    And(SymId, SymId),
    /// Strict boolean OR.
    Or(SymId, SymId),
    /// Value comparison (format-independent, like `Fixed`'s `Ord`).
    Cmp(CmpOp, SymId, SymId),
    /// If-then-else on a boolean: yields the chosen arm *unchanged* (any
    /// bus alignment is an explicit [`Op::Cast`], mirroring the DFG).
    Ite(SymId, SymId, SymId),
    /// Fixed-point resize with explicit quantization/overflow modes.
    Cast(SymId, Format, Quantization, Overflow),
    /// Left shift by a constant, wrapping in the *pinned* format — the
    /// operand's runtime format in the concrete machine, captured at
    /// translation time. Pinning it here (instead of deriving it from the
    /// operand node) is what keeps the lossless-cast elimination sound:
    /// rewrites may change the operand's symbolic format, but never the
    /// format the machine shifts in.
    Shl(SymId, u32, Format),
    /// Right shift by a constant, truncating in the pinned format (same
    /// contract as [`Op::Shl`]).
    Shr(SymId, u32, Format),
}

impl Op {
    fn operands(&self) -> Vec<SymId> {
        match *self {
            Op::Input(..) | Op::Const(..) => vec![],
            Op::Neg(a) | Op::Signum(a) | Op::Not(a) => vec![a],
            Op::Cast(a, ..) | Op::Shl(a, ..) | Op::Shr(a, ..) => vec![a],
            Op::Add(a, b)
            | Op::Sub(a, b)
            | Op::Mul(a, b)
            | Op::And(a, b)
            | Op::Or(a, b)
            | Op::Cmp(_, a, b) => vec![a, b],
            Op::Ite(c, t, e) => vec![c, t, e],
        }
    }
}

/// A sound enclosure of a node's possible values: every reachable value is
/// `m · 2⁻ᶠʳᵃᶜ` for some integer `lo ≤ m ≤ hi`.
///
/// This is the analysis behind the *fixed-point resize laws*: a cast whose
/// operand interval provably fits the destination format losslessly is the
/// identity *on values* — so it collapses out of cast chains, hoists out
/// of muxes, and is looked through at value-based consumers, which is what
/// lets the IR-side and FSMD-side DAGs (which insert alignment casts at
/// different places) converge to one canonical form. A lossless cast is
/// NOT erased outright: downstream shifts wrap in the operand's runtime
/// format, so the format change itself is observable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    lo: i128,
    hi: i128,
    frac: i32,
}

impl Interval {
    fn from_format(f: Format) -> Interval {
        Interval {
            lo: f.min_raw(),
            hi: f.max_raw(),
            frac: f.frac_bits(),
        }
    }

    fn point(raw: i128, frac: i32) -> Interval {
        Interval {
            lo: raw,
            hi: raw,
            frac,
        }
    }

    /// Rescales both intervals to a common `frac`; `None` on overflow.
    fn aligned(self, other: Interval) -> Option<(Interval, Interval)> {
        let frac = self.frac.max(other.frac);
        Some((self.rescale(frac)?, other.rescale(frac)?))
    }

    fn rescale(self, frac: i32) -> Option<Interval> {
        let shift = u32::try_from(frac - self.frac).ok()?;
        Some(Interval {
            lo: self
                .lo
                .checked_shl(shift)
                .filter(|v| v >> shift == self.lo)?,
            hi: self
                .hi
                .checked_shl(shift)
                .filter(|v| v >> shift == self.hi)?,
            frac,
        })
    }

    fn add(self, other: Interval) -> Option<Interval> {
        let (a, b) = self.aligned(other)?;
        Some(Interval {
            lo: a.lo.checked_add(b.lo)?,
            hi: a.hi.checked_add(b.hi)?,
            frac: a.frac,
        })
    }

    fn sub(self, other: Interval) -> Option<Interval> {
        other.neg().and_then(|n| self.add(n))
    }

    fn neg(self) -> Option<Interval> {
        Some(Interval {
            lo: self.hi.checked_neg()?,
            hi: self.lo.checked_neg()?,
            frac: self.frac,
        })
    }

    fn mul(self, other: Interval) -> Option<Interval> {
        let products = [
            self.lo.checked_mul(other.lo)?,
            self.lo.checked_mul(other.hi)?,
            self.hi.checked_mul(other.lo)?,
            self.hi.checked_mul(other.hi)?,
        ];
        Some(Interval {
            lo: *products.iter().min().expect("non-empty"),
            hi: *products.iter().max().expect("non-empty"),
            frac: self.frac.checked_add(other.frac)?,
        })
    }

    fn union(self, other: Interval) -> Option<Interval> {
        let (a, b) = self.aligned(other)?;
        Some(Interval {
            lo: a.lo.min(b.lo),
            hi: a.hi.max(b.hi),
            frac: a.frac,
        })
    }

    /// `true` if every value in the interval is exactly representable in
    /// `f` (so a cast into `f` is the identity for all reachable values).
    fn fits_losslessly(self, f: Format) -> bool {
        if self.frac > f.frac_bits() {
            return false;
        }
        match self.aligned(Interval::from_format(f)) {
            Some((v, r)) => v.lo >= r.lo && v.hi <= r.hi,
            None => false,
        }
    }

    /// `true` if every value lies in the *integer* range `[lo, hi]`.
    pub(crate) fn within_ints(self, lo: i128, hi: i128) -> bool {
        let r = Interval { lo, hi, frac: 0 };
        match self.aligned(r) {
            Some((v, r)) => v.lo >= r.lo && v.hi <= r.hi,
            None => false,
        }
    }

    /// `true` if all values are strictly positive / negative / zero.
    fn sign(self) -> Option<i32> {
        if self.lo > 0 {
            Some(1)
        } else if self.hi < 0 {
            Some(-1)
        } else if self.lo == 0 && self.hi == 0 {
            Some(0)
        } else {
            None
        }
    }
}

#[derive(Debug, Clone)]
struct NodeData {
    op: Op,
    /// The statically-known runtime format of the value, when it is the
    /// same on every path (an [`Op::Ite`] of differently-formatted arms
    /// has none).
    fmt: Option<Format>,
    /// Sound value enclosure, when representable.
    iv: Option<Interval>,
}

/// The 1-bit unsigned format used for booleans throughout the flow.
pub fn bool_format() -> Format {
    Format::integer(1, Signedness::Unsigned)
}

/// [`Format::add_format`] without the width panic: `None` when the exact
/// sum format would exceed the representable width, so canonicalizing
/// rewrites can bail instead of crashing mid-proof.
fn checked_add_format(a: Format, b: Format) -> Option<Format> {
    let signed = a.is_signed() || b.is_signed();
    let eff = |f: &Format| {
        if signed && !f.is_signed() {
            f.int_bits() + 1
        } else {
            f.int_bits()
        }
    };
    let int = eff(&a).max(eff(&b)) + 1;
    let frac = a.frac_bits().max(b.frac_bits());
    let width = u32::try_from((int + frac).max(1)).ok()?;
    let s = if signed {
        Signedness::Signed
    } else {
        Signedness::Unsigned
    };
    Format::new(width, int, s).ok()
}

/// [`Format::neg_format`] without the width panic.
fn checked_neg_format(f: Format) -> Option<Format> {
    Format::new(f.width() + 1, f.int_bits() + 1, Signedness::Signed).ok()
}

/// A hash-consed arena of symbolic nodes with normalizing construction.
#[derive(Debug, Default, Clone)]
pub struct SymTable {
    nodes: Vec<NodeData>,
    dedup: HashMap<Op, SymId>,
    next_input: u32,
}

impl SymTable {
    /// An empty table.
    pub fn new() -> SymTable {
        SymTable::default()
    }

    /// Number of interned nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if no nodes have been interned.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Creates a fresh free input of the given format and returns its id
    /// together with the input ordinal (used to name counterexamples).
    pub fn fresh_input(&mut self, format: Format) -> SymId {
        let n = self.next_input;
        self.next_input += 1;
        self.intern(Op::Input(n, format))
    }

    /// Interns a constant.
    pub fn constant(&mut self, value: Fixed) -> SymId {
        self.intern(Op::Const(value.raw(), value.format()))
    }

    /// Interns a boolean constant (1-bit unsigned, like the interpreter).
    pub fn constant_bool(&mut self, b: bool) -> SymId {
        self.constant(Fixed::from_int(b as i64, bool_format()))
    }

    /// The statically-known format of a node, if any.
    pub fn format_of(&self, id: SymId) -> Option<Format> {
        self.nodes[id.index()].fmt
    }

    /// The value enclosure of a node, if one could be computed.
    pub(crate) fn interval_of(&self, id: SymId) -> Option<Interval> {
        self.nodes[id.index()].iv
    }

    /// The `(ordinal, format)` of a node, if it is an [`Op::Input`].
    pub fn input_info(&self, id: SymId) -> Option<(u32, Format)> {
        match self.nodes[id.index()].op {
            Op::Input(n, f) => Some((n, f)),
            _ => None,
        }
    }

    /// The constant value of a node, if it is an [`Op::Const`].
    pub fn const_value(&self, id: SymId) -> Option<Fixed> {
        match self.nodes[id.index()].op {
            Op::Const(raw, f) => Some(Fixed::from_raw(raw, f).expect("interned raw in range")),
            _ => None,
        }
    }

    fn op_of(&self, id: SymId) -> &Op {
        &self.nodes[id.index()].op
    }

    /// Interns `op`, first applying the normalizing rewrites. The returned
    /// id denotes a node whose value equals `op`'s for every input.
    pub fn intern(&mut self, op: Op) -> SymId {
        match self.rewrite(op) {
            Ok(id) => id,
            Err(op) => self.intern_raw(op),
        }
    }

    /// Interns an op as-is, bypassing the rewrites — used on ops the
    /// rewriter just returned (already canonical) and by the chain
    /// canonicalizers when rebuilding a flattened sum (each spine node is
    /// canonical by construction, so re-rewriting would only recurse).
    fn intern_raw(&mut self, op: Op) -> SymId {
        if let Some(&id) = self.dedup.get(&op) {
            return id;
        }
        let fmt = self.fmt_of(&op);
        let iv = self.iv_of(&op, fmt);
        let id = SymId(u32::try_from(self.nodes.len()).expect("node count fits u32"));
        self.nodes.push(NodeData {
            op: op.clone(),
            fmt,
            iv,
        });
        self.dedup.insert(op, id);
        id
    }

    /// Leaves of the maximal `Add` chain rooted at `root`, left to right
    /// (iterative: unrolled accumulation chains can be deep).
    fn add_leaves(&self, root: SymId, out: &mut Vec<SymId>) {
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            match *self.op_of(id) {
                Op::Add(a, b) => {
                    stack.push(b);
                    stack.push(a);
                }
                _ => out.push(id),
            }
        }
    }

    /// Flattens an additive chain into the canonical form: constants
    /// folded into one leaf, `x + (−x)` pairs cancelled, the remaining
    /// leaves sorted by id and rebuilt as a left-deep spine. Two sums
    /// built in any association order (a rebalanced adder tree vs. the
    /// original chain, notably) intern to the same node this way.
    ///
    /// `Err(Op::Add(a, b))` means "intern as given": either the chain is
    /// already canonical, or a leaf's format is unknown / an intermediate
    /// exact format would exceed the 64-bit limit — rebuilding in a
    /// different order could then panic inside the exact arithmetic, so
    /// the rewrite conservatively bails (costing only canonicality, never
    /// soundness).
    fn canonicalize_add(&mut self, a: SymId, b: SymId) -> Result<SymId, Op> {
        let mut leaves = Vec::new();
        self.add_leaves(a, &mut leaves);
        self.add_leaves(b, &mut leaves);

        // Fold every constant leaf into one exact accumulator.
        let mut acc: Option<Fixed> = None;
        let mut counts: BTreeMap<SymId, usize> = BTreeMap::new();
        for &l in &leaves {
            match self.const_value(l) {
                Some(c) => {
                    acc = Some(match acc {
                        Some(p) => match checked_add_format(p.format(), c.format()) {
                            Some(_) => p.exact_add(&c),
                            None => return Err(Op::Add(a, b)),
                        },
                        None => c,
                    })
                }
                None => *counts.entry(l).or_insert(0) += 1,
            }
        }
        // Cancel `x` against `Neg(x)`: exact negation, so every such pair
        // contributes zero on all inputs.
        let ids: Vec<SymId> = counts.keys().copied().collect();
        for l in ids {
            if let Op::Neg(x) = *self.op_of(l) {
                let k = counts
                    .get(&l)
                    .copied()
                    .unwrap_or(0)
                    .min(counts.get(&x).copied().unwrap_or(0));
                if k > 0 {
                    *counts.get_mut(&l).expect("counted") -= k;
                    *counts.get_mut(&x).expect("counted") -= k;
                }
            }
        }
        let mut canon: Vec<SymId> = Vec::new();
        for (&l, &n) in &counts {
            canon.extend(std::iter::repeat_n(l, n));
        }
        // A zero constant vanishes; a non-zero one joins the sorted leaves.
        if let Some(c) = acc {
            if !c.is_zero() || canon.is_empty() {
                let cid = self.constant(c);
                let at = canon.partition_point(|&l| l < cid);
                canon.insert(at, cid);
            }
        }
        match canon.len() {
            0 => return Ok(self.constant(Fixed::from_int(0, bool_format()))),
            1 => return Ok(canon[0]),
            _ => {}
        }
        // Already canonical? (Sorted leaf sequence and left-deep shape:
        // `b` a leaf, `a` canonical-by-induction.) Intern as given.
        if canon == leaves && !matches!(self.op_of(b), Op::Add(..)) {
            return Err(Op::Add(a, b));
        }
        // Format guard: rebuilding in a different association order must
        // not push an exact intermediate format past the width limit.
        let mut fmt = match self.format_of(canon[0]) {
            Some(f) => f,
            None => return Err(Op::Add(a, b)),
        };
        for &l in &canon[1..] {
            let lf = match self.format_of(l) {
                Some(f) => f,
                None => return Err(Op::Add(a, b)),
            };
            fmt = match checked_add_format(fmt, lf) {
                Some(f) => f,
                None => return Err(Op::Add(a, b)),
            };
        }
        let mut root = canon[0];
        for &l in &canon[1..] {
            root = self.intern_raw(Op::Add(root, l));
        }
        Ok(root)
    }

    /// One rewriting step: `Ok(id)` means the op reduced to an existing
    /// node, `Err(op)` returns the (possibly canonicalized) op to intern.
    fn rewrite(&mut self, op: Op) -> Result<SymId, Op> {
        // Constant folding: every operation on constants evaluates with
        // the exact fixpt arithmetic the concrete machines use.
        if !matches!(op, Op::Const(..) | Op::Input(..)) {
            let consts: Option<Vec<Fixed>> =
                op.operands().iter().map(|&o| self.const_value(o)).collect();
            if let Some(vals) = consts {
                let folded = eval_op(&op, &vals);
                return Ok(self.constant(folded));
            }
        }
        match op {
            // Additive chains canonicalize wholesale: flatten, fold
            // constants, cancel `x + (−x)`, sort, rebuild left-deep. This
            // subsumes plain commutativity and is what lets a rebalanced
            // adder tree meet the original serial chain.
            Op::Add(a, b) => self.canonicalize_add(a, b),
            // Subtraction moves into the additive domain (`a − b` is
            // exactly `a + (−b)` in the exact arithmetic) so differences
            // join the same canonical sums. The expansion is wider than
            // `sub_format` (negation costs a bit), so it only fires when
            // both the negation and the resulting sum stay representable.
            Op::Sub(a, b) => {
                let widened = self
                    .format_of(a)
                    .zip(self.format_of(b).and_then(checked_neg_format));
                match widened.and_then(|(fa, nf)| checked_add_format(fa, nf)) {
                    Some(_) => {
                        let nb = self.intern(Op::Neg(b));
                        Ok(self.intern(Op::Add(a, nb)))
                    }
                    None => Err(Op::Sub(a, b)),
                }
            }
            Op::Neg(a) => match *self.op_of(a) {
                // Exact negation is an involution on values.
                Op::Neg(x) => Ok(x),
                // −(x + y) = (−x) + (−y): pushing negation to the leaves
                // lets subtract chains built in any shape flatten into
                // one canonical sum. Guarded per leaf by the negation
                // format staying representable.
                Op::Add(..) => {
                    let mut leaves = Vec::new();
                    self.add_leaves(a, &mut leaves);
                    // Guard every negated leaf and the whole rebuilt sum:
                    // the distributed chain is a bit wider per leaf, and
                    // no intermediate may pass the width limit.
                    let mut negf = Vec::with_capacity(leaves.len());
                    for &l in &leaves {
                        match self.format_of(l).and_then(checked_neg_format) {
                            Some(f) => negf.push(f),
                            None => return Err(Op::Neg(a)),
                        }
                    }
                    let mut acc = negf[0];
                    for &f in &negf[1..] {
                        acc = match checked_add_format(acc, f) {
                            Some(f) => f,
                            None => return Err(Op::Neg(a)),
                        };
                    }
                    let mut negs = Vec::with_capacity(leaves.len());
                    for &l in &leaves {
                        negs.push(self.intern(Op::Neg(l)));
                    }
                    let mut root = negs[0];
                    for &n in &negs[1..] {
                        root = self.intern(Op::Add(root, n));
                    }
                    Ok(root)
                }
                _ => Err(Op::Neg(a)),
            },
            Op::Mul(a, b) => {
                // ×0 and ×1 are value-exact in the exact arithmetic, and
                // every consumer in this DAG is value-based, so the
                // product format's extra bits carry no information.
                let one = Fixed::from_int(1, Format::signed(2, 2));
                match (self.const_value(a), self.const_value(b)) {
                    (Some(c), _) if c.is_zero() || c == one => Ok(if c.is_zero() { a } else { b }),
                    (_, Some(c)) if c.is_zero() || c == one => Ok(if c.is_zero() { b } else { a }),
                    // Commutativity canonicalization: order operands by id.
                    _ if a > b => Err(Op::Mul(b, a)),
                    _ => Err(Op::Mul(a, b)),
                }
            }
            Op::And(a, b) if a > b => Err(Op::And(b, a)),
            Op::Or(a, b) if a > b => Err(Op::Or(b, a)),
            Op::Cmp(c, a, b) if a > b => Err(Op::Cmp(mirror(c), b, a)),
            Op::And(a, b) | Op::Or(a, b) if a == b => Ok(a),
            Op::And(a, b) => match (self.const_value(a), self.const_value(b)) {
                (Some(c), _) => Ok(if c.is_zero() {
                    self.constant_bool(false)
                } else {
                    b
                }),
                (_, Some(c)) => Ok(if c.is_zero() {
                    self.constant_bool(false)
                } else {
                    a
                }),
                _ => Err(Op::And(a, b)),
            },
            Op::Or(a, b) => match (self.const_value(a), self.const_value(b)) {
                (Some(c), _) => Ok(if c.is_zero() {
                    b
                } else {
                    self.constant_bool(true)
                }),
                (_, Some(c)) => Ok(if c.is_zero() {
                    a
                } else {
                    self.constant_bool(true)
                }),
                _ => Err(Op::Or(a, b)),
            },
            Op::Not(a) => match self.op_of(a) {
                Op::Not(inner) => Ok(*inner),
                _ => Err(Op::Not(a)),
            },
            // A comparison of a node with itself is decided by reflexivity.
            Op::Cmp(c, a, b) if a == b => {
                let v = c.eval(std::cmp::Ordering::Equal);
                Ok(self.constant_bool(v))
            }
            Op::Ite(c, t, e) => {
                if t == e {
                    return Ok(t);
                }
                if let Some(cv) = self.const_value(c) {
                    return Ok(if !cv.is_zero() { t } else { e });
                }
                if let Op::Not(inner) = self.op_of(c) {
                    let inner = *inner;
                    return Ok(self.intern(Op::Ite(inner, e, t)));
                }
                // Cast hoisting: a mux whose arms are the same resize of
                // two values is the resize of the mux of the values. This
                // is how the FSMD side's bus-alignment casts (inserted on
                // each mux arm) meet the IR side's bare select.
                if let (&Op::Cast(x, f1, q1, o1), &Op::Cast(y, f2, q2, o2)) =
                    (self.op_of(t), self.op_of(e))
                {
                    if (f1, q1, o1) == (f2, q2, o2) {
                        let inner = self.intern(Op::Ite(c, x, y));
                        return Ok(self.intern(Op::Cast(inner, f1, q1, o1)));
                    }
                }
                Err(Op::Ite(c, t, e))
            }
            // Fixed-point resize laws. A cast whose operand provably fits
            // the target format is value-invisible, and every consumer in
            // this DAG is value-based (shifts pin the machine format they
            // operate in rather than reading the operand node's format),
            // so it vanishes. This is the workhorse that lets the IR
            // side's exact intermediate formats meet the FSMD side's
            // bus-aligned ones. When the operand's own interval is
            // unknown, a known-lossless *inner* cast still collapses out
            // of a cast chain.
            Op::Cast(a, f, q, o) => {
                if self.format_of(a) == Some(f) {
                    return Ok(a);
                }
                if self.interval_of(a).is_some_and(|iv| iv.fits_losslessly(f)) {
                    return Ok(a);
                }
                if let Op::Cast(x, f1, _, _) = *self.op_of(a) {
                    let inner_lossless =
                        self.interval_of(x).is_some_and(|iv| iv.fits_losslessly(f1));
                    if inner_lossless {
                        return Ok(self.intern(Op::Cast(x, f, q, o)));
                    }
                }
                Err(Op::Cast(a, f, q, o))
            }
            // Shift algebra: zero shifts vanish (the operand's machine
            // value is representable in the pinned format by construction,
            // so the implicit re-format is identity); same-direction
            // shifts in the same pinned format compose raw-wise on the
            // same register width, so wrapping and truncation compose.
            Op::Shl(a, 0, _) | Op::Shr(a, 0, _) => Ok(a),
            Op::Shl(a, n, fm) => match *self.op_of(a) {
                Op::Shl(inner, m, f2) if f2 == fm => Err(Op::Shl(inner, n + m, fm)),
                _ => Err(Op::Shl(a, n, fm)),
            },
            Op::Shr(a, n, fm) => match *self.op_of(a) {
                Op::Shr(inner, m, f2) if f2 == fm => Err(Op::Shr(inner, n + m, fm)),
                _ => Err(Op::Shr(a, n, fm)),
            },
            other => Err(other),
        }
    }

    fn fmt_of(&self, op: &Op) -> Option<Format> {
        let f = |id: SymId| self.format_of(id);
        match *op {
            Op::Input(_, fm) | Op::Const(_, fm) => Some(fm),
            Op::Add(a, b) => Some(f(a)?.add_format(&f(b)?)),
            Op::Sub(a, b) => Some(f(a)?.sub_format(&f(b)?)),
            Op::Mul(a, b) => Some(f(a)?.mul_format(&f(b)?)),
            Op::Neg(a) => Some(f(a)?.neg_format()),
            Op::Signum(_) => Some(Format::signed(2, 2)),
            Op::Not(_) | Op::And(..) | Op::Or(..) | Op::Cmp(..) => Some(bool_format()),
            Op::Ite(_, t, e) => match (f(t), f(e)) {
                (Some(a), Some(b)) if a == b => Some(a),
                _ => None,
            },
            Op::Cast(_, fm, _, _) => Some(fm),
            Op::Shl(_, _, fm) | Op::Shr(_, _, fm) => Some(fm),
        }
    }

    fn iv_of(&self, op: &Op, fmt: Option<Format>) -> Option<Interval> {
        let iv = |id: SymId| self.interval_of(id);
        let fallback = fmt.map(Interval::from_format);
        let refined = match *op {
            Op::Const(raw, f) => Some(Interval::point(raw, f.frac_bits())),
            Op::Add(a, b) => iv(a)?.add(iv(b)?),
            Op::Sub(a, b) => iv(a)?.sub(iv(b)?),
            Op::Mul(a, b) => iv(a)?.mul(iv(b)?),
            Op::Neg(a) => iv(a)?.neg(),
            Op::Signum(a) => {
                let s = iv(a).and_then(Interval::sign);
                Some(match s {
                    Some(s) => Interval::point(s as i128, 0),
                    None => Interval {
                        lo: -1,
                        hi: 1,
                        frac: 0,
                    },
                })
            }
            Op::Not(_) | Op::And(..) | Op::Or(..) | Op::Cmp(..) => Some(Interval {
                lo: 0,
                hi: 1,
                frac: 0,
            }),
            Op::Ite(_, t, e) => iv(t)?.union(iv(e)?),
            Op::Cast(a, f, _, _) => match iv(a) {
                Some(src) if src.fits_losslessly(f) => Some(src),
                _ => Some(Interval::from_format(f)),
            },
            _ => None,
        };
        refined.or(fallback)
    }

    /// Collects the distinct free inputs (`(ordinal, format, id)`) that
    /// `roots` depend on, in ordinal order.
    pub fn support(&self, roots: &[SymId]) -> Vec<(u32, Format, SymId)> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack: Vec<SymId> = roots.to_vec();
        let mut inputs = Vec::new();
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut seen[id.index()], true) {
                continue;
            }
            if let Op::Input(n, f) = self.nodes[id.index()].op {
                inputs.push((n, f, id));
            }
            stack.extend(self.nodes[id.index()].op.operands());
        }
        inputs.sort_by_key(|&(n, _, _)| n);
        inputs
    }

    /// Evaluates `roots` concretely under the given input valuation
    /// (`ordinal → value`). Every node is evaluated exactly once, in the
    /// all-arms style of the hardware (mux arms and dead guards included),
    /// which matches both the RTL simulator and the interpreter's
    /// evaluate-both-arms `Select`.
    pub fn eval(&self, roots: &[SymId], inputs: &HashMap<u32, Fixed>) -> Vec<Fixed> {
        Evaluator::new().eval(self, roots, inputs)
    }
}

/// A reusable concrete evaluator: keeps its memo buffers alive across
/// valuations (generation-stamped) so exhaustive bit-blast enumeration
/// does not allocate per input point.
#[derive(Debug, Default)]
pub struct Evaluator {
    vals: Vec<Fixed>,
    stamp: Vec<u32>,
    cur: u32,
    stack: Vec<(SymId, bool)>,
}

impl Evaluator {
    /// A fresh evaluator.
    pub fn new() -> Evaluator {
        Evaluator::default()
    }

    /// Evaluates `roots` concretely under `inputs` (`ordinal → value`).
    /// See [`SymTable::eval`] for the all-arms semantics.
    pub fn eval(
        &mut self,
        t: &SymTable,
        roots: &[SymId],
        inputs: &HashMap<u32, Fixed>,
    ) -> Vec<Fixed> {
        if self.vals.len() < t.nodes.len() {
            let zero = Fixed::from_int(0, bool_format());
            self.vals.resize(t.nodes.len(), zero);
            self.stamp.resize(t.nodes.len(), 0);
        }
        self.cur += 1;
        for &root in roots {
            self.eval_into(t, root, inputs);
        }
        roots.iter().map(|r| self.vals[r.index()]).collect()
    }

    fn eval_into(&mut self, t: &SymTable, root: SymId, inputs: &HashMap<u32, Fixed>) {
        // Iterative post-order so deep unrolled datapaths cannot overflow
        // the call stack.
        self.stack.clear();
        self.stack.push((root, false));
        while let Some((id, expanded)) = self.stack.pop() {
            if self.stamp[id.index()] == self.cur {
                continue;
            }
            let node = &t.nodes[id.index()];
            if !expanded {
                self.stack.push((id, true));
                for o in node.op.operands() {
                    if self.stamp[o.index()] != self.cur {
                        self.stack.push((o, false));
                    }
                }
                continue;
            }
            let vals: Vec<Fixed> = node
                .op
                .operands()
                .iter()
                .map(|o| self.vals[o.index()])
                .collect();
            let v = match node.op {
                Op::Input(n, f) => {
                    let v = *inputs.get(&n).expect("valuation covers support");
                    debug_assert_eq!(v.format(), f, "input valuation format");
                    v
                }
                _ => eval_op(&node.op, &vals),
            };
            self.vals[id.index()] = v;
            self.stamp[id.index()] = self.cur;
        }
    }
}

/// Mirror of a comparison under operand swap.
fn mirror(c: CmpOp) -> CmpOp {
    match c {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Ge => CmpOp::Le,
    }
}

/// Concrete evaluation of one op on operand values — the single source of
/// truth shared by constant folding and [`SymTable::eval`], mirroring the
/// interpreter and the RTL simulator op-for-op.
fn eval_op(op: &Op, vals: &[Fixed]) -> Fixed {
    let b = |f: &Fixed| !f.is_zero();
    let mk_bool = |v: bool| Fixed::from_int(v as i64, bool_format());
    match *op {
        Op::Input(..) => unreachable!("inputs are valued by the caller"),
        Op::Const(raw, f) => Fixed::from_raw(raw, f).expect("interned raw in range"),
        Op::Add(..) => vals[0].exact_add(&vals[1]),
        Op::Sub(..) => vals[0].exact_sub(&vals[1]),
        Op::Mul(..) => vals[0].exact_mul(&vals[1]),
        Op::Neg(_) => vals[0].negate(),
        Op::Signum(_) => Fixed::from_int(vals[0].signum() as i64, Format::signed(2, 2)),
        Op::Not(_) => mk_bool(!b(&vals[0])),
        Op::And(..) => mk_bool(b(&vals[0]) && b(&vals[1])),
        Op::Or(..) => mk_bool(b(&vals[0]) || b(&vals[1])),
        Op::Cmp(c, ..) => mk_bool(c.eval(vals[0].cmp(&vals[1]))),
        Op::Ite(..) => {
            if b(&vals[0]) {
                vals[1]
            } else {
                vals[2]
            }
        }
        Op::Cast(_, f, q, o) => vals[0].cast_with(f, q, o),
        // The operand's machine value is representable in the pinned
        // format (it *is* the operand's machine format at translation
        // time), so the cast is a lossless re-format and the shift
        // wraps/truncates exactly as the concrete machines do.
        Op::Shl(_, n, fm) => vals[0].cast(fm).shl(n),
        Op::Shr(_, n, fm) => vals[0].cast(fm).shr(n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fx(v: i64, w: u32, i: i32) -> Fixed {
        Fixed::from_int(v, Format::signed(w, i))
    }

    #[test]
    fn hash_consing_dedups_structurally() {
        let mut t = SymTable::new();
        let a = t.fresh_input(Format::signed(8, 4));
        let b = t.fresh_input(Format::signed(8, 4));
        let s1 = t.intern(Op::Add(a, b));
        let s2 = t.intern(Op::Add(b, a)); // commuted
        assert_eq!(s1, s2);
    }

    #[test]
    fn rebalanced_adder_trees_are_canonical() {
        // The netlist rebalance pass re-associates serial accumulation
        // chains into balanced trees; both shapes must intern to one node.
        let mut t = SymTable::new();
        let f = Format::signed(8, 4);
        let vars: Vec<SymId> = (0..4).map(|_| t.fresh_input(f)).collect();
        let (a, b, c, d) = (vars[0], vars[1], vars[2], vars[3]);
        let ab = t.intern(Op::Add(a, b));
        let abc = t.intern(Op::Add(ab, c));
        let serial = t.intern(Op::Add(abc, d));
        let cd = t.intern(Op::Add(c, d));
        let tree = t.intern(Op::Add(ab, cd));
        assert_eq!(serial, tree, "association order must not matter");
        // Constants scattered through the chain fold into one leaf.
        let k1 = t.constant(fx(3, 8, 8));
        let k2 = t.constant(fx(4, 8, 8));
        let l = t.intern(Op::Add(ab, k1));
        let l = t.intern(Op::Add(l, k2));
        let k7 = t.constant(fx(7, 9, 9));
        let folded = t.intern(Op::Add(ab, k7));
        assert_eq!(l, folded, "chain constants fold into one leaf");
    }

    #[test]
    fn subtraction_joins_the_additive_domain() {
        // a − b interned directly equals a + (−b), and (a + b) − b
        // cancels back to a — the algebra the delay-rebalance pass leans
        // on when it re-associates mixed add/sub chains.
        let mut t = SymTable::new();
        let f = Format::signed(8, 4);
        let a = t.fresh_input(f);
        let b = t.fresh_input(f);
        let sub = t.intern(Op::Sub(a, b));
        let nb = t.intern(Op::Neg(b));
        let add = t.intern(Op::Add(a, nb));
        assert_eq!(sub, add, "a − b canonicalizes to a + (−b)");
        let ab = t.intern(Op::Add(a, b));
        let back = t.intern(Op::Sub(ab, b));
        assert_eq!(back, a, "(a + b) − b cancels to a");
        // Negation is an involution and distributes over sums.
        let nn = t.intern(Op::Neg(nb));
        assert_eq!(nn, b);
        let neg_sum = t.intern(Op::Neg(ab));
        let na = t.intern(Op::Neg(a));
        let dist = t.intern(Op::Add(na, nb));
        assert_eq!(neg_sum, dist, "−(a + b) = (−a) + (−b)");
    }

    #[test]
    fn multiplicative_identities_vanish() {
        let mut t = SymTable::new();
        let x = t.fresh_input(Format::signed(8, 4));
        let one = t.constant(fx(1, 8, 8));
        let zero = t.constant(fx(0, 8, 8));
        assert_eq!(t.intern(Op::Mul(x, one)), x, "x × 1 = x");
        assert_eq!(t.intern(Op::Mul(one, x)), x, "1 × x = x");
        let z = t.intern(Op::Mul(x, zero));
        assert_eq!(t.const_value(z).map(|c| c.to_i64()), Some(0), "x × 0 = 0");
    }

    #[test]
    fn wide_chains_bail_rather_than_overflow_the_exact_format() {
        // Leaves near the 64-bit width limit: re-associating could push
        // an exact intermediate past it, so canonicalization declines and
        // the nodes intern as built (sound, merely less canonical).
        let mut t = SymTable::new();
        let f = Format::signed(63, 32);
        let a = t.fresh_input(f);
        let b = t.fresh_input(f);
        let s = t.intern(Op::Sub(a, b));
        assert!(
            matches!(t.op_of(s), Op::Sub(..)),
            "negation would need 64+1 bits, so Sub stays opaque"
        );
    }

    #[test]
    fn constants_fold() {
        let mut t = SymTable::new();
        let a = t.constant(fx(3, 8, 8));
        let b = t.constant(fx(4, 8, 8));
        let s = t.intern(Op::Add(a, b));
        assert_eq!(t.const_value(s).unwrap().to_i64(), 7);
    }

    #[test]
    fn lossless_cast_is_eliminated() {
        // A cast whose operand provably fits the target format preserves
        // the value, and (shifts being format-pinned) no consumer can
        // observe the format change: the node vanishes entirely.
        let mut t = SymTable::new();
        let a = t.fresh_input(Format::signed(8, 4));
        let c = t.intern(Op::Cast(
            a,
            Format::signed(16, 8),
            Quantization::Trn,
            Overflow::Wrap,
        ));
        assert_eq!(c, a);
    }

    #[test]
    fn lossless_inner_casts_collapse_out_of_chains() {
        // Align-then-clip equals a direct clip when the alignment step is
        // lossless — even though the clip itself is not.
        let mut t = SymTable::new();
        let a = t.fresh_input(Format::signed(8, 4));
        let wide = t.intern(Op::Cast(
            a,
            Format::signed(16, 8),
            Quantization::Trn,
            Overflow::Wrap,
        ));
        let clip = Format::signed(5, 2);
        let out = t.intern(Op::Cast(wide, clip, Quantization::Trn, Overflow::Wrap));
        let direct = t.intern(Op::Cast(a, clip, Quantization::Trn, Overflow::Wrap));
        assert_eq!(out, direct, "align-then-clip equals direct clip");
    }

    #[test]
    fn mux_arm_casts_hoist() {
        // Lossy (clipping) casts cannot vanish, but identical casts on
        // both mux arms hoist over the mux — matching the IR side's
        // bare select followed by one resize.
        let mut t = SymTable::new();
        let c = t.fresh_input(bool_format());
        let x = t.fresh_input(Format::signed(8, 4));
        let y = t.fresh_input(Format::signed(8, 4));
        let clip = Format::signed(5, 2);
        let cx = t.intern(Op::Cast(x, clip, Quantization::Trn, Overflow::Wrap));
        let cy = t.intern(Op::Cast(y, clip, Quantization::Trn, Overflow::Wrap));
        let aligned_mux = t.intern(Op::Ite(c, cx, cy));
        let bare_mux = t.intern(Op::Ite(c, x, y));
        let cast_of_mux = t.intern(Op::Cast(bare_mux, clip, Quantization::Trn, Overflow::Wrap));
        assert_eq!(aligned_mux, cast_of_mux, "arm casts hoist over the mux");
    }

    #[test]
    fn shl_wraps_in_its_pinned_format_despite_cast_elimination() {
        // Regression: a Shl after a value-lossless widening cast must wrap
        // in the *widened* format even though the cast node itself is
        // rewritten away (3 << 2 wraps to -4 in signed(4), but is 12 in
        // signed(9)). The pinned format on the shift carries that
        // information independently of the operand node.
        let mut t = SymTable::new();
        let f4 = Format::signed(4, 4);
        let f9 = Format::signed(9, 9);
        let x = t.fresh_input(f4);
        let c = t.intern(Op::Cast(x, f9, Quantization::Trn, Overflow::Wrap));
        assert_eq!(c, x, "the widening cast is eliminated");
        let s = t.intern(Op::Shl(c, 2, f9));
        let mut env = HashMap::new();
        let v = Fixed::from_raw(3, f4).unwrap();
        env.insert(0u32, v);
        let got = t.eval(&[s], &env)[0];
        let concrete = v.cast_with(f9, Quantization::Trn, Overflow::Wrap).shl(2);
        assert_eq!(got.raw(), concrete.raw());
        assert_eq!(got.to_i64(), 12);
        // The same shift pinned to the narrow format wraps: a distinct node.
        let narrow = t.intern(Op::Shl(x, 2, f4));
        assert_ne!(narrow, s);
        let wrapped = t.eval(&[narrow], &env)[0];
        assert_eq!(wrapped.to_i64(), v.shl(2).to_i64());
    }

    #[test]
    fn interval_tracks_additions() {
        let mut t = SymTable::new();
        let a = t.fresh_input(Format::signed(4, 4)); // [-8, 7]
        let b = t.fresh_input(Format::signed(4, 4));
        let s = t.intern(Op::Add(a, b));
        let iv = t.interval_of(s).unwrap();
        assert_eq!((iv.lo, iv.hi, iv.frac), (-16, 14, 0));
    }

    #[test]
    fn eval_matches_fixed_arithmetic() {
        let mut t = SymTable::new();
        let f = Format::signed(8, 4);
        let a = t.fresh_input(f);
        let b = t.fresh_input(f);
        let sum = t.intern(Op::Add(a, b));
        let prod = t.intern(Op::Mul(a, sum));
        let mut env = HashMap::new();
        let va = Fixed::from_raw(5, f).unwrap();
        let vb = Fixed::from_raw(-3, f).unwrap();
        env.insert(0, va);
        env.insert(1, vb);
        let got = t.eval(&[prod], &env);
        assert_eq!(got[0], va.exact_mul(&va.exact_add(&vb)));
    }

    #[test]
    fn shift_algebra_composes() {
        let mut t = SymTable::new();
        let f = Format::signed(12, 6);
        let a = t.fresh_input(f);
        let s1 = t.intern(Op::Shr(a, 2, f));
        let s2 = t.intern(Op::Shr(s1, 3, f));
        assert_eq!(s2, t.intern(Op::Shr(a, 5, f)));
        assert_eq!(t.intern(Op::Shl(a, 0, f)), a);
        // Shifts in *different* pinned formats must not compose.
        let g = Format::signed(20, 10);
        let o1 = t.intern(Op::Shr(a, 2, g));
        let o2 = t.intern(Op::Shr(o1, 3, f));
        assert_ne!(o2, t.intern(Op::Shr(a, 5, f)));
        assert_ne!(o2, t.intern(Op::Shr(a, 5, g)));
    }

    #[test]
    fn ite_normalizes_negated_condition() {
        let mut t = SymTable::new();
        let f = Format::signed(8, 4);
        let x = t.fresh_input(f);
        let y = t.fresh_input(f);
        let zero = t.constant(Fixed::from_int(0, f));
        let c = t.intern(Op::Cmp(CmpOp::Lt, x, zero));
        let nc = t.intern(Op::Not(c));
        let a = t.intern(Op::Ite(c, x, y));
        let b = t.intern(Op::Ite(nc, y, x));
        assert_eq!(a, b);
    }
}
