//! # hls-verify
//!
//! The flow's correctness backbone: *proves* — not just samples — that a
//! synthesized FSMD implements its untimed IR function.
//!
//! Three layers, used in order by [`verify_equiv`]:
//!
//! 1. **Symbolic proof** ([`equiv`]): both machines execute into one
//!    hash-consed, normalizing bit-vector expression DAG ([`sym`]);
//!    observables that intern to the same canonical node are proved for
//!    all inputs, and narrow residual obligations are decided by
//!    exhaustive bit-blast.
//! 2. **Coverage-guided differential fuzzing** ([`fuzz`]): for designs
//!    too wide to prove, deterministic seeded stimulus evolves under
//!    FSMD branch/state coverage, and any mismatch against the
//!    interpreter is **shrunk** to a minimal failing stimulus.
//! 3. **Integration** ([`explore_verified`], the `verify_equiv` CLI in
//!    `bench-harness`, and mutation self-checks in [`mutate`]) so
//!    design-space exploration and CI can gate on equivalence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod equiv;
pub mod fixtures;
pub mod fsmd_exec;
pub mod fuzz;
pub mod ir_exec;
pub mod mutate;
pub mod netlist;
pub mod pipeline;
pub mod proofcache;
pub mod state;
pub mod sym;

pub use equiv::{
    prove_equiv, prove_equiv_in, prove_equiv_with, IrContext, Obligation, ProofCex, ProofMethod,
    ProveOptions, ProveVerdict,
};
pub use fixtures::{
    load_counterexamples, save_counterexample, stimulus_from_json, stimulus_to_json, CexFixture,
};
pub use fuzz::{
    fuzz_equiv, fuzz_equiv_with, replay_stimulus, Coverage, FuzzCex, FuzzConfig, FuzzReport,
    SplitMix64, Stimulus,
};
pub use mutate::{mutate_fsmd, mutations_for, Mutation};
pub use netlist::{
    check_netlist_obligation, check_netlist_obligation_with, check_netlist_obligations,
    check_netlist_obligations_cached, check_netlist_obligations_keyed, exec_lowered,
    NetlistCrossCheck,
};
pub use pipeline::{
    explore_verified, explore_verified_serial, explore_verified_with, verify_equiv,
    verify_equiv_cached, verify_equiv_persist, verify_equiv_with, CachedEquivGate, EquivGate,
    ExploreProver, ProverStats, VerifyFinding, VerifyReport,
};
pub use proofcache::{
    fsmd_key, obligation_key, obligation_key_tagged, ProofCache, ProofCacheConfig, ProofCacheStats,
    DEFAULT_OPTIONS_TAG,
};
