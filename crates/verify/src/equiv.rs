//! The prover: symbolic IR↔FSMD equivalence with bit-blast fallback.
//!
//! Both machines are run over one shared [`SymTable`] from a common
//! symbolic start state (shared free inputs for parameters and `static`
//! state; the RTL's call-to-call-persistent locals modeled as unconstrained
//! "stale" values, the interpreter's per-call zeroing as zeros). Every
//! observable — each `out`/`inout` parameter element and every `static`
//! element — yields one proof obligation: the IR-side node must equal the
//! FSMD-side node for all inputs.
//!
//! Obligations discharge in two stages: **canonical** (the normalizing
//! hash-consed construction interned both sides to the same node) and
//! **exhaustive bit-blast** (when the obligation's input cone is at most
//! [`ProveOptions::max_blast_bits`] wide, enumerate every valuation and
//! compare concretely — a complete decision procedure that also yields
//! counterexamples). Anything wider stays [`ProveVerdict::Unknown`] and is
//! handed to the differential fuzzer.

use std::collections::HashMap;

use fixpt::Fixed;
use hls_ir::{Direction, VarKind};
use rtl::Fsmd;

use crate::fsmd_exec::{exec_fsmd, FsmdState};
use crate::ir_exec::{exec_function, SymEnv};
use crate::state::{index_format, SymSlot};
use crate::sym::{bool_format, Evaluator, SymId, SymTable};

/// Prover knobs.
#[derive(Debug, Clone)]
pub struct ProveOptions {
    /// Maximum total input-cone width (in bits) for the exhaustive
    /// bit-blast fallback. `2^max_blast_bits` concrete evaluations bound
    /// the worst case.
    pub max_blast_bits: u32,
}

impl Default for ProveOptions {
    fn default() -> ProveOptions {
        ProveOptions { max_blast_bits: 20 }
    }
}

/// How one obligation was discharged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofMethod {
    /// Both sides interned to the same canonical DAG node.
    Canonical,
    /// Exhaustively enumerated over the obligation's input cone.
    BitBlast {
        /// Number of input valuations checked.
        points: u64,
    },
}

/// One discharged proof obligation.
#[derive(Debug, Clone)]
pub struct Obligation {
    /// Human-readable observable name (`out`, `ffe_c[3]`, …).
    pub name: String,
    /// How it was proved.
    pub method: ProofMethod,
}

/// A concrete input valuation on which the two machines disagree.
#[derive(Debug, Clone)]
pub struct ProofCex {
    /// The observable that differs.
    pub observable: String,
    /// The (named) free-input valuation exhibiting the difference.
    pub inputs: Vec<(String, Fixed)>,
    /// Value computed by the untimed IR.
    pub ir_value: Fixed,
    /// Value computed by the FSMD.
    pub rtl_value: Fixed,
}

/// Outcome of [`prove_equiv`].
#[derive(Debug, Clone)]
pub enum ProveVerdict {
    /// Every observable is equal for *all* inputs and reachable states.
    Proved {
        /// The discharged obligations.
        obligations: Vec<Obligation>,
        /// Total interned DAG nodes (a size/sharing metric).
        sym_nodes: usize,
    },
    /// A concrete counterexample was found (bit-blast only — canonical
    /// disequality alone is never treated as a verdict).
    Disproved(ProofCex),
    /// Not decidable by this engine (wide cones or unsupported
    /// constructs); fall back to differential fuzzing.
    Unknown {
        /// What stopped the proof.
        reason: String,
        /// Obligations that *were* discharged before giving up.
        proved: usize,
        /// Names of the undischarged observables.
        unproved: Vec<String>,
    },
}

impl ProveVerdict {
    /// `true` for [`ProveVerdict::Proved`].
    pub fn is_proved(&self) -> bool {
        matches!(self, ProveVerdict::Proved { .. })
    }
}

/// Proves (or refutes, or gives up on) the equivalence of `fsmd` against
/// the untimed semantics of its own (transformed, staged) function —
/// i.e. that scheduling, binding, if-conversion and FSMD generation
/// preserved the program.
pub fn prove_equiv(fsmd: &Fsmd) -> ProveVerdict {
    prove_equiv_with(fsmd, &ProveOptions::default())
}

/// [`prove_equiv`] with explicit options.
pub fn prove_equiv_with(fsmd: &Fsmd, opts: &ProveOptions) -> ProveVerdict {
    prove_equiv_in(&IrContext::for_function(fsmd.function()), fsmd, opts)
}

/// The function-only half of a proof: the shared symbolic start state and
/// the IR side's complete symbolic execution, over a private [`SymTable`].
///
/// Everything here depends only on the FSMD's (transformed, staged)
/// function — not on the schedule, binding or clock — so architectures
/// that share a loop-transform prefix (every clock twin of a design-space
/// sweep, notably) can share one context: [`prove_equiv_in`] clones the
/// table and runs only the FSMD side on top. Roughly half of a proof's
/// wall time lives here.
pub struct IrContext {
    func: hls_ir::Function,
    t: SymTable,
    names: HashMap<u32, String>,
    ir_env: SymEnv,
    regs_init: Vec<Option<SymId>>,
    arrays_init: Vec<Option<Vec<SymId>>>,
    /// The IR side's failure, if it stepped outside the symbolic
    /// fragment; every proof from this context reports it.
    ir_error: Option<String>,
}

impl IrContext {
    /// Builds the start state and symbolically executes the IR side of
    /// `func` (an FSMD's function — already transformed and staged).
    pub fn for_function(func: &hls_ir::Function) -> IrContext {
        let func = func.clone();
        let mut t = SymTable::new();
        let mut names: HashMap<u32, String> = HashMap::new();
        let nvars = func.iter_vars().count();
        let mut ir_env: SymEnv = vec![None; nvars];
        let mut regs_init: Vec<Option<SymId>> = vec![None; nvars];
        let mut arrays_init: Vec<Option<Vec<SymId>>> = vec![None; nvars];

        // Build the common symbolic start state.
        for (id, v) in func.iter_vars() {
            let rtl_fmt = v.ty.format().unwrap_or_else(bool_format);
            let ir_zero_fmt = v.ty.format().unwrap_or_else(index_format);
            let shared = matches!(v.kind, VarKind::Static)
                || (v.kind == VarKind::Param && func.param_direction(id) != Direction::Out);
            if shared {
                // Inputs and persistent state: one arbitrary value seen by
                // *both* machines (declared-format, i.e. post-coercion).
                match v.len {
                    None => {
                        let s = fresh_named(&mut t, &mut names, v.name.clone(), rtl_fmt);
                        ir_env[id.index()] = Some(SymSlot::Scalar(s));
                        regs_init[id.index()] = Some(s);
                    }
                    Some(n) => {
                        let elems: Vec<SymId> = (0..n)
                            .map(|i| {
                                fresh_named(&mut t, &mut names, format!("{}[{i}]", v.name), rtl_fmt)
                            })
                            .collect();
                        ir_env[id.index()] = Some(SymSlot::Array(elems.clone()));
                        arrays_init[id.index()] = Some(elems);
                    }
                }
            } else {
                // IR side: out-params, locals and counters are zeroed per
                // call by the interpreter.
                let zero = t.constant(Fixed::from_int(0, ir_zero_fmt));
                ir_env[id.index()] = Some(match v.len {
                    None => SymSlot::Scalar(zero),
                    Some(n) => SymSlot::Array(vec![zero; n]),
                });
                // RTL side: those registers persist across calls, so model
                // them as arbitrary *unshared* stale values. If a stale value
                // ever reaches an observable, the design genuinely disagrees
                // with the per-call interpreter on some call sequence.
                match v.len {
                    None => {
                        let s =
                            fresh_named(&mut t, &mut names, format!("stale {}", v.name), rtl_fmt);
                        regs_init[id.index()] = Some(s);
                    }
                    Some(n) => {
                        let elems: Vec<SymId> = (0..n)
                            .map(|i| {
                                fresh_named(
                                    &mut t,
                                    &mut names,
                                    format!("stale {}[{i}]", v.name),
                                    rtl_fmt,
                                )
                            })
                            .collect();
                        arrays_init[id.index()] = Some(elems);
                    }
                }
            }
        }

        // Run the IR machine once; every proof over this context reuses
        // its canonical nodes.
        let ir_error = exec_function(&mut t, &func, &mut ir_env)
            .err()
            .map(|e| format!("IR side: {e}"));
        IrContext {
            func,
            t,
            names,
            ir_env,
            regs_init,
            arrays_init,
            ir_error,
        }
    }

    /// The function this context executed.
    pub fn function(&self) -> &hls_ir::Function {
        &self.func
    }
}

/// [`prove_equiv_with`] on a prebuilt [`IrContext`]: clones the context's
/// symbolic table and runs only the FSMD side. `fsmd.function()` must be
/// the function the context was built for (same transform prefix and
/// staging) — callers sweeping a design space key their context cache
/// accordingly.
pub fn prove_equiv_in(ctx: &IrContext, fsmd: &Fsmd, opts: &ProveOptions) -> ProveVerdict {
    let func = &ctx.func;
    if let Some(e) = &ctx.ir_error {
        return unknown_all(func, e.clone());
    }
    let mut t = ctx.t.clone();
    let names = &ctx.names;
    let ir_env = &ctx.ir_env;
    let mut rtl = FsmdState::new(fsmd);
    rtl.regs.clone_from(&ctx.regs_init);
    rtl.arrays.clone_from(&ctx.arrays_init);

    if let Err(e) = exec_fsmd(&mut t, fsmd, &mut rtl) {
        return unknown_all(func, format!("FSMD side: {e}"));
    }

    // Collect obligations: every out/inout parameter and static element.
    let mut obligations: Vec<(String, SymId, SymId)> = Vec::new();
    for (id, v) in func.iter_vars() {
        let observable = match v.kind {
            VarKind::Param => func.param_direction(id) != Direction::In,
            VarKind::Static => true,
            _ => false,
        };
        if !observable {
            continue;
        }
        match (&ir_env[id.index()], v.len) {
            (Some(SymSlot::Scalar(a)), None) => {
                let b = rtl.regs[id.index()].expect("register state");
                obligations.push((v.name.clone(), *a, b));
            }
            (Some(SymSlot::Array(a)), Some(_)) => {
                let b = rtl.arrays[id.index()].clone().expect("array state");
                for (i, (&x, y)) in a.iter().zip(b).enumerate() {
                    obligations.push((format!("{}[{i}]", v.name), x, y));
                }
            }
            _ => return unknown_all(func, format!("misshapen slot for {}", v.name)),
        }
    }

    // Stage 1: canonical equality. Stage 2: exhaustive bit-blast.
    let mut proved: Vec<Obligation> = Vec::new();
    let mut unproved: Vec<String> = Vec::new();
    let mut ev = Evaluator::new();
    for (name, a, b) in obligations {
        if a == b {
            proved.push(Obligation {
                name,
                method: ProofMethod::Canonical,
            });
            continue;
        }
        let support = t.support(&[a, b]);
        let bits: u32 = support.iter().map(|&(_, f, _)| f.width()).sum();
        if bits > opts.max_blast_bits {
            unproved.push(format!("{name} (cone {bits} bits)"));
            continue;
        }
        match bit_blast(&t, &mut ev, &name, a, b, &support, names) {
            Ok(points) => proved.push(Obligation {
                name,
                method: ProofMethod::BitBlast { points },
            }),
            Err(cex) => return ProveVerdict::Disproved(cex),
        }
    }

    if unproved.is_empty() {
        ProveVerdict::Proved {
            obligations: proved,
            sym_nodes: t.len(),
        }
    } else {
        ProveVerdict::Unknown {
            reason: "input cones too wide for exhaustive bit-blast".into(),
            proved: proved.len(),
            unproved,
        }
    }
}

fn fresh_named(
    t: &mut SymTable,
    names: &mut HashMap<u32, String>,
    name: String,
    fmt: fixpt::Format,
) -> SymId {
    let id = t.fresh_input(fmt);
    let (n, _) = t.input_info(id).expect("fresh input");
    names.insert(n, name);
    id
}

fn unknown_all(func: &hls_ir::Function, reason: String) -> ProveVerdict {
    let unproved = func
        .params
        .iter()
        .map(|&p| func.var(p).name.clone())
        .collect();
    ProveVerdict::Unknown {
        reason,
        proved: 0,
        unproved,
    }
}

/// Exhaustively enumerates the joint input cone of `(a, b)`; `Ok(points)`
/// if they agree everywhere, `Err` with the first disagreeing valuation.
pub(crate) fn bit_blast(
    t: &SymTable,
    ev: &mut Evaluator,
    observable: &str,
    a: SymId,
    b: SymId,
    support: &[(u32, fixpt::Format, SymId)],
    names: &HashMap<u32, String>,
) -> Result<u64, ProofCex> {
    let mut raws: Vec<i128> = support.iter().map(|&(_, f, _)| f.min_raw()).collect();
    let mut env: HashMap<u32, Fixed> = HashMap::new();
    let mut points = 0u64;
    loop {
        for (i, &(n, f, _)) in support.iter().enumerate() {
            env.insert(n, Fixed::from_raw(raws[i], f).expect("raw in range"));
        }
        let vals = ev.eval(t, &[a, b], &env);
        points += 1;
        if vals[0] != vals[1] {
            let inputs = support
                .iter()
                .map(|&(n, _, _)| {
                    let name = names.get(&n).cloned().unwrap_or_else(|| format!("#{n}"));
                    (name, env[&n])
                })
                .collect();
            return Err(ProofCex {
                observable: observable.to_string(),
                inputs,
                ir_value: vals[0],
                rtl_value: vals[1],
            });
        }
        // Odometer step.
        let mut i = 0;
        loop {
            if i == support.len() {
                return Ok(points);
            }
            let f = support[i].1;
            if raws[i] < f.max_raw() {
                raws[i] += 1;
                break;
            }
            raws[i] = f.min_raw();
            i += 1;
        }
    }
}
