//! Coverage-guided differential fuzzing with counterexample shrinking.
//!
//! For designs whose input cones are too wide to prove, the fuzzer drives
//! the untimed interpreter and the cycle-accurate FSMD simulator with the
//! same stimulus and compares every observable after every call —
//! out/inout parameters *and* the persistent `static` state.
//!
//! Stimulus evolves under **controller coverage**: an instrumented mirror
//! of the FSMD walk records which `(segment, state)` pairs execute and
//! which direction every datapath branch point (comparison, mux,
//! write-enable) takes; mutants that light up new coverage join the
//! corpus. Seeding is fully deterministic ([`FuzzConfig::seed`]), so a
//! failure reproduces bit-for-bit.
//!
//! Any mismatch is **delta-debugged** to a minimal stimulus: calls are
//! dropped, elements zeroed, and magnitudes halved until the failure is
//! 1-minimal under those operators.

use std::collections::{BTreeMap, BTreeSet};

use fixpt::Fixed;
use hls_core::dfg::{Dfg, NodeId, NodeKind};
use hls_ir::{BinOp, Direction, Function, Interpreter, Slot, UnOp, VarId, VarKind};
use rtl::{Control, Fsmd, RtlSimulator};

/// Deterministic SplitMix64 — tiny, seedable, and dependency-free.
///
/// Public so downstream verification harnesses (e.g. the stream-system
/// latency-insensitivity checker in `hls-stream`) draw their randomized
/// stimulus from the same seeded generator the differential fuzzer uses:
/// every reported failure replays from nothing but a `u64` seed.
#[derive(Debug, Clone)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Advances the state and returns the next 64 pseudo-random bits.
    ///
    /// Not an `Iterator`: the stream is infinite and `None` is
    /// unrepresentable, so the `next` name stays.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// A value uniform in `0..n` (`n` clamped to ≥ 1).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Fuzzer knobs.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// RNG seed; identical seeds reproduce identical campaigns.
    pub seed: u64,
    /// Mutation iterations after the deterministic seed corpus.
    pub iterations: usize,
    /// Maximum calls (stimulus symbols) per test case.
    pub max_calls: usize,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            seed: 0x7a9_2005,
            iterations: 200,
            max_calls: 4,
        }
    }
}

/// One test case: the argument list for each successive call.
pub type Stimulus = Vec<Vec<(VarId, Slot)>>;

/// Controller/branch coverage accumulated over a campaign.
#[derive(Debug, Clone, Default)]
pub struct Coverage {
    /// `(segment, state)` controller pairs executed.
    states: BTreeSet<(usize, u32)>,
    /// `(segment, node, direction)` branch outcomes observed.
    branches: BTreeSet<(usize, u32, bool)>,
}

impl Coverage {
    /// Number of distinct controller states executed.
    pub fn states(&self) -> usize {
        self.states.len()
    }

    /// Number of distinct branch-direction outcomes observed.
    pub fn branch_directions(&self) -> usize {
        self.branches.len()
    }

    fn merge_new(&mut self, other: &Coverage) -> bool {
        let mut grew = false;
        for &s in &other.states {
            grew |= self.states.insert(s);
        }
        for &b in &other.branches {
            grew |= self.branches.insert(b);
        }
        grew
    }
}

/// A mismatch found by the fuzzer, already shrunk.
#[derive(Debug, Clone)]
pub struct FuzzCex {
    /// The minimal failing stimulus.
    pub stimulus: Stimulus,
    /// Which call of the stimulus first diverges (0-based).
    pub failing_call: usize,
    /// The observable that differs and the two values, rendered.
    pub message: String,
}

/// Campaign summary.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Calls executed across the whole campaign (both machines).
    pub calls: u64,
    /// Final coverage.
    pub coverage: Coverage,
    /// Corpus size at the end.
    pub corpus: usize,
    /// The shrunk counterexample, if the machines ever disagreed.
    pub counterexample: Option<FuzzCex>,
}

/// Runs a deterministic coverage-guided differential campaign with the
/// default configuration.
pub fn fuzz_equiv(fsmd: &Fsmd) -> FuzzReport {
    fuzz_equiv_with(fsmd, &FuzzConfig::default())
}

/// [`fuzz_equiv`] with explicit configuration.
pub fn fuzz_equiv_with(fsmd: &Fsmd, cfg: &FuzzConfig) -> FuzzReport {
    let func = fsmd.function().clone();
    let mut rng = SplitMix64(cfg.seed);
    let mut cov = Coverage::default();
    let mut corpus: Vec<Stimulus> = Vec::new();
    let mut calls = 0u64;

    // Deterministic seed corpus: zeros, extremes, and small randoms, at
    // one and at max_calls depth.
    let mut seeds: Vec<Stimulus> = vec![
        vec![zero_call(&func)],
        vec![zero_call(&func); cfg.max_calls.max(1)],
        vec![extreme_call(&func, false)],
        vec![extreme_call(&func, true), extreme_call(&func, false)],
        // Full-depth bursts: designs with static state (delay lines,
        // adaptive taps) only expose deep bugs after the state has
        // filled, which no short stimulus can reach. One alternating
        // extremes, one random (extremes saturate; random values keep
        // intermediate arithmetic away from the clamp rails where
        // differences get masked).
        (0..cfg.max_calls.max(1))
            .map(|i| extreme_call(&func, i % 2 == 0))
            .collect(),
        (0..cfg.max_calls.max(1))
            .map(|_| random_call(&func, &mut rng))
            .collect(),
    ];
    for _ in 0..4 {
        let n = 1 + rng.below(cfg.max_calls.max(1) as u64) as usize;
        seeds.push((0..n).map(|_| random_call(&func, &mut rng)).collect());
    }

    let campaign = |stim: &Stimulus,
                    cov: &mut Coverage,
                    corpus: &mut Vec<Stimulus>,
                    calls: &mut u64|
     -> Option<FuzzCex> {
        *calls += stim.len() as u64;
        if let Some((at, msg)) = run_diff(fsmd, stim) {
            let min = shrink(fsmd, stim.clone());
            let (at, msg) = run_diff(fsmd, &min).unwrap_or((at, msg));
            return Some(FuzzCex {
                stimulus: min,
                failing_call: at,
                message: msg,
            });
        }
        let c = run_coverage(fsmd, stim);
        if cov.merge_new(&c) {
            corpus.push(stim.clone());
        }
        None
    };

    for stim in &seeds {
        if let Some(cex) = campaign(stim, &mut cov, &mut corpus, &mut calls) {
            return FuzzReport {
                calls,
                coverage: cov,
                corpus: corpus.len(),
                counterexample: Some(cex),
            };
        }
    }
    if corpus.is_empty() {
        corpus.push(vec![zero_call(&func)]);
    }

    for _ in 0..cfg.iterations {
        let base = corpus[rng.below(corpus.len() as u64) as usize].clone();
        let stim = mutate_stimulus(&func, base, cfg.max_calls, &mut rng);
        if let Some(cex) = campaign(&stim, &mut cov, &mut corpus, &mut calls) {
            return FuzzReport {
                calls,
                coverage: cov,
                corpus: corpus.len(),
                counterexample: Some(cex),
            };
        }
    }

    FuzzReport {
        calls,
        coverage: cov,
        corpus: corpus.len(),
        counterexample: None,
    }
}

fn input_params(func: &Function) -> Vec<VarId> {
    func.params
        .iter()
        .copied()
        .filter(|&p| func.param_direction(p) != Direction::Out)
        .collect()
}

fn slot_of<F: FnMut(fixpt::Format) -> Fixed>(func: &Function, p: VarId, mut gen: F) -> Slot {
    let v = func.var(p);
    let fmt =
        v.ty.format()
            .unwrap_or_else(|| fixpt::Format::integer(1, fixpt::Signedness::Unsigned));
    match v.len {
        Some(n) => Slot::Array((0..n).map(|_| gen(fmt)).collect()),
        None => Slot::Scalar(gen(fmt)),
    }
}

fn zero_call(func: &Function) -> Vec<(VarId, Slot)> {
    input_params(func)
        .into_iter()
        .map(|p| (p, slot_of(func, p, |f| Fixed::from_int(0, f))))
        .collect()
}

fn extreme_call(func: &Function, low: bool) -> Vec<(VarId, Slot)> {
    input_params(func)
        .into_iter()
        .map(|p| {
            (
                p,
                slot_of(func, p, |f| {
                    let raw = if low { f.min_raw() } else { f.max_raw() };
                    Fixed::from_raw(raw, f).expect("raw in range")
                }),
            )
        })
        .collect()
}

pub(crate) fn random_fixed(f: fixpt::Format, rng: &mut SplitMix64) -> Fixed {
    let span = (f.max_raw() - f.min_raw() + 1) as u64;
    let raw = f.min_raw() + rng.below(span) as i128;
    Fixed::from_raw(raw, f).expect("raw in range")
}

fn random_call(func: &Function, rng: &mut SplitMix64) -> Vec<(VarId, Slot)> {
    input_params(func)
        .into_iter()
        .map(|p| (p, slot_of(func, p, |f| random_fixed(f, rng))))
        .collect()
}

fn mutate_stimulus(
    func: &Function,
    mut stim: Stimulus,
    max_calls: usize,
    rng: &mut SplitMix64,
) -> Stimulus {
    match rng.below(5) {
        0 if stim.len() < max_calls => {
            stim.push(random_call(func, rng));
        }
        1 if stim.len() > 1 => {
            let i = rng.below(stim.len() as u64) as usize;
            stim.remove(i);
        }
        _ => {
            // Point mutation of one element of one call.
            if stim.is_empty() {
                stim.push(random_call(func, rng));
            }
            let ci = rng.below(stim.len() as u64) as usize;
            let call = &mut stim[ci];
            if call.is_empty() {
                return stim;
            }
            let pi = rng.below(call.len() as u64) as usize;
            let kind = rng.below(3);
            let slot = &mut call[pi].1;
            let mutate_one = |f: &mut Fixed, rng: &mut SplitMix64| {
                let fmt = f.format();
                *f = match kind {
                    0 => random_fixed(fmt, rng),
                    1 => Fixed::from_int(0, fmt),
                    _ => {
                        let raw = (f.raw() + 1).min(fmt.max_raw());
                        Fixed::from_raw(raw, fmt).expect("raw in range")
                    }
                };
            };
            match slot {
                Slot::Scalar(f) => mutate_one(f, rng),
                Slot::Array(a) => {
                    if !a.is_empty() {
                        let ei = rng.below(a.len() as u64) as usize;
                        mutate_one(&mut a[ei], rng);
                    }
                }
            }
        }
    }
    stim
}

/// Replays a stimulus through the differential oracle: both machines run
/// from reset, and the result is `Some((call, message))` at the first
/// diverging call, `None` when the machines agree on every observable.
///
/// This is the exact oracle the fuzzer and shrinker use internally; it is
/// public so persisted counterexamples ([`crate::fixtures`]) can be
/// replayed as regression checks.
pub fn replay_stimulus(fsmd: &Fsmd, stim: &Stimulus) -> Option<(usize, String)> {
    run_diff(fsmd, stim)
}

/// Runs the stimulus on both machines from reset; `Some((call, message))`
/// at the first diverging call.
fn run_diff(fsmd: &Fsmd, stim: &Stimulus) -> Option<(usize, String)> {
    let func = fsmd.function().clone();
    let mut interp = Interpreter::new(func.clone());
    let mut sim = RtlSimulator::new(fsmd.clone());
    for (ci, call) in stim.iter().enumerate() {
        let want: Result<BTreeMap<VarId, Slot>, _> = interp.call(call);
        let got = sim.run_call(call);
        let (want, got) = match (want, got) {
            (Ok(w), Ok(g)) => (w, g),
            (Err(e), Ok(_)) => return Some((ci, format!("interpreter error: {e:?}"))),
            (Ok(_), Err(e)) => return Some((ci, format!("simulator error: {e:?}"))),
            (Err(_), Err(_)) => continue,
        };
        // Compare observable parameters…
        for &p in &func.params {
            if func.param_direction(p) == Direction::In {
                continue;
            }
            if want[&p] != got[&p] {
                return Some((
                    ci,
                    format!(
                        "call {ci}: {} differs: interpreter {:?} vs FSMD {:?}",
                        func.var(p).name,
                        want[&p],
                        got[&p]
                    ),
                ));
            }
        }
        // …and the persistent static state.
        for (id, v) in func.iter_vars() {
            if v.kind != VarKind::Static {
                continue;
            }
            let w = interp.static_slot(id).cloned();
            let g = match v.len {
                Some(_) => sim.array(id).map(|a| Slot::Array(a.to_vec())),
                None => sim.reg(id).map(Slot::Scalar),
            };
            if w != g {
                return Some((
                    ci,
                    format!(
                        "call {ci}: static {} differs: interpreter {w:?} vs FSMD {g:?}",
                        v.name
                    ),
                ));
            }
        }
    }
    None
}

/// Delta-debugs a failing stimulus to a minimal one: drop calls, zero
/// elements, then halve magnitudes, to a fixpoint.
fn shrink(fsmd: &Fsmd, mut stim: Stimulus) -> Stimulus {
    let fails = |s: &Stimulus| run_diff(fsmd, s).is_some();
    debug_assert!(fails(&stim));
    loop {
        let mut progressed = false;
        // Drop whole calls.
        let mut i = 0;
        while stim.len() > 1 && i < stim.len() {
            let mut cand = stim.clone();
            cand.remove(i);
            if fails(&cand) {
                stim = cand;
                progressed = true;
            } else {
                i += 1;
            }
        }
        // Zero, then halve, each element.
        for ci in 0..stim.len() {
            for pi in 0..stim[ci].len() {
                let n = match &stim[ci][pi].1 {
                    Slot::Scalar(_) => 1,
                    Slot::Array(a) => a.len(),
                };
                for ei in 0..n {
                    let cur = element(&stim[ci][pi].1, ei);
                    if cur.raw() == 0 {
                        continue;
                    }
                    let fmt = cur.format();
                    let zero = Fixed::from_int(0, fmt);
                    let mut cand = stim.clone();
                    set_element(&mut cand[ci][pi].1, ei, zero);
                    if fails(&cand) {
                        stim = cand;
                        progressed = true;
                        continue;
                    }
                    let halved = Fixed::from_raw(cur.raw() / 2, fmt).expect("raw in range");
                    let mut cand = stim.clone();
                    set_element(&mut cand[ci][pi].1, ei, halved);
                    if fails(&cand) {
                        stim = cand;
                        progressed = true;
                    }
                }
            }
        }
        if !progressed {
            return stim;
        }
    }
}

fn element(s: &Slot, i: usize) -> Fixed {
    match s {
        Slot::Scalar(f) => *f,
        Slot::Array(a) => a[i],
    }
}

fn set_element(s: &mut Slot, i: usize, v: Fixed) {
    match s {
        Slot::Scalar(f) => *f = v,
        Slot::Array(a) => a[i] = v,
    }
}

/// A concrete mirror of the FSMD walk instrumented for controller-state
/// and branch-direction coverage. Used only to *guide* the fuzzer; the
/// pass/fail oracle is always the real simulator vs the interpreter.
fn run_coverage(fsmd: &Fsmd, stim: &Stimulus) -> Coverage {
    let mut cov = Coverage::default();
    let func = fsmd.function().clone();
    let bool_fmt = fixpt::Format::integer(1, fixpt::Signedness::Unsigned);
    let mut regs: Vec<Fixed> = Vec::new();
    let mut arrays: Vec<Vec<Fixed>> = Vec::new();
    for (_, v) in func.iter_vars() {
        let fmt = v.ty.format().unwrap_or(bool_fmt);
        regs.push(Fixed::from_int(0, fmt));
        arrays.push(vec![Fixed::from_int(0, fmt); v.len.unwrap_or(0)]);
    }
    for call in stim {
        // Sample inputs.
        for &p in &func.params {
            let v = func.var(p);
            let fmt = v.ty.format().unwrap_or(bool_fmt);
            if let Some((_, s)) = call.iter().find(|(id, _)| *id == p) {
                match s {
                    Slot::Scalar(f) => regs[p.index()] = f.cast(fmt),
                    Slot::Array(a) => arrays[p.index()] = a.iter().map(|f| f.cast(fmt)).collect(),
                }
            }
        }
        for (si, ctl) in fsmd.control.iter().enumerate() {
            let dfg = fsmd.lowered.segments[si].dfg();
            let sched = &fsmd.schedules[si];
            match ctl {
                Control::Straight { depth } => {
                    cov_body(si, dfg, sched, *depth, &mut regs, &mut arrays, &mut cov);
                }
                Control::Loop {
                    depth,
                    trip,
                    counter,
                    start,
                    step,
                    ..
                } => {
                    let cfmt = func.var(*counter).ty.format().unwrap_or(bool_fmt);
                    regs[counter.index()] = Fixed::from_int(*start, cfmt);
                    for _ in 0..*trip {
                        cov_body(si, dfg, sched, *depth, &mut regs, &mut arrays, &mut cov);
                        let k = regs[counter.index()].to_i64();
                        regs[counter.index()] = Fixed::from_int(k + *step, cfmt);
                    }
                }
            }
        }
    }
    cov
}

fn cov_body(
    si: usize,
    dfg: &Dfg,
    sched: &hls_core::Schedule,
    depth: u32,
    regs: &mut [Fixed],
    arrays: &mut [Vec<Fixed>],
    cov: &mut Coverage,
) {
    let bool_fixed = |b: bool| {
        Fixed::from_int(
            b as i64,
            fixpt::Format::integer(1, fixpt::Signedness::Unsigned),
        )
    };
    let mut values: Vec<Option<Fixed>> = vec![None; dfg.len()];
    for cycle in 0..depth.max(1) {
        cov.states.insert((si, cycle));
        for id in sched.nodes_in_cycle(cycle) {
            let node = dfg.node(id);
            let val = |p: NodeId| values[p.index()].expect("predecessor evaluated");
            let mut branch = |dir: bool| {
                cov.branches.insert((si, id.index() as u32, dir));
            };
            let v = match &node.kind {
                NodeKind::Const(c) => *c,
                NodeKind::VarRead(v) => regs[v.index()],
                NodeKind::VarWrite(v) => {
                    let x = val(node.preds[0]).cast(node.format);
                    regs[v.index()] = x;
                    x
                }
                NodeKind::Bin(op) => {
                    let a = val(node.preds[0]);
                    let b = val(node.preds[1]);
                    match op {
                        BinOp::Add => a.exact_add(&b),
                        BinOp::Sub => a.exact_sub(&b),
                        BinOp::Mul => a.exact_mul(&b),
                        BinOp::Shl => a.shl(b.to_i64().max(0) as u32),
                        BinOp::Shr => a.shr(b.to_i64().max(0) as u32),
                        BinOp::And => {
                            let r = !a.is_zero() && !b.is_zero();
                            branch(r);
                            bool_fixed(r)
                        }
                        BinOp::Or => {
                            let r = !a.is_zero() || !b.is_zero();
                            branch(r);
                            bool_fixed(r)
                        }
                    }
                }
                NodeKind::MulPow2 => val(node.preds[0]).exact_mul(&val(node.preds[1])),
                NodeKind::Un(op) => {
                    let a = val(node.preds[0]);
                    match op {
                        UnOp::Neg => a.negate(),
                        UnOp::Signum => {
                            Fixed::from_int(a.signum() as i64, fixpt::Format::signed(2, 2))
                        }
                        UnOp::Not => bool_fixed(a.is_zero()),
                    }
                }
                NodeKind::Cmp(op) => {
                    let r = op.eval(val(node.preds[0]).cmp(&val(node.preds[1])));
                    branch(r);
                    bool_fixed(r)
                }
                NodeKind::Mux | NodeKind::EnableMux => {
                    let c = !val(node.preds[0]).is_zero();
                    branch(c);
                    let arm = if c {
                        val(node.preds[1])
                    } else {
                        val(node.preds[2])
                    };
                    arm.cast(node.format)
                }
                NodeKind::Cast(q, o) => val(node.preds[0]).cast_with(node.format, *q, *o),
                NodeKind::Load(arr) => {
                    let a = &arrays[arr.index()];
                    let idx = val(node.preds[0]).to_i64().clamp(0, a.len() as i64 - 1);
                    a[idx as usize]
                }
                NodeKind::Store(arr) | NodeKind::StoreCond(arr) => {
                    let enabled = match node.kind {
                        NodeKind::StoreCond(_) => {
                            let e = !val(node.preds[2]).is_zero();
                            branch(e);
                            e
                        }
                        _ => true,
                    };
                    let v = val(node.preds[1]);
                    if enabled {
                        let a = &mut arrays[arr.index()];
                        let idx = val(node.preds[0]).to_i64();
                        if idx >= 0 && (idx as usize) < a.len() {
                            a[idx as usize] = v;
                        }
                    }
                    v
                }
            };
            values[id.index()] = Some(v);
        }
    }
}
