//! Persisted counterexample fixtures: fuzzer-shrunk stimuli saved to disk
//! and replayed as regression checks.
//!
//! When [`crate::verify_equiv`] falls back to fuzzing and the fuzzer finds
//! (and shrinks) a mismatch, the minimal stimulus is the most valuable
//! artifact of the whole run — it reproduces the bug in microseconds,
//! forever. [`save_counterexample`] writes it in the same content-addressed
//! directory layout the `hls-serve` artifact store uses
//! (`objects/<2-hex-prefix>/<digest>.json`, written atomically via a temp
//! file + rename), and [`load_counterexamples`] reads every fixture back
//! for replay through [`crate::fuzz::replay_stimulus`].
//!
//! A fixture is self-describing JSON: every [`Fixed`] travels as its raw
//! mantissa (a string — mantissas exceed `f64` precision) plus its full
//! format, so replay is bit-exact across processes.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use fixpt::{Fixed, Format, Signedness};
use hls_ir::{json::stable_digest, Json, Slot, VarId};

use crate::fuzz::{FuzzCex, Stimulus};

/// Schema tag written into every fixture (bump on layout changes).
pub const CEX_SCHEMA: &str = "hls-verify-cex/v1";

/// A counterexample fixture loaded from disk.
#[derive(Debug, Clone)]
pub struct CexFixture {
    /// Name of the design (FSMD module name) the stimulus was shrunk on.
    pub design: String,
    /// Which call of the stimulus first diverged when it was recorded.
    pub failing_call: usize,
    /// The recorded mismatch description.
    pub message: String,
    /// The minimal failing stimulus.
    pub stimulus: Stimulus,
    /// Content digest (the fixture's on-disk identity).
    pub digest: String,
}

fn fixed_to_json(x: &Fixed) -> Json {
    let f = x.format();
    Json::obj(vec![
        ("raw", Json::str(x.raw().to_string())),
        ("width", Json::count(f.width() as u64)),
        ("int_bits", Json::Num(f.int_bits() as f64)),
        ("signed", Json::Bool(f.is_signed())),
    ])
}

fn fixed_from_json(v: &Json) -> Result<Fixed, String> {
    let raw: i128 = v
        .get("raw")
        .and_then(Json::as_str)
        .ok_or("fixture: missing raw")?
        .parse()
        .map_err(|e| format!("fixture: bad raw mantissa: {e}"))?;
    let width = v
        .get("width")
        .and_then(Json::as_u64)
        .ok_or("fixture: missing width")? as u32;
    let int_bits = v
        .get("int_bits")
        .and_then(Json::as_i64)
        .ok_or("fixture: missing int_bits")? as i32;
    let signedness = if v
        .get("signed")
        .and_then(Json::as_bool)
        .ok_or("fixture: missing signed")?
    {
        Signedness::Signed
    } else {
        Signedness::Unsigned
    };
    let format = Format::new(width, int_bits, signedness)
        .map_err(|e| format!("fixture: bad format: {e:?}"))?;
    Fixed::from_raw(raw, format).map_err(|_| "fixture: raw out of format range".to_string())
}

fn slot_to_json(slot: &Slot) -> Json {
    match slot {
        Slot::Scalar(x) => Json::obj(vec![("scalar", fixed_to_json(x))]),
        Slot::Array(xs) => Json::obj(vec![(
            "array",
            Json::Arr(xs.iter().map(fixed_to_json).collect()),
        )]),
    }
}

fn slot_from_json(v: &Json) -> Result<Slot, String> {
    if let Some(x) = v.get("scalar") {
        return Ok(Slot::Scalar(fixed_from_json(x)?));
    }
    if let Some(xs) = v.get("array").and_then(Json::as_arr) {
        return Ok(Slot::Array(
            xs.iter().map(fixed_from_json).collect::<Result<_, _>>()?,
        ));
    }
    Err("fixture: slot is neither scalar nor array".to_string())
}

/// Serializes a stimulus (shared with `hls-serve` response envelopes).
pub fn stimulus_to_json(stim: &Stimulus) -> Json {
    Json::Arr(
        stim.iter()
            .map(|call| {
                Json::Arr(
                    call.iter()
                        .map(|(var, slot)| {
                            Json::obj(vec![
                                ("var", Json::size(var.index())),
                                ("slot", slot_to_json(slot)),
                            ])
                        })
                        .collect(),
                )
            })
            .collect(),
    )
}

/// Deserializes a stimulus written by [`stimulus_to_json`].
pub fn stimulus_from_json(v: &Json) -> Result<Stimulus, String> {
    v.as_arr()
        .ok_or("fixture: stimulus is not an array")?
        .iter()
        .map(|call| {
            call.as_arr()
                .ok_or("fixture: call is not an array")?
                .iter()
                .map(|binding| {
                    let var = binding
                        .get("var")
                        .and_then(Json::as_u64)
                        .ok_or("fixture: missing var")?;
                    let slot = slot_from_json(binding.get("slot").ok_or("fixture: missing slot")?)?;
                    Ok((VarId::from_raw(var as u32), slot))
                })
                .collect::<Result<Vec<_>, String>>()
        })
        .collect()
}

fn fixture_body(design: &str, cex: &FuzzCex) -> Json {
    Json::obj(vec![
        ("schema", Json::str(CEX_SCHEMA)),
        ("design", Json::str(design)),
        ("failing_call", Json::size(cex.failing_call)),
        ("message", Json::str(cex.message.clone())),
        ("stimulus", stimulus_to_json(&cex.stimulus)),
    ])
}

/// Persists a shrunk counterexample under `root` in the content-addressed
/// store layout, returning the fixture's digest. Writing is atomic (temp
/// file in `root/tmp`, then rename), so concurrent writers and readers
/// never observe a torn fixture; saving the same counterexample twice is
/// idempotent.
pub fn save_counterexample(root: &Path, design: &str, cex: &FuzzCex) -> io::Result<String> {
    let text = fixture_body(design, cex).write();
    let digest = stable_digest(text.as_bytes());
    let dir = root.join("objects").join(&digest[..2]);
    fs::create_dir_all(&dir)?;
    let tmp_dir = root.join("tmp");
    fs::create_dir_all(&tmp_dir)?;
    let final_path = dir.join(format!("{digest}.json"));
    if final_path.exists() {
        return Ok(digest);
    }
    let tmp_path = tmp_dir.join(format!("{digest}.{}.tmp", std::process::id()));
    fs::write(&tmp_path, &text)?;
    fs::rename(&tmp_path, &final_path)?;
    Ok(digest)
}

/// Loads every fixture under `root`, skipping unreadable or corrupt files
/// (a regression suite should replay what it can, not die on one bad
/// entry). Results are sorted by digest for deterministic replay order.
pub fn load_counterexamples(root: &Path) -> Vec<CexFixture> {
    let mut out = Vec::new();
    let objects = root.join("objects");
    let mut files: Vec<PathBuf> = Vec::new();
    if let Ok(shards) = fs::read_dir(&objects) {
        for shard in shards.flatten() {
            if let Ok(entries) = fs::read_dir(shard.path()) {
                files.extend(entries.flatten().map(|e| e.path()));
            }
        }
    }
    files.sort();
    for path in files {
        let Ok(text) = fs::read_to_string(&path) else {
            continue;
        };
        let Some(fixture) = parse_fixture(&text) else {
            continue;
        };
        out.push(fixture);
    }
    out
}

fn parse_fixture(text: &str) -> Option<CexFixture> {
    let v = Json::parse(text).ok()?;
    if v.get("schema")?.as_str()? != CEX_SCHEMA {
        return None;
    }
    Some(CexFixture {
        design: v.get("design")?.as_str()?.to_string(),
        failing_call: v.get("failing_call")?.as_u64()? as usize,
        message: v.get("message")?.as_str()?.to_string(),
        stimulus: stimulus_from_json(v.get("stimulus")?).ok()?,
        digest: stable_digest(text.as_bytes()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cex() -> FuzzCex {
        let fmt = Format::signed(10, 2);
        FuzzCex {
            stimulus: vec![vec![
                (
                    VarId::from_raw(0),
                    Slot::Array(vec![Fixed::from_raw(-137, fmt).unwrap(); 2]),
                ),
                (
                    VarId::from_raw(1),
                    Slot::Scalar(Fixed::from_raw(255, fmt).unwrap()),
                ),
            ]],
            failing_call: 0,
            message: "data differs".into(),
        }
    }

    #[test]
    fn stimulus_round_trips_bit_exact() {
        let cex = sample_cex();
        let json = stimulus_to_json(&cex.stimulus);
        let back = stimulus_from_json(&Json::parse(&json.write()).unwrap()).unwrap();
        assert_eq!(back, cex.stimulus);
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("hls-cex-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cex = sample_cex();
        let digest = save_counterexample(&dir, "qam_decoder", &cex).unwrap();
        // Idempotent second save.
        assert_eq!(
            save_counterexample(&dir, "qam_decoder", &cex).unwrap(),
            digest
        );
        let loaded = load_counterexamples(&dir);
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].design, "qam_decoder");
        assert_eq!(loaded[0].stimulus, cex.stimulus);
        assert_eq!(loaded[0].digest, digest);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_fixture_is_skipped() {
        let dir = std::env::temp_dir().join(format!("hls-cex-bad-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        save_counterexample(&dir, "d", &sample_cex()).unwrap();
        fs::write(dir.join("objects").join("zz.json.broken"), "{").ok();
        let shard = fs::read_dir(dir.join("objects"))
            .unwrap()
            .flatten()
            .find(|e| e.path().is_dir())
            .unwrap();
        fs::write(shard.path().join("corrupt.json"), "{\"schema\": \"other\"}").unwrap();
        assert_eq!(load_counterexamples(&dir).len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
