//! Content-addressed proof-verdict cache.
//!
//! Proofs are the most expensive stage of the flow, and a design-space
//! sweep re-proves the same facts constantly: netlist rewrite
//! obligations repeat whenever two points share a lowered design, and
//! whole FSMD equivalence proofs repeat across clock twins, repeated
//! sweeps and service restarts. This module caches both:
//!
//! - **Netlist obligations** are keyed by a [`hls_ir::stable_digest`]
//!   over the *exact* proof inputs — the schema tag, the originating
//!   pass name, the prover's [`ProveOptions::max_blast_bits`] budget and
//!   the canonical [`hls_core::persist`] serialization of both the
//!   before and after lowered designs. Any change to either side, the
//!   pass attribution or the blast budget changes the key and forces a
//!   fresh proof.
//! - **FSMD equivalence verdicts** are keyed by the same structural
//!   identity [`rtl::Fsmd::same_machine`] uses — name, ports, control,
//!   schedules and the lowered design — and deliberately *exclude*
//!   [`rtl::Fsmd::clock_ns`]: clock twins chain identically, so one
//!   proof covers them all.
//!
//! # Soundness
//!
//! The in-memory tiers replay a verdict only under a key derived from
//! the complete proof input, so a replayed [`ProveVerdict::Disproved`]
//! or [`ProveVerdict::Unknown`] is byte-identical to recomputing it.
//! The persistent tier is stricter: **only `Proved` verdicts are ever
//! written to disk**, and the decoder only *constructs* `Proved`
//! values, so a refuted or undecided obligation can never be served
//! from a stale or tampered store as anything at all — it simply misses
//! and re-proves. The [`ProofCacheStats::downgrades`] counter counts
//! decoded persistent entries that were anything other than `Proved`;
//! it is structurally pinned to zero and exported so benchmarks and
//! tests can assert the invariant end to end. Torn or corrupted
//! persistent entries fail the [`hls_core::docstore::DocStore`]
//! integrity envelope, quarantine, and read as misses.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use hls_core::docstore::DocStore;
use hls_core::persist::lowered_to_json;
use hls_core::NetlistObligation;
use hls_ir::{stable_digest, Json};
use rtl::Fsmd;

use crate::equiv::{Obligation, ProofMethod, ProveOptions, ProveVerdict};
use crate::pipeline::{VerifyFinding, VerifyReport};

/// Key-schema tag: bumped whenever key derivation or the persisted
/// encoding changes shape, so stale stores miss instead of colliding.
const KEY_SCHEMA: &str = "pf1";

/// Cache key for one netlist rewrite obligation under a prover budget.
///
/// Covers the schema tag, the pass name (verdict messages embed it), the
/// bit-blast budget (a bigger budget can turn `Unknown` into `Proved`)
/// and the exact canonical serialization of both lowered designs.
pub fn obligation_key(ob: &NetlistObligation, opts: &ProveOptions) -> String {
    obligation_key_tagged(ob, opts, DEFAULT_OPTIONS_TAG)
}

/// [`obligation_key`] with an explicit options tag for non-default
/// checker regimes (e.g. the concrete cross-check in
/// [`check_netlist_obligation_with`](crate::netlist::check_netlist_obligation_with)).
/// A verdict recorded under one regime never replays for another — the
/// tag is part of the content key, exactly as in [`fsmd_key`].
pub fn obligation_key_tagged(ob: &NetlistObligation, opts: &ProveOptions, tag: &str) -> String {
    let mut text = String::new();
    text.push_str(KEY_SCHEMA);
    text.push_str(";obligation;");
    text.push_str(tag);
    text.push(';');
    text.push_str(ob.pass);
    text.push(';');
    text.push_str(&opts.max_blast_bits.to_string());
    text.push(';');
    text.push_str(&lowered_to_json(&ob.before).write());
    text.push(';');
    text.push_str(&lowered_to_json(&ob.after).write());
    stable_digest(text.as_bytes())
}

/// Cache key for one FSMD equivalence proof under a prover/fuzzer
/// configuration digest.
///
/// Mirrors [`Fsmd::same_machine`]: two machines with equal name, ports,
/// control, schedules and lowered design get the same key regardless of
/// target clock — the clock only annotates emitted Verilog, never the
/// proved behavior. `options_tag` must distinguish prover/fuzzer knob
/// settings when callers use non-default ones; the default pipeline
/// passes [`DEFAULT_OPTIONS_TAG`].
pub fn fsmd_key(fsmd: &Fsmd, options_tag: &str) -> String {
    let mut text = String::new();
    text.push_str(KEY_SCHEMA);
    text.push_str(";fsmd;");
    text.push_str(options_tag);
    text.push(';');
    text.push_str(&fsmd.name);
    text.push(';');
    text.push_str(&format!(
        "{:?};{:?};{:?};",
        fsmd.ports, fsmd.control, fsmd.schedules
    ));
    text.push_str(&lowered_to_json(&fsmd.lowered).write());
    stable_digest(text.as_bytes())
}

/// The options tag for the default `verify_equiv` prove/fuzz knobs.
pub const DEFAULT_OPTIONS_TAG: &str = "default";

/// Configuration for a [`ProofCache`].
#[derive(Debug, Clone, Default)]
pub struct ProofCacheConfig {
    /// Root directory for the persistent tier; `None` keeps the cache
    /// memory-only. Only `Proved` verdicts are ever persisted.
    pub persist_dir: Option<PathBuf>,
}

/// Effectiveness counters for a [`ProofCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProofCacheStats {
    /// Verdicts replayed from either tier.
    pub hits: u64,
    /// Lookups that found nothing and forced a fresh proof.
    pub misses: u64,
    /// Verdicts inserted.
    pub inserts: u64,
    /// Hits satisfied by the persistent tier (subset of `hits`).
    pub persist_hits: u64,
    /// Persistent entries quarantined after failing integrity.
    pub persist_quarantined: u64,
    /// Decoded persistent entries that were anything but `Proved`.
    /// Structurally pinned to zero — the encoder refuses non-`Proved`
    /// verdicts and the decoder only constructs `Proved` ones — and
    /// exported so the invariant is assertable end to end.
    pub downgrades: u64,
    /// Resident obligation verdicts.
    pub obligation_entries: u64,
    /// Resident FSMD verdicts.
    pub fsmd_entries: u64,
}

impl ProofCacheStats {
    /// Serializes the counters for stats surfaces.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("hits", Json::count(self.hits)),
            ("misses", Json::count(self.misses)),
            ("inserts", Json::count(self.inserts)),
            ("persist_hits", Json::count(self.persist_hits)),
            ("persist_quarantined", Json::count(self.persist_quarantined)),
            ("downgrades", Json::count(self.downgrades)),
            ("obligation_entries", Json::count(self.obligation_entries)),
            ("fsmd_entries", Json::count(self.fsmd_entries)),
        ])
    }
}

/// A two-tier (memory + optional disk) proof-verdict cache, shared by
/// reference across the prover's worker pool.
#[derive(Debug)]
pub struct ProofCache {
    obligations: Mutex<HashMap<String, ProveVerdict>>,
    fsmd: Mutex<HashMap<String, VerifyReport>>,
    persist: Option<DocStore>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    persist_hits: AtomicU64,
    downgrades: AtomicU64,
}

impl Default for ProofCache {
    fn default() -> ProofCache {
        ProofCache::in_memory()
    }
}

impl ProofCache {
    /// Opens a cache; I/O trouble with the persistent root degrades to a
    /// memory-only cache (a proof cache miss is always recoverable).
    pub fn new(config: &ProofCacheConfig) -> ProofCache {
        let persist = config
            .persist_dir
            .as_ref()
            .and_then(|root| DocStore::open(root).ok());
        ProofCache {
            obligations: Mutex::new(HashMap::new()),
            fsmd: Mutex::new(HashMap::new()),
            persist,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            persist_hits: AtomicU64::new(0),
            downgrades: AtomicU64::new(0),
        }
    }

    /// A memory-only cache.
    pub fn in_memory() -> ProofCache {
        ProofCache::new(&ProofCacheConfig::default())
    }

    /// Replays the verdict proved under `key`, if any.
    pub fn get_obligation(&self, key: &str) -> Option<ProveVerdict> {
        if let Some(v) = self.obligations.lock().unwrap().get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(v.clone());
        }
        if let Some(store) = &self.persist {
            if let Some(body) = store.get(key) {
                if let Some(v) = decode_obligation(&body) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    self.persist_hits.fetch_add(1, Ordering::Relaxed);
                    self.obligations
                        .lock()
                        .unwrap()
                        .insert(key.to_string(), v.clone());
                    return Some(v);
                }
                self.downgrades.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Records a verdict under `key`. Every verdict is kept in memory
    /// (a replayed `Disproved`/`Unknown` is byte-identical to
    /// recomputation under the same key); only `Proved` reaches disk.
    pub fn put_obligation(&self, key: &str, verdict: &ProveVerdict) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.obligations
            .lock()
            .unwrap()
            .insert(key.to_string(), verdict.clone());
        if let (Some(store), Some(body)) = (&self.persist, encode_obligation(verdict)) {
            store.put(key, &body);
        }
    }

    /// Replays the FSMD verdict proved under `key`, if any.
    pub fn get_fsmd(&self, key: &str) -> Option<VerifyReport> {
        if let Some(r) = self.fsmd.lock().unwrap().get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(r.clone());
        }
        if let Some(store) = &self.persist {
            if let Some(body) = store.get(key) {
                if let Some(r) = decode_fsmd(&body) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    self.persist_hits.fetch_add(1, Ordering::Relaxed);
                    self.fsmd.lock().unwrap().insert(key.to_string(), r.clone());
                    return Some(r);
                }
                self.downgrades.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Records an FSMD verdict under `key`; only passing proofs
    /// ([`VerifyFinding::Proved`]) reach disk.
    pub fn put_fsmd(&self, key: &str, report: &VerifyReport) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.fsmd
            .lock()
            .unwrap()
            .insert(key.to_string(), report.clone());
        if let (Some(store), Some(body)) = (&self.persist, encode_fsmd(report)) {
            store.put(key, &body);
        }
    }

    /// Effectiveness counters and census.
    pub fn stats(&self) -> ProofCacheStats {
        ProofCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            persist_hits: self.persist_hits.load(Ordering::Relaxed),
            persist_quarantined: self.persist.as_ref().map_or(0, |p| p.quarantined()),
            downgrades: self.downgrades.load(Ordering::Relaxed),
            obligation_entries: self.obligations.lock().unwrap().len() as u64,
            fsmd_entries: self.fsmd.lock().unwrap().len() as u64,
        }
    }
}

/// Encodes a verdict for the persistent tier. Returns `None` — meaning
/// "do not persist" — for anything but `Proved`; this is the soundness
/// choke point, not a serialization shortcut.
fn encode_obligation(verdict: &ProveVerdict) -> Option<Json> {
    let ProveVerdict::Proved {
        obligations,
        sym_nodes,
    } = verdict
    else {
        return None;
    };
    let items = obligations
        .iter()
        .map(|ob| match ob.method {
            ProofMethod::Canonical => Json::Arr(vec![Json::str(ob.name.clone()), Json::str("c")]),
            ProofMethod::BitBlast { points } => Json::Arr(vec![
                Json::str(ob.name.clone()),
                Json::str("b"),
                Json::str(points.to_string()),
            ]),
        })
        .collect();
    Some(Json::obj(vec![
        ("stage", Json::str("obligation")),
        ("sym_nodes", Json::size(*sym_nodes)),
        ("obligations", Json::Arr(items)),
    ]))
}

/// Total-but-unforgiving decoder: only ever constructs `Proved`
/// verdicts, and any malformation reads as a miss.
fn decode_obligation(body: &Json) -> Option<ProveVerdict> {
    if body.get("stage")?.as_str()? != "obligation" {
        return None;
    }
    let sym_nodes = body.get("sym_nodes")?.as_u64()? as usize;
    let mut obligations = Vec::new();
    for item in body.get("obligations")?.as_arr()? {
        let fields = item.as_arr()?;
        let name = fields.first()?.as_str()?.to_string();
        let method = match fields.get(1)?.as_str()? {
            "c" if fields.len() == 2 => ProofMethod::Canonical,
            "b" if fields.len() == 3 => ProofMethod::BitBlast {
                points: fields.get(2)?.as_str()?.parse().ok()?,
            },
            _ => return None,
        };
        obligations.push(Obligation { name, method });
    }
    Some(ProveVerdict::Proved {
        obligations,
        sym_nodes,
    })
}

/// Encodes an FSMD verdict for the persistent tier; `None` for anything
/// but a passing proof.
fn encode_fsmd(report: &VerifyReport) -> Option<Json> {
    let VerifyFinding::Proved {
        obligations,
        bit_blasted,
        sym_nodes,
    } = &report.finding
    else {
        return None;
    };
    Some(Json::obj(vec![
        ("stage", Json::str("fsmd")),
        ("obligations", Json::size(*obligations)),
        ("bit_blasted", Json::size(*bit_blasted)),
        ("sym_nodes", Json::size(*sym_nodes)),
    ]))
}

/// Decoder for persisted FSMD verdicts: only constructs `Proved`.
fn decode_fsmd(body: &Json) -> Option<VerifyReport> {
    if body.get("stage")?.as_str()? != "fsmd" {
        return None;
    }
    Some(VerifyReport {
        finding: VerifyFinding::Proved {
            obligations: body.get("obligations")?.as_u64()? as usize,
            bit_blasted: body.get("bit_blasted")?.as_u64()? as usize,
            sym_nodes: body.get("sym_nodes")?.as_u64()? as usize,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::FuzzCex;
    use crate::fuzz::Stimulus;

    fn proved() -> ProveVerdict {
        ProveVerdict::Proved {
            obligations: vec![
                Obligation {
                    name: "out".into(),
                    method: ProofMethod::Canonical,
                },
                Obligation {
                    name: "acc".into(),
                    method: ProofMethod::BitBlast { points: 1024 },
                },
            ],
            sym_nodes: 77,
        }
    }

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hls-proofcache-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn obligation_round_trip_and_counters() {
        let cache = ProofCache::in_memory();
        let key = stable_digest(b"ob-1");
        assert!(cache.get_obligation(&key).is_none());
        cache.put_obligation(&key, &proved());
        let hit = cache.get_obligation(&key).expect("hit");
        assert!(hit.is_proved());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
        assert_eq!(s.downgrades, 0);
    }

    #[test]
    fn only_proved_survives_reopen() {
        let root = tmp_root("persist");
        let config = ProofCacheConfig {
            persist_dir: Some(root.clone()),
        };
        let proved_key = stable_digest(b"proved");
        let unknown_key = stable_digest(b"unknown");
        let fuzzed_key = stable_digest(b"fuzzed");
        {
            let cache = ProofCache::new(&config);
            cache.put_obligation(&proved_key, &proved());
            cache.put_obligation(
                &unknown_key,
                &ProveVerdict::Unknown {
                    reason: "wide cone".into(),
                    proved: 0,
                    unproved: vec!["out".into()],
                },
            );
            cache.put_fsmd(
                &fuzzed_key,
                &VerifyReport {
                    finding: VerifyFinding::FuzzCounterexample(FuzzCex {
                        stimulus: Stimulus::default(),
                        failing_call: 0,
                        message: "mismatch".into(),
                    }),
                },
            );
        }
        let cache = ProofCache::new(&config);
        assert!(
            cache.get_obligation(&proved_key).is_some(),
            "proved verdicts survive a restart"
        );
        assert!(
            cache.get_obligation(&unknown_key).is_none(),
            "non-proved verdicts must not be persisted"
        );
        assert!(
            cache.get_fsmd(&fuzzed_key).is_none(),
            "counterexamples must not be persisted"
        );
        assert_eq!(cache.stats().persist_hits, 1);
        assert_eq!(cache.stats().downgrades, 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn decoder_never_constructs_non_proved() {
        // Even a hand-forged body claiming to be a verdict decodes to
        // Proved or nothing — there is no encoding for refutation.
        let forged = Json::obj(vec![
            ("stage", Json::str("obligation")),
            ("sym_nodes", Json::size(1)),
            ("obligations", Json::Arr(vec![Json::str("disproved")])),
        ]);
        assert!(decode_obligation(&forged).is_none());
        let forged = Json::obj(vec![("stage", Json::str("fsmd"))]);
        assert!(decode_fsmd(&forged).is_none());
    }
}
