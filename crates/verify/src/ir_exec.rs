//! Symbolic execution of the untimed IR — the interpreter's semantics
//! lifted from [`Fixed`] values to [`SymId`] expression nodes.
//!
//! Mirrors `hls_ir::Interpreter` operation-for-operation: assignment casts
//! into the declared format, `Select` evaluates both arms (mux semantics),
//! short-circuit `&&`/`||` become strict 1-bit AND/OR (expressions are
//! effect-free, so the value is identical), counted loops unroll over
//! their concrete iteration values, and `if` statements on *symbolic*
//! conditions are if-converted by executing both branches on copies of the
//! environment and merging every written variable through an `Ite` — which
//! is exactly what the DFG if-conversion does on the hardware side.

use fixpt::Fixed;
use hls_ir::{BinOp, Expr, Function, Stmt, Ty, UnOp};

use crate::state::{
    index_in_bounds, select_element, store_element, ExecResult, SymSlot, Unsupported,
};
use crate::sym::{Op, SymId, SymTable};

/// The symbolic environment: one optional slot per function variable,
/// indexed by `VarId::index`.
pub type SymEnv = Vec<Option<SymSlot>>;

/// Executes the whole function body symbolically, updating `env` in place.
///
/// # Errors
///
/// Returns [`Unsupported`] when a construct cannot be executed
/// symbolically (non-constant shift amounts, indices that cannot be
/// proven in bounds, …); the caller treats this as "fall back to fuzzing",
/// never as a verdict.
pub fn exec_function(t: &mut SymTable, func: &Function, env: &mut SymEnv) -> ExecResult<()> {
    exec_block(t, func, &func.body, env)
}

fn exec_block(
    t: &mut SymTable,
    func: &Function,
    stmts: &[Stmt],
    env: &mut SymEnv,
) -> ExecResult<()> {
    for s in stmts {
        exec_stmt(t, func, s, env)?;
    }
    Ok(())
}

fn exec_stmt(t: &mut SymTable, func: &Function, s: &Stmt, env: &mut SymEnv) -> ExecResult<()> {
    match s {
        Stmt::Assign { var, value } => {
            let v = eval(t, func, value, env)?;
            let decl = func.var(*var);
            let stored = match decl.ty {
                // Booleans are stored as 1-bit integers; the value is
                // already a 1-bit node.
                Ty::Bool => v,
                Ty::Fixed(fmt) => t.intern(Op::Cast(
                    v,
                    fmt,
                    fixpt::Quantization::Trn,
                    fixpt::Overflow::Wrap,
                )),
            };
            match env[var.index()].as_mut() {
                Some(SymSlot::Scalar(slot)) => {
                    *slot = stored;
                    Ok(())
                }
                _ => Err(Unsupported(format!("assign to non-scalar {}", decl.name))),
            }
        }
        Stmt::Store {
            array,
            index,
            value,
        } => {
            let idx = eval(t, func, index, env)?;
            let val = eval(t, func, value, env)?;
            let decl = func.var(*array);
            let fmt = decl
                .ty
                .format()
                .ok_or_else(|| Unsupported(format!("store into bool array {}", decl.name)))?;
            let stored = t.intern(Op::Cast(
                val,
                fmt,
                fixpt::Quantization::Trn,
                fixpt::Overflow::Wrap,
            ));
            let in_bounds_sym = {
                let len = decl.len.unwrap_or(0);
                index_in_bounds(t, idx, len)
            };
            match env[array.index()].as_mut() {
                Some(SymSlot::Array(_)) => {}
                _ => return Err(Unsupported(format!("store to non-array {}", decl.name))),
            }
            if let Some(c) = t.const_value(idx) {
                let i = c.to_i64();
                let elems = match env[array.index()].as_mut() {
                    Some(SymSlot::Array(a)) => a,
                    _ => unreachable!("checked above"),
                };
                if i < 0 || i as usize >= elems.len() {
                    return Err(Unsupported(format!(
                        "store out of bounds: {}[{i}]",
                        decl.name
                    )));
                }
                elems[i as usize] = stored;
                Ok(())
            } else if in_bounds_sym {
                let mut elems = match env[array.index()].take() {
                    Some(SymSlot::Array(a)) => a,
                    _ => unreachable!("checked above"),
                };
                store_element(t, idx, stored, None, &mut elems);
                env[array.index()] = Some(SymSlot::Array(elems));
                Ok(())
            } else {
                Err(Unsupported(format!(
                    "store index into {} not provably in bounds",
                    decl.name
                )))
            }
        }
        Stmt::For(l) => {
            let cfmt = func
                .var(l.var)
                .ty
                .format()
                .unwrap_or_else(crate::state::index_format);
            for k in l.iteration_values() {
                let kc = t.constant(Fixed::from_int(k, cfmt));
                if let Some(SymSlot::Scalar(slot)) = env[l.var.index()].as_mut() {
                    *slot = kc;
                }
                exec_block(t, func, &l.body, env)?;
            }
            Ok(())
        }
        Stmt::If { cond, then_, else_ } => {
            let c = eval(t, func, cond, env)?;
            if let Some(cv) = t.const_value(c) {
                // Concrete condition: take one branch, like the
                // interpreter.
                return if !cv.is_zero() {
                    exec_block(t, func, then_, env)
                } else {
                    exec_block(t, func, else_, env)
                };
            }
            // Symbolic condition: if-convert. Execute both branches on
            // copies and merge every slot through an Ite, exactly the
            // multiplexer network the DFG builds.
            let mut env_t = env.clone();
            let mut env_e = env.clone();
            exec_block(t, func, then_, &mut env_t)?;
            exec_block(t, func, else_, &mut env_e)?;
            for (i, slot) in env.iter_mut().enumerate() {
                let merged = match (env_t[i].clone(), env_e[i].clone()) {
                    (Some(SymSlot::Scalar(a)), Some(SymSlot::Scalar(b))) => {
                        Some(SymSlot::Scalar(merge_scalar(t, c, a, b)))
                    }
                    (Some(SymSlot::Array(a)), Some(SymSlot::Array(b))) => Some(SymSlot::Array(
                        a.iter()
                            .zip(b.iter())
                            .map(|(&x, &y)| merge_scalar(t, c, x, y))
                            .collect(),
                    )),
                    (x, _) => x,
                };
                *slot = merged;
            }
            Ok(())
        }
    }
}

/// The *runtime* format the interpreter's value of `e` carries — a static
/// mirror of `hls_ir::Interpreter::eval`'s dynamic format rules (variables
/// and array elements hold their declared formats thanks to cast-on-assign;
/// arithmetic widens exactly; shifts keep their operand's format). Returns
/// `None` when the format is data-dependent (a `Select` whose arms differ)
/// or the expression is boolean-valued.
fn machine_format(func: &Function, e: &Expr) -> Option<fixpt::Format> {
    match e {
        Expr::Const(c) => Some(c.format()),
        Expr::ConstBool(_) => None,
        Expr::Var(v) => func.var(*v).ty.format(),
        Expr::Load { array, .. } => func.var(*array).ty.format(),
        Expr::Unary { op, arg } => match op {
            UnOp::Neg => Some(machine_format(func, arg)?.neg_format()),
            UnOp::Signum => Some(fixpt::Format::signed(2, 2)),
            UnOp::Not => None,
        },
        Expr::Binary { op, lhs, rhs } => match op {
            BinOp::Add => Some(machine_format(func, lhs)?.add_format(&machine_format(func, rhs)?)),
            BinOp::Sub => Some(machine_format(func, lhs)?.sub_format(&machine_format(func, rhs)?)),
            BinOp::Mul => Some(machine_format(func, lhs)?.mul_format(&machine_format(func, rhs)?)),
            BinOp::Shl | BinOp::Shr => machine_format(func, lhs),
            BinOp::And | BinOp::Or => None,
        },
        Expr::Compare { .. } => None,
        Expr::Select { then_, else_, .. } => {
            let a = machine_format(func, then_)?;
            let b = machine_format(func, else_)?;
            (a == b).then_some(a)
        }
        Expr::Cast { ty, .. } => ty.format(),
    }
}

fn merge_scalar(t: &mut SymTable, c: SymId, a: SymId, b: SymId) -> SymId {
    if a == b {
        a
    } else {
        t.intern(Op::Ite(c, a, b))
    }
}

fn eval(t: &mut SymTable, func: &Function, e: &Expr, env: &SymEnv) -> ExecResult<SymId> {
    match e {
        Expr::Const(c) => Ok(t.constant(*c)),
        Expr::ConstBool(b) => Ok(t.constant_bool(*b)),
        Expr::Var(v) => match env[v.index()].as_ref() {
            Some(SymSlot::Scalar(s)) => Ok(*s),
            _ => Err(Unsupported(format!(
                "read of non-scalar {}",
                func.var(*v).name
            ))),
        },
        Expr::Load { array, index } => {
            let idx = eval(t, func, index, env)?;
            let decl = func.var(*array);
            let elems = match env[array.index()].as_ref() {
                Some(SymSlot::Array(a)) => a.clone(),
                _ => return Err(Unsupported(format!("load from non-array {}", decl.name))),
            };
            if let Some(c) = t.const_value(idx) {
                let i = c.to_i64();
                if i < 0 || i as usize >= elems.len() {
                    return Err(Unsupported(format!(
                        "load out of bounds: {}[{i}]",
                        decl.name
                    )));
                }
                Ok(elems[i as usize])
            } else if index_in_bounds(t, idx, elems.len()) {
                Ok(select_element(t, idx, &elems))
            } else {
                Err(Unsupported(format!(
                    "load index into {} not provably in bounds",
                    decl.name
                )))
            }
        }
        Expr::Unary { op, arg } => {
            let a = eval(t, func, arg, env)?;
            Ok(match op {
                UnOp::Neg => t.intern(Op::Neg(a)),
                UnOp::Signum => t.intern(Op::Signum(a)),
                UnOp::Not => t.intern(Op::Not(a)),
            })
        }
        Expr::Binary { op, lhs, rhs } => match op {
            // Strict 1-bit logic: value-identical to the interpreter's
            // short circuit because IR expressions are effect-free.
            BinOp::And | BinOp::Or => {
                let a = eval(t, func, lhs, env)?;
                let b = eval(t, func, rhs, env)?;
                Ok(t.intern(if matches!(op, BinOp::And) {
                    Op::And(a, b)
                } else {
                    Op::Or(a, b)
                }))
            }
            BinOp::Shl | BinOp::Shr => {
                let n = match rhs.as_ref() {
                    Expr::Const(c) => c.to_i64(),
                    _ => return Err(Unsupported("non-constant shift amount".into())),
                };
                if n < 0 {
                    return Err(Unsupported("negative shift amount".into()));
                }
                let a = eval(t, func, lhs, env)?;
                // The interpreter shifts in the operand's runtime format;
                // pin it into the node so symbolic rewrites cannot change
                // what the shift wraps/truncates in.
                let fm = machine_format(func, lhs).ok_or_else(|| {
                    Unsupported("shift operand with data-dependent runtime format".into())
                })?;
                Ok(t.intern(if matches!(op, BinOp::Shl) {
                    Op::Shl(a, n as u32, fm)
                } else {
                    Op::Shr(a, n as u32, fm)
                }))
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul => {
                let a = eval(t, func, lhs, env)?;
                let b = eval(t, func, rhs, env)?;
                Ok(t.intern(match op {
                    BinOp::Add => Op::Add(a, b),
                    BinOp::Sub => Op::Sub(a, b),
                    BinOp::Mul => Op::Mul(a, b),
                    _ => unreachable!(),
                }))
            }
        },
        Expr::Compare { op, lhs, rhs } => {
            let a = eval(t, func, lhs, env)?;
            let b = eval(t, func, rhs, env)?;
            Ok(t.intern(Op::Cmp(*op, a, b)))
        }
        Expr::Select { cond, then_, else_ } => {
            let c = eval(t, func, cond, env)?;
            // Evaluate both arms (hardware mux semantics) but yield one,
            // unchanged — any bus alignment is the FSMD side's explicit
            // (lossless, rewritten-away) cast.
            let a = eval(t, func, then_, env)?;
            let b = eval(t, func, else_, env)?;
            Ok(merge_scalar(t, c, a, b))
        }
        Expr::Cast {
            ty,
            quantization,
            overflow,
            arg,
        } => {
            let a = eval(t, func, arg, env)?;
            let fmt = ty
                .format()
                .ok_or_else(|| Unsupported("cast to bool".into()))?;
            Ok(t.intern(Op::Cast(a, fmt, *quantization, *overflow)))
        }
    }
}
