//! Mutation testing for the checker itself.
//!
//! A verifier that never fires is indistinguishable from one that works.
//! This module seeds *deliberate scheduling/control bugs* into a correct
//! FSMD — off-by-one trip counts, corrupted counter initialization, wrong
//! step direction — and the self-check asserts that [`crate::verify_equiv`]
//! refutes every mutant with a concrete counterexample.
//!
//! Mutations target the controller ([`Control::Loop`]) because that is
//! exactly the class of bug scheduling and FSM generation can introduce:
//! the datapath is right, the sequencing is wrong.

use rtl::{Control, Fsmd};

/// One seedable controller bug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mutation {
    /// Run the loop in `segment` one fewer iteration (classic off-by-one
    /// in the exit comparison).
    TripShort {
        /// Control-segment index.
        segment: usize,
    },
    /// Run the loop in `segment` one extra iteration.
    TripLong {
        /// Control-segment index.
        segment: usize,
    },
    /// Start the loop counter in `segment` one `step` late, as if the
    /// initialization state were skipped.
    StartSkewed {
        /// Control-segment index.
        segment: usize,
    },
}

impl std::fmt::Display for Mutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mutation::TripShort { segment } => {
                write!(f, "segment {segment}: trip count one short")
            }
            Mutation::TripLong { segment } => {
                write!(f, "segment {segment}: trip count one long")
            }
            Mutation::StartSkewed { segment } => {
                write!(f, "segment {segment}: counter start skewed by one step")
            }
        }
    }
}

/// All mutations applicable to `fsmd` (every loop segment yields three).
pub fn mutations_for(fsmd: &Fsmd) -> Vec<Mutation> {
    let mut out = Vec::new();
    for (si, ctl) in fsmd.control.iter().enumerate() {
        if let Control::Loop { trip, .. } = ctl {
            if *trip > 1 {
                out.push(Mutation::TripShort { segment: si });
            }
            out.push(Mutation::TripLong { segment: si });
            out.push(Mutation::StartSkewed { segment: si });
        }
    }
    out
}

/// Returns a copy of `fsmd` with `m` seeded, or `None` if the mutation
/// does not apply (e.g. the segment is straight-line).
pub fn mutate_fsmd(fsmd: &Fsmd, m: &Mutation) -> Option<Fsmd> {
    let mut out = fsmd.clone();
    let seg = match m {
        Mutation::TripShort { segment }
        | Mutation::TripLong { segment }
        | Mutation::StartSkewed { segment } => *segment,
    };
    match out.control.get_mut(seg)? {
        Control::Loop {
            trip, start, step, ..
        } => {
            match m {
                Mutation::TripShort { .. } => {
                    if *trip <= 1 {
                        return None;
                    }
                    *trip -= 1;
                }
                Mutation::TripLong { .. } => *trip += 1,
                Mutation::StartSkewed { .. } => *start += *step,
            }
            Some(out)
        }
        Control::Straight { .. } => None,
    }
}
