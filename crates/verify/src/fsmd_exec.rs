//! Symbolic execution of a synthesized FSMD — the RTL simulator's
//! semantics lifted from registers of [`Fixed`] to registers of [`SymId`].
//!
//! The walk mirrors `rtl::RtlSimulator::run_call` exactly: segments in
//! control order, loop counters initialized and stepped concretely between
//! body runs, and within one body run every scheduled node evaluated in
//! `nodes_in_cycle` order with the op semantics of `eval_node`
//! (`VarWrite`/`Mux` alignment casts, clamped speculative loads, gated
//! conditional stores, strength-reduced `MulPow2` as exact
//! multiplication).

use fixpt::{Fixed, Overflow, Quantization};
use hls_core::dfg::{Dfg, NodeId, NodeKind};
use hls_core::Schedule;
use hls_ir::{BinOp, UnOp};
use rtl::{Control, Fsmd};

use crate::state::{index_in_bounds, select_element, store_element, ExecResult, Unsupported};
use crate::sym::{Op, SymId, SymTable};

/// Symbolic register/array state of the FSMD, indexed by `VarId::index`.
#[derive(Debug, Clone)]
pub struct FsmdState {
    /// Scalar registers.
    pub regs: Vec<Option<SymId>>,
    /// Register arrays.
    pub arrays: Vec<Option<Vec<SymId>>>,
}

impl FsmdState {
    /// An all-empty state sized for `fsmd`'s function.
    pub fn new(fsmd: &Fsmd) -> FsmdState {
        let n = fsmd.function().iter_vars().count();
        FsmdState {
            regs: vec![None; n],
            arrays: vec![None; n],
        }
    }
}

/// Runs one start/done transaction symbolically, updating `st` in place.
///
/// # Errors
///
/// Returns [`Unsupported`] for constructs outside the symbolic fragment
/// (dynamic shift amounts, unprovable array indices); the caller falls
/// back to fuzzing.
pub fn exec_fsmd(t: &mut SymTable, fsmd: &Fsmd, st: &mut FsmdState) -> ExecResult<()> {
    // Borrow the function rather than cloning it: a clone copies every
    // statement tree and variable table per transaction, which dominated
    // the fused-explore per-machine floor.
    let func = fsmd.function();
    // One node-value scratch buffer reused across all body runs (a 16-trip
    // loop previously allocated 16 of these).
    let mut values: Vec<Option<SymId>> = Vec::new();
    for (si, ctl) in fsmd.control.iter().enumerate() {
        let dfg = fsmd.lowered.segments[si].dfg();
        let sched = &fsmd.schedules[si];
        match ctl {
            Control::Straight { depth } => {
                run_body(t, func, dfg, sched, *depth, st, &mut values)?;
            }
            Control::Loop {
                depth,
                trip,
                counter,
                start,
                step,
                ..
            } => {
                let cfmt = func
                    .var(*counter)
                    .ty
                    .format()
                    .unwrap_or_else(crate::sym::bool_format);
                st.regs[counter.index()] = Some(t.constant(Fixed::from_int(*start, cfmt)));
                for _ in 0..*trip {
                    run_body(t, func, dfg, sched, *depth, st, &mut values)?;
                    // The counter register steps concretely between body
                    // runs (its value is data-independent).
                    let k = st.regs[counter.index()].expect("counter initialized");
                    let kv = t
                        .const_value(k)
                        .ok_or_else(|| Unsupported("loop counter became data-dependent".into()))?;
                    st.regs[counter.index()] =
                        Some(t.constant(Fixed::from_int(kv.to_i64() + *step, cfmt)));
                }
            }
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn run_body(
    t: &mut SymTable,
    func: &hls_ir::Function,
    dfg: &Dfg,
    sched: &Schedule,
    depth: u32,
    st: &mut FsmdState,
    values: &mut Vec<Option<SymId>>,
) -> ExecResult<()> {
    values.clear();
    values.resize(dfg.len(), None);
    for cycle in 0..depth.max(1) {
        for id in sched.nodes_in_cycle(cycle) {
            let v = eval_node(t, func, dfg, id, values, st)?;
            values[id.index()] = Some(v);
        }
    }
    Ok(())
}

pub(crate) fn eval_node(
    t: &mut SymTable,
    func: &hls_ir::Function,
    dfg: &Dfg,
    id: NodeId,
    values: &[Option<SymId>],
    st: &mut FsmdState,
) -> ExecResult<SymId> {
    let node = dfg.node(id);
    let val = |p: NodeId| values[p.index()].expect("predecessor evaluated");
    Ok(match &node.kind {
        NodeKind::Const(c) => t.constant(*c),
        NodeKind::VarRead(v) => st.regs[v.index()].expect("register initialized"),
        NodeKind::VarWrite(v) => {
            let x = cast_default(t, val(node.preds[0]), node.format);
            st.regs[v.index()] = Some(x);
            x
        }
        NodeKind::Bin(op) => {
            let a = val(node.preds[0]);
            let b = val(node.preds[1]);
            match op {
                BinOp::Add => t.intern(Op::Add(a, b)),
                BinOp::Sub => t.intern(Op::Sub(a, b)),
                BinOp::Mul => t.intern(Op::Mul(a, b)),
                BinOp::Shl | BinOp::Shr => {
                    let n = t
                        .const_value(b)
                        .ok_or_else(|| Unsupported("dynamic shift amount".into()))?
                        .to_i64()
                        .max(0) as u32;
                    // The simulator shifts in the operand's runtime format,
                    // which for every DFG node is its `format` field; pin
                    // it so symbolic rewrites cannot change what the shift
                    // wraps/truncates in.
                    let fm = dfg.node(node.preds[0]).format;
                    t.intern(if matches!(op, BinOp::Shl) {
                        Op::Shl(a, n, fm)
                    } else {
                        Op::Shr(a, n, fm)
                    })
                }
                BinOp::And => t.intern(Op::And(a, b)),
                BinOp::Or => t.intern(Op::Or(a, b)),
            }
        }
        // Strength-reduced power-of-two multiply: same semantics as Mul
        // (this *is* the canonicalization that matches it with the IR
        // side's plain multiplication).
        NodeKind::MulPow2 => {
            let a = val(node.preds[0]);
            let b = val(node.preds[1]);
            t.intern(Op::Mul(a, b))
        }
        NodeKind::Un(op) => {
            let a = val(node.preds[0]);
            match op {
                UnOp::Neg => t.intern(Op::Neg(a)),
                UnOp::Signum => t.intern(Op::Signum(a)),
                UnOp::Not => t.intern(Op::Not(a)),
            }
        }
        NodeKind::Cmp(op) => {
            let a = val(node.preds[0]);
            let b = val(node.preds[1]);
            t.intern(Op::Cmp(*op, a, b))
        }
        NodeKind::Mux | NodeKind::EnableMux => {
            // Chosen arm, aligned onto the mux's (lossless-union) bus
            // format; cast-after-choose equals choose-then-cast.
            let c = val(node.preds[0]);
            let a = val(node.preds[1]);
            let b = val(node.preds[2]);
            let arm = if a == b {
                a
            } else {
                t.intern(Op::Ite(c, a, b))
            };
            cast_default(t, arm, node.format)
        }
        NodeKind::Cast(q, o) => t.intern(Op::Cast(val(node.preds[0]), node.format, *q, *o)),
        NodeKind::Load(arr) => {
            let idx = val(node.preds[0]);
            // Borrow the element vector in place; the old per-load clone of
            // the whole symbolic array was the hottest allocation in the
            // fused verify fan-out. `st` and `t` are distinct bindings, so
            // the immutable borrow coexists with interning into `t`.
            let elems = st.arrays[arr.index()].as_ref().expect("array initialized");
            if let Some(c) = t.const_value(idx) {
                // Speculative out-of-range reads clamp, like the
                // simulator (only reachable under a false predicate).
                let i = c.to_i64().clamp(0, elems.len() as i64 - 1) as usize;
                elems[i]
            } else if index_in_bounds(t, idx, elems.len()) {
                select_element(t, idx, elems)
            } else {
                return Err(Unsupported(format!(
                    "load index into {} not provably in bounds",
                    func.var(*arr).name
                )));
            }
        }
        NodeKind::Store(arr) | NodeKind::StoreCond(arr) => {
            let idx = val(node.preds[0]);
            let v = val(node.preds[1]);
            let cond = match node.kind {
                NodeKind::StoreCond(_) => {
                    let c = val(node.preds[2]);
                    match t.const_value(c) {
                        // Gated write enable: constantly-false means no
                        // write at all (the address may be wild then).
                        Some(cv) if cv.is_zero() => return Ok(v),
                        Some(_) => None,
                        None => Some(c),
                    }
                }
                _ => None,
            };
            let mut elems = st.arrays[arr.index()].take().expect("array initialized");
            if let Some(ci) = t.const_value(idx) {
                let i = ci.to_i64();
                if i < 0 || i as usize >= elems.len() {
                    return Err(Unsupported(format!(
                        "store out of bounds: {}[{i}]",
                        func.var(*arr).name
                    )));
                }
                let i = i as usize;
                elems[i] = match cond {
                    Some(c) => {
                        let old = elems[i];
                        t.intern(Op::Ite(c, v, old))
                    }
                    None => v,
                };
            } else if index_in_bounds(t, idx, elems.len()) {
                store_element(t, idx, v, cond, &mut elems);
            } else {
                st.arrays[arr.index()] = Some(elems);
                return Err(Unsupported(format!(
                    "store index into {} not provably in bounds",
                    func.var(*arr).name
                )));
            }
            st.arrays[arr.index()] = Some(elems);
            v
        }
    })
}

fn cast_default(t: &mut SymTable, v: SymId, fmt: fixpt::Format) -> SymId {
    t.intern(Op::Cast(v, fmt, Quantization::Trn, Overflow::Wrap))
}
