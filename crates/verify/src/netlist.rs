//! Per-pass equivalence obligations for the netlist optimizer.
//!
//! Every rewrite the netlist pass manager performs ships a
//! [`NetlistObligation`] — the lowered design before and after one pass.
//! This module discharges them: both designs execute symbolically over one
//! shared [`SymTable`] from a common *fully arbitrary* start state (every
//! register and array element a fresh free input, so the proof covers
//! every reachable machine state, not just the reset state), and every
//! final register and array element is an observable that must agree.
//!
//! Obligations discharge exactly like the end-to-end prover: canonical
//! equality first (the normalizing construction interned both sides to
//! one node), then exhaustive bit-blast over narrow input cones, and
//! [`ProveVerdict::Unknown`] otherwise — never silently assumed. The
//! end-to-end IR↔FSMD gate still verifies the *optimized* design, so an
//! `Unknown` here only costs per-pass attribution, not soundness.

use std::collections::HashMap;

use fixpt::{Fixed, Format};
use hls_core::dfg::Dfg;
use hls_core::{Lowered, NetlistObligation, Segment};

use crate::equiv::{bit_blast, Obligation, ProofCex, ProofMethod, ProveOptions, ProveVerdict};
use crate::fsmd_exec::{eval_node, FsmdState};
use crate::fuzz::{random_fixed, SplitMix64};
use crate::proofcache::{obligation_key, ProofCache};
use crate::state::{ExecResult, Unsupported};
use crate::sym::{bool_format, Evaluator, SymId, SymTable};

/// Checks every obligation of one synthesis run; returns one verdict per
/// obligation, in order. Obligations are independent proofs, so they are
/// discharged in parallel across a scoped worker pool.
pub fn check_netlist_obligations(
    obligations: &[NetlistObligation],
    opts: &ProveOptions,
) -> Vec<ProveVerdict> {
    check_netlist_obligations_cached(obligations, opts, None)
}

/// [`check_netlist_obligations`] through an optional
/// [`ProofCache`]: each obligation's verdict is replayed when its
/// content key hits and recorded when it was freshly proved. Verdict
/// order matches the obligation order either way, and a cached verdict
/// is byte-identical to recomputation (the key covers the exact proof
/// inputs, including the pass name and blast budget).
pub fn check_netlist_obligations_cached(
    obligations: &[NetlistObligation],
    opts: &ProveOptions,
    cache: Option<&ProofCache>,
) -> Vec<ProveVerdict> {
    let keys: Option<Vec<String>> = cache.map(|_| {
        obligations
            .iter()
            .map(|ob| obligation_key(ob, opts))
            .collect()
    });
    check_netlist_obligations_keyed(obligations, keys.as_deref(), opts, None, cache)
}

/// [`check_netlist_obligations_cached`] with the content keys supplied
/// by the caller.
///
/// Deriving a key serializes both sides of the obligation — often more
/// work than replaying the verdict it looks up. A sweep that memoizes
/// obligation *sets* (one set per unique lowering, shared by every clock
/// point) should memoize the keys beside them and pass both here, paying
/// the serialization once per set instead of once per point. `keys`,
/// when present, must be index-aligned with `obligations` and computed
/// under the same `opts` *and* `cross` regime — [`obligation_key`] for
/// the plain checker, [`obligation_key_tagged`] with
/// [`NetlistCrossCheck::tag`] when cross-checking — a stale or
/// misaligned key is a soundness bug on the caller. With `keys` `None`
/// (or no cache), every obligation is proved directly.
///
/// [`obligation_key_tagged`]: crate::proofcache::obligation_key_tagged
pub fn check_netlist_obligations_keyed(
    obligations: &[NetlistObligation],
    keys: Option<&[String]>,
    opts: &ProveOptions,
    cross: Option<&NetlistCrossCheck>,
    cache: Option<&ProofCache>,
) -> Vec<ProveVerdict> {
    assert!(
        keys.is_none_or(|k| k.len() == obligations.len()),
        "one key per obligation"
    );
    let one = |i: usize| -> ProveVerdict {
        let ob = &obligations[i];
        let (Some(cache), Some(keys)) = (cache, keys) else {
            return check_netlist_obligation_with(ob, opts, cross);
        };
        let key = &keys[i];
        if let Some(v) = cache.get_obligation(key) {
            return v;
        }
        let v = check_netlist_obligation_with(ob, opts, cross);
        cache.put_obligation(key, &v);
        v
    };
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(obligations.len());
    if workers <= 1 {
        return (0..obligations.len()).map(one).collect();
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<ProveVerdict>>> =
        obligations.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= obligations.len() {
                    break;
                }
                let v = one(i);
                *slots[i].lock().expect("no panics hold this lock") = Some(v);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("poisoned slot")
                .expect("all indices visited")
        })
        .collect()
}

/// Proves (or refutes, or gives up on) one pass's rewrite: the lowered
/// design after the pass must compute the same final state as the design
/// before it, for every input and every start state.
pub fn check_netlist_obligation(ob: &NetlistObligation, opts: &ProveOptions) -> ProveVerdict {
    let func = &ob.before.func;
    let mut t = SymTable::new();
    let mut names: HashMap<u32, String> = HashMap::new();

    // Fully arbitrary start state, shared by both sides: a netlist pass
    // must preserve the segment semantics from *any* register contents
    // (segments run mid-design, after arbitrary prior state updates).
    let nvars = func.iter_vars().count();
    let mut init = FsmdState {
        regs: vec![None; nvars],
        arrays: vec![None; nvars],
    };
    for (id, v) in func.iter_vars() {
        let fmt = v.ty.format().unwrap_or_else(bool_format);
        match v.len {
            None => {
                let s = t.fresh_input(fmt);
                let (n, _) = t.input_info(s).expect("fresh input");
                names.insert(n, v.name.clone());
                init.regs[id.index()] = Some(s);
            }
            Some(len) => {
                let elems: Vec<SymId> = (0..len)
                    .map(|i| {
                        let s = t.fresh_input(fmt);
                        let (n, _) = t.input_info(s).expect("fresh input");
                        names.insert(n, format!("{}[{i}]", v.name));
                        s
                    })
                    .collect();
                init.arrays[id.index()] = Some(elems);
            }
        }
    }

    let mut before = init.clone();
    if let Err(e) = exec_lowered(&mut t, &ob.before, &mut before) {
        return unknown_all(func, format!("{}: before side: {e}", ob.pass));
    }
    let mut after = init;
    if let Err(e) = exec_lowered(&mut t, &ob.after, &mut after) {
        return unknown_all(func, format!("{}: after side: {e}", ob.pass));
    }

    // Every final register and array element must agree — a netlist pass
    // may not change *any* architectural state, observable or not (a
    // later segment may read it).
    let mut pairs: Vec<(String, SymId, SymId)> = Vec::new();
    for (id, v) in func.iter_vars() {
        match v.len {
            None => {
                let a = before.regs[id.index()].expect("register state");
                let b = after.regs[id.index()].expect("register state");
                pairs.push((v.name.clone(), a, b));
            }
            Some(_) => {
                let a = before.arrays[id.index()].as_ref().expect("array state");
                let b = after.arrays[id.index()].as_ref().expect("array state");
                for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
                    pairs.push((format!("{}[{i}]", v.name), x, y));
                }
            }
        }
    }

    let mut proved: Vec<Obligation> = Vec::new();
    let mut unproved: Vec<String> = Vec::new();
    let mut ev = Evaluator::new();
    for (name, a, b) in pairs {
        if a == b {
            proved.push(Obligation {
                name,
                method: ProofMethod::Canonical,
            });
            continue;
        }
        let support = t.support(&[a, b]);
        let bits: u32 = support.iter().map(|&(_, f, _)| f.width()).sum();
        if bits > opts.max_blast_bits {
            unproved.push(format!("{name} (cone {bits} bits)"));
            continue;
        }
        match bit_blast(&t, &mut ev, &name, a, b, &support, &names) {
            Ok(points) => proved.push(Obligation {
                name,
                method: ProofMethod::BitBlast { points },
            }),
            Err(cex) => return ProveVerdict::Disproved(cex),
        }
    }

    if unproved.is_empty() {
        ProveVerdict::Proved {
            obligations: proved,
            sym_nodes: t.len(),
        }
    } else {
        ProveVerdict::Unknown {
            reason: format!("{}: input cones too wide for exhaustive bit-blast", ob.pass),
            proved: proved.len(),
            unproved,
        }
    }
}

/// Concrete cross-check knobs for netlist obligations.
///
/// After a symbolic `Proved`, both sides of the obligation are
/// re-executed in *independent* symbolic tables — taking the
/// shared-table normalizer out of the trusted base — and their final
/// states compared under deterministic pseudo-random input valuations.
/// A divergence downgrades the verdict to `Disproved` with the
/// offending valuation; agreement leaves the proved verdict
/// byte-identical to the plain checker's. Deep-verification sweeps run
/// in this regime, and replaying the verdict from a [`ProofCache`]
/// amortizes the proof and the cross-check together.
#[derive(Debug, Clone)]
pub struct NetlistCrossCheck {
    /// Seed for the stimulus stream. Restarted for every obligation, so
    /// verdicts are independent of check order and parallelism.
    pub seed: u64,
    /// Input valuations compared per obligation.
    pub vectors: usize,
}

impl Default for NetlistCrossCheck {
    fn default() -> NetlistCrossCheck {
        NetlistCrossCheck {
            seed: 0x6e7_2005,
            vectors: 16,
        }
    }
}

impl NetlistCrossCheck {
    /// Cache-key tag for this regime: a verdict proved under a
    /// cross-check only replays for callers running the same one (see
    /// [`obligation_key_tagged`](crate::proofcache::obligation_key_tagged)).
    pub fn tag(&self) -> String {
        format!("xvec{:x}:{}", self.seed, self.vectors)
    }
}

/// [`check_netlist_obligation`] under an optional concrete cross-check:
/// a symbolic `Proved` must additionally survive
/// [`NetlistCrossCheck::vectors`] sampled differential executions.
/// `Disproved` and `Unknown` verdicts pass through untouched — the
/// cross-check can only *demote* a proof, never rescue one. Cached
/// callers must key these verdicts with
/// [`obligation_key_tagged`](crate::proofcache::obligation_key_tagged)
/// under [`NetlistCrossCheck::tag`].
pub fn check_netlist_obligation_with(
    ob: &NetlistObligation,
    opts: &ProveOptions,
    cross: Option<&NetlistCrossCheck>,
) -> ProveVerdict {
    let verdict = check_netlist_obligation(ob, opts);
    match (&verdict, cross) {
        (ProveVerdict::Proved { .. }, Some(c)) => match cross_check_obligation(ob, c) {
            Some(cex) => ProveVerdict::Disproved(cex),
            None => verdict,
        },
        _ => verdict,
    }
}

/// Executes one side of an obligation in its *own* fresh table from a
/// fully arbitrary start state. Inputs are created in variable order, so
/// ordinals line up across the two sides of an obligation (they share
/// one [`Function`](hls_ir::Function)). Returns the table, the final
/// observables (name, node) in variable order, and the created inputs.
#[allow(clippy::type_complexity)]
fn exec_fresh_side(
    lowered: &Lowered,
) -> Result<(SymTable, Vec<(String, SymId)>, Vec<(u32, Format, String)>), String> {
    let func = &lowered.func;
    let mut t = SymTable::new();
    let nvars = func.iter_vars().count();
    let mut st = FsmdState {
        regs: vec![None; nvars],
        arrays: vec![None; nvars],
    };
    let mut inputs: Vec<(u32, Format, String)> = Vec::new();
    for (id, v) in func.iter_vars() {
        let fmt = v.ty.format().unwrap_or_else(bool_format);
        match v.len {
            None => {
                let s = t.fresh_input(fmt);
                let (n, _) = t.input_info(s).expect("fresh input");
                inputs.push((n, fmt, v.name.clone()));
                st.regs[id.index()] = Some(s);
            }
            Some(len) => {
                let elems: Vec<SymId> = (0..len)
                    .map(|i| {
                        let s = t.fresh_input(fmt);
                        let (n, _) = t.input_info(s).expect("fresh input");
                        inputs.push((n, fmt, format!("{}[{i}]", v.name)));
                        s
                    })
                    .collect();
                st.arrays[id.index()] = Some(elems);
            }
        }
    }
    exec_lowered(&mut t, lowered, &mut st).map_err(|e| e.to_string())?;
    let mut observables = Vec::new();
    for (id, v) in func.iter_vars() {
        match v.len {
            None => {
                observables.push((v.name.clone(), st.regs[id.index()].expect("register state")));
            }
            Some(_) => {
                let elems = st.arrays[id.index()].as_ref().expect("array state");
                for (i, &s) in elems.iter().enumerate() {
                    observables.push((format!("{}[{i}]", v.name), s));
                }
            }
        }
    }
    Ok((t, observables, inputs))
}

/// Samples the two sides of an obligation in independent tables; `Some`
/// is a concrete divergence (the prover was wrong somewhere), `None`
/// means every sampled valuation agreed. A side the executor cannot run
/// returns `None` — the symbolic verdict (which executed the same
/// design) stands on its own there.
fn cross_check_obligation(ob: &NetlistObligation, cross: &NetlistCrossCheck) -> Option<ProofCex> {
    let (tb, before, inputs) = exec_fresh_side(&ob.before).ok()?;
    let (ta, after, inputs_after) = exec_fresh_side(&ob.after).ok()?;
    if before.len() != after.len() || inputs != inputs_after {
        // Sides over different state spaces never canonically agree, so
        // the symbolic checker already refused; nothing to sample.
        return None;
    }
    let broots: Vec<SymId> = before.iter().map(|&(_, s)| s).collect();
    let aroots: Vec<SymId> = after.iter().map(|&(_, s)| s).collect();
    let mut rng = SplitMix64(cross.seed);
    let mut evb = Evaluator::new();
    let mut eva = Evaluator::new();
    for _ in 0..cross.vectors {
        let valuation: HashMap<u32, Fixed> = inputs
            .iter()
            .map(|&(n, f, _)| (n, random_fixed(f, &mut rng)))
            .collect();
        let vb = evb.eval(&tb, &broots, &valuation);
        let va = eva.eval(&ta, &aroots, &valuation);
        for ((name, _), (b, a)) in before.iter().zip(vb.iter().zip(&va)) {
            if b != a {
                return Some(ProofCex {
                    observable: name.clone(),
                    inputs: inputs
                        .iter()
                        .map(|&(n, _, ref label)| (label.clone(), valuation[&n]))
                        .collect(),
                    ir_value: *b,
                    rtl_value: *a,
                });
            }
        }
    }
    None
}

/// Symbolically executes a lowered design (pre-schedule): segments in
/// order, straight-line DFGs evaluated node-by-node in construction order
/// (predecessors precede consumers), loop bodies once per trip with the
/// counter register stepped concretely between runs — exactly the
/// concretization the FSMD executor applies, so both layers of proof see
/// the same loop semantics.
pub fn exec_lowered(t: &mut SymTable, lowered: &Lowered, st: &mut FsmdState) -> ExecResult<()> {
    let func = &lowered.func;
    let mut values: Vec<Option<SymId>> = Vec::new();
    for seg in &lowered.segments {
        match seg {
            Segment::Straight { dfg } => run_dfg(t, func, dfg, st, &mut values)?,
            Segment::Loop {
                trip,
                counter,
                start,
                step,
                dfg,
                ..
            } => {
                let cfmt = func.var(*counter).ty.format().unwrap_or_else(bool_format);
                st.regs[counter.index()] = Some(t.constant(fixpt::Fixed::from_int(*start, cfmt)));
                for _ in 0..*trip {
                    run_dfg(t, func, dfg, st, &mut values)?;
                    let k = st.regs[counter.index()].expect("counter initialized");
                    let kv = t
                        .const_value(k)
                        .ok_or_else(|| Unsupported("loop counter became data-dependent".into()))?;
                    st.regs[counter.index()] =
                        Some(t.constant(fixpt::Fixed::from_int(kv.to_i64() + *step, cfmt)));
                }
            }
        }
    }
    Ok(())
}

fn run_dfg(
    t: &mut SymTable,
    func: &hls_ir::Function,
    dfg: &Dfg,
    st: &mut FsmdState,
    values: &mut Vec<Option<SymId>>,
) -> ExecResult<()> {
    values.clear();
    values.resize(dfg.len(), None);
    for (id, _) in dfg.iter() {
        let v = eval_node(t, func, dfg, id, values, st)?;
        values[id.index()] = Some(v);
    }
    Ok(())
}

fn unknown_all(func: &hls_ir::Function, reason: String) -> ProveVerdict {
    let unproved = func
        .params
        .iter()
        .map(|&p| func.var(p).name.clone())
        .collect();
    ProveVerdict::Unknown {
        reason,
        proved: 0,
        unproved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proofcache::obligation_key_tagged;
    use hls_core::{lower, optimize_lowered, Directives, NetlistOptConfig, TechLibrary};
    use hls_ir::parse_function;

    // Narrow on purpose: the corrupted-rewrite test below must land
    // within the exhaustive bit-blast budget so refutation is a theorem,
    // not a sample.
    const SRC: &str = r#"
        void kernel(sc_fixed<5,3> x[2], sc_fixed<9,5> *out) {
            sc_fixed<9,5> acc = 0;
            acc_loop: for (int k = 0; k < 2; k++) {
                acc += x[k] * 2;
            }
            *out = acc - x[0] + x[0];
        }
    "#;

    fn lowered_pair() -> Vec<NetlistObligation> {
        let func = parse_function(SRC).unwrap();
        let d = Directives::new(10.0);
        let mut low = lower(&func, &d);
        let outcome = optimize_lowered(
            &mut low,
            &NetlistOptConfig::default(),
            &TechLibrary::asic_100mhz(),
        );
        outcome.obligations
    }

    #[test]
    fn real_pass_obligations_prove() {
        let obs = lowered_pair();
        assert!(!obs.is_empty(), "default opt must rewrite something");
        for (ob, v) in obs
            .iter()
            .zip(check_netlist_obligations(&obs, &ProveOptions::default()))
        {
            assert!(v.is_proved(), "pass {} must prove, got {v:?}", ob.pass);
        }
    }

    #[test]
    fn cross_check_preserves_passing_verdicts_exactly() {
        let obs = lowered_pair();
        assert!(!obs.is_empty(), "default opt must rewrite something");
        let opts = ProveOptions::default();
        let cross = NetlistCrossCheck::default();
        for ob in &obs {
            let plain = check_netlist_obligation(ob, &opts);
            let checked = check_netlist_obligation_with(ob, &opts, Some(&cross));
            assert_eq!(
                format!("{plain:?}"),
                format!("{checked:?}"),
                "a passing cross-check must not perturb the verdict"
            );
        }
    }

    #[test]
    fn cross_check_regime_keys_never_alias() {
        let obs = lowered_pair();
        let opts = ProveOptions::default();
        let cross = NetlistCrossCheck::default();
        let tagged: Vec<String> = obs
            .iter()
            .map(|ob| obligation_key_tagged(ob, &opts, &cross.tag()))
            .collect();
        assert_ne!(
            obligation_key(&obs[0], &opts),
            tagged[0],
            "cross-checked verdicts live under their own keys"
        );
        let cache = ProofCache::in_memory();
        let first =
            check_netlist_obligations_keyed(&obs, Some(&tagged), &opts, Some(&cross), Some(&cache));
        let second =
            check_netlist_obligations_keyed(&obs, Some(&tagged), &opts, Some(&cross), Some(&cache));
        assert_eq!(
            format!("{first:?}"),
            format!("{second:?}"),
            "replayed verdicts are byte-identical to fresh ones"
        );
        assert!(cache.stats().hits >= obs.len() as u64, "second run replays");
        // The plain regime's keys still miss: a verdict proved under a
        // cross-check never stands in for one proved without it (or vice
        // versa).
        assert!(cache
            .get_obligation(&obligation_key(&obs[0], &opts))
            .is_none());
    }

    #[test]
    fn cross_check_refutes_unsound_rewrites() {
        let func = parse_function(SRC).unwrap();
        let d = Directives::new(10.0);
        let mut low = lower(&func, &d);
        let ob = hls_core::apply_unsound_rewrite_for_selftest(&mut low)
            .expect("kernel has a subtraction to corrupt");
        let cross = NetlistCrossCheck::default();
        match check_netlist_obligation_with(&ob, &ProveOptions::default(), Some(&cross)) {
            ProveVerdict::Disproved(cex) => {
                assert!(!cex.inputs.is_empty(), "counterexample names its inputs");
            }
            v => panic!("unsound rewrite must stay disproved, got {v:?}"),
        }
    }

    #[test]
    fn unsound_rewrite_is_refuted() {
        // The deliberately broken self-test rewrite (operand swap on a
        // subtraction) must be caught — this is the mutation test for the
        // equivalence gate itself.
        let func = parse_function(SRC).unwrap();
        let d = Directives::new(10.0);
        let mut low = lower(&func, &d);
        let ob = hls_core::apply_unsound_rewrite_for_selftest(&mut low)
            .expect("kernel has a subtraction to corrupt");
        match check_netlist_obligation(&ob, &ProveOptions::default()) {
            ProveVerdict::Disproved(cex) => {
                assert!(!cex.inputs.is_empty(), "counterexample names its inputs");
            }
            v => panic!("unsound rewrite must be disproved, got {v:?}"),
        }
    }
}
