//! Per-pass equivalence obligations for the netlist optimizer.
//!
//! Every rewrite the netlist pass manager performs ships a
//! [`NetlistObligation`] — the lowered design before and after one pass.
//! This module discharges them: both designs execute symbolically over one
//! shared [`SymTable`] from a common *fully arbitrary* start state (every
//! register and array element a fresh free input, so the proof covers
//! every reachable machine state, not just the reset state), and every
//! final register and array element is an observable that must agree.
//!
//! Obligations discharge exactly like the end-to-end prover: canonical
//! equality first (the normalizing construction interned both sides to
//! one node), then exhaustive bit-blast over narrow input cones, and
//! [`ProveVerdict::Unknown`] otherwise — never silently assumed. The
//! end-to-end IR↔FSMD gate still verifies the *optimized* design, so an
//! `Unknown` here only costs per-pass attribution, not soundness.

use std::collections::HashMap;

use hls_core::dfg::Dfg;
use hls_core::{Lowered, NetlistObligation, Segment};

use crate::equiv::{bit_blast, Obligation, ProofMethod, ProveOptions, ProveVerdict};
use crate::fsmd_exec::{eval_node, FsmdState};
use crate::state::{ExecResult, Unsupported};
use crate::sym::{bool_format, Evaluator, SymId, SymTable};

/// Checks every obligation of one synthesis run; returns one verdict per
/// obligation, in order.
pub fn check_netlist_obligations(
    obligations: &[NetlistObligation],
    opts: &ProveOptions,
) -> Vec<ProveVerdict> {
    obligations
        .iter()
        .map(|ob| check_netlist_obligation(ob, opts))
        .collect()
}

/// Proves (or refutes, or gives up on) one pass's rewrite: the lowered
/// design after the pass must compute the same final state as the design
/// before it, for every input and every start state.
pub fn check_netlist_obligation(ob: &NetlistObligation, opts: &ProveOptions) -> ProveVerdict {
    let func = &ob.before.func;
    let mut t = SymTable::new();
    let mut names: HashMap<u32, String> = HashMap::new();

    // Fully arbitrary start state, shared by both sides: a netlist pass
    // must preserve the segment semantics from *any* register contents
    // (segments run mid-design, after arbitrary prior state updates).
    let nvars = func.iter_vars().count();
    let mut init = FsmdState {
        regs: vec![None; nvars],
        arrays: vec![None; nvars],
    };
    for (id, v) in func.iter_vars() {
        let fmt = v.ty.format().unwrap_or_else(bool_format);
        match v.len {
            None => {
                let s = t.fresh_input(fmt);
                let (n, _) = t.input_info(s).expect("fresh input");
                names.insert(n, v.name.clone());
                init.regs[id.index()] = Some(s);
            }
            Some(len) => {
                let elems: Vec<SymId> = (0..len)
                    .map(|i| {
                        let s = t.fresh_input(fmt);
                        let (n, _) = t.input_info(s).expect("fresh input");
                        names.insert(n, format!("{}[{i}]", v.name));
                        s
                    })
                    .collect();
                init.arrays[id.index()] = Some(elems);
            }
        }
    }

    let mut before = init.clone();
    if let Err(e) = exec_lowered(&mut t, &ob.before, &mut before) {
        return unknown_all(func, format!("{}: before side: {e}", ob.pass));
    }
    let mut after = init;
    if let Err(e) = exec_lowered(&mut t, &ob.after, &mut after) {
        return unknown_all(func, format!("{}: after side: {e}", ob.pass));
    }

    // Every final register and array element must agree — a netlist pass
    // may not change *any* architectural state, observable or not (a
    // later segment may read it).
    let mut pairs: Vec<(String, SymId, SymId)> = Vec::new();
    for (id, v) in func.iter_vars() {
        match v.len {
            None => {
                let a = before.regs[id.index()].expect("register state");
                let b = after.regs[id.index()].expect("register state");
                pairs.push((v.name.clone(), a, b));
            }
            Some(_) => {
                let a = before.arrays[id.index()].as_ref().expect("array state");
                let b = after.arrays[id.index()].as_ref().expect("array state");
                for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
                    pairs.push((format!("{}[{i}]", v.name), x, y));
                }
            }
        }
    }

    let mut proved: Vec<Obligation> = Vec::new();
    let mut unproved: Vec<String> = Vec::new();
    let mut ev = Evaluator::new();
    for (name, a, b) in pairs {
        if a == b {
            proved.push(Obligation {
                name,
                method: ProofMethod::Canonical,
            });
            continue;
        }
        let support = t.support(&[a, b]);
        let bits: u32 = support.iter().map(|&(_, f, _)| f.width()).sum();
        if bits > opts.max_blast_bits {
            unproved.push(format!("{name} (cone {bits} bits)"));
            continue;
        }
        match bit_blast(&t, &mut ev, &name, a, b, &support, &names) {
            Ok(points) => proved.push(Obligation {
                name,
                method: ProofMethod::BitBlast { points },
            }),
            Err(cex) => return ProveVerdict::Disproved(cex),
        }
    }

    if unproved.is_empty() {
        ProveVerdict::Proved {
            obligations: proved,
            sym_nodes: t.len(),
        }
    } else {
        ProveVerdict::Unknown {
            reason: format!("{}: input cones too wide for exhaustive bit-blast", ob.pass),
            proved: proved.len(),
            unproved,
        }
    }
}

/// Symbolically executes a lowered design (pre-schedule): segments in
/// order, straight-line DFGs evaluated node-by-node in construction order
/// (predecessors precede consumers), loop bodies once per trip with the
/// counter register stepped concretely between runs — exactly the
/// concretization the FSMD executor applies, so both layers of proof see
/// the same loop semantics.
pub fn exec_lowered(t: &mut SymTable, lowered: &Lowered, st: &mut FsmdState) -> ExecResult<()> {
    let func = &lowered.func;
    let mut values: Vec<Option<SymId>> = Vec::new();
    for seg in &lowered.segments {
        match seg {
            Segment::Straight { dfg } => run_dfg(t, func, dfg, st, &mut values)?,
            Segment::Loop {
                trip,
                counter,
                start,
                step,
                dfg,
                ..
            } => {
                let cfmt = func.var(*counter).ty.format().unwrap_or_else(bool_format);
                st.regs[counter.index()] = Some(t.constant(fixpt::Fixed::from_int(*start, cfmt)));
                for _ in 0..*trip {
                    run_dfg(t, func, dfg, st, &mut values)?;
                    let k = st.regs[counter.index()].expect("counter initialized");
                    let kv = t
                        .const_value(k)
                        .ok_or_else(|| Unsupported("loop counter became data-dependent".into()))?;
                    st.regs[counter.index()] =
                        Some(t.constant(fixpt::Fixed::from_int(kv.to_i64() + *step, cfmt)));
                }
            }
        }
    }
    Ok(())
}

fn run_dfg(
    t: &mut SymTable,
    func: &hls_ir::Function,
    dfg: &Dfg,
    st: &mut FsmdState,
    values: &mut Vec<Option<SymId>>,
) -> ExecResult<()> {
    values.clear();
    values.resize(dfg.len(), None);
    for (id, _) in dfg.iter() {
        let v = eval_node(t, func, dfg, id, values, st)?;
        values[id.index()] = Some(v);
    }
    Ok(())
}

fn unknown_all(func: &hls_ir::Function, reason: String) -> ProveVerdict {
    let unproved = func
        .params
        .iter()
        .map(|&p| func.var(p).name.clone())
        .collect();
    ProveVerdict::Unknown {
        reason,
        proved: 0,
        unproved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_core::{lower, optimize_lowered, Directives, NetlistOptConfig, TechLibrary};
    use hls_ir::parse_function;

    // Narrow on purpose: the corrupted-rewrite test below must land
    // within the exhaustive bit-blast budget so refutation is a theorem,
    // not a sample.
    const SRC: &str = r#"
        void kernel(sc_fixed<5,3> x[2], sc_fixed<9,5> *out) {
            sc_fixed<9,5> acc = 0;
            acc_loop: for (int k = 0; k < 2; k++) {
                acc += x[k] * 2;
            }
            *out = acc - x[0] + x[0];
        }
    "#;

    fn lowered_pair() -> Vec<NetlistObligation> {
        let func = parse_function(SRC).unwrap();
        let d = Directives::new(10.0);
        let mut low = lower(&func, &d);
        let outcome = optimize_lowered(
            &mut low,
            &NetlistOptConfig::default(),
            &TechLibrary::asic_100mhz(),
        );
        outcome.obligations
    }

    #[test]
    fn real_pass_obligations_prove() {
        let obs = lowered_pair();
        assert!(!obs.is_empty(), "default opt must rewrite something");
        for (ob, v) in obs
            .iter()
            .zip(check_netlist_obligations(&obs, &ProveOptions::default()))
        {
            assert!(v.is_proved(), "pass {} must prove, got {v:?}", ob.pass);
        }
    }

    #[test]
    fn unsound_rewrite_is_refuted() {
        // The deliberately broken self-test rewrite (operand swap on a
        // subtraction) must be caught — this is the mutation test for the
        // equivalence gate itself.
        let func = parse_function(SRC).unwrap();
        let d = Directives::new(10.0);
        let mut low = lower(&func, &d);
        let ob = hls_core::apply_unsound_rewrite_for_selftest(&mut low)
            .expect("kernel has a subtraction to corrupt");
        match check_netlist_obligation(&ob, &ProveOptions::default()) {
            ProveVerdict::Disproved(cex) => {
                assert!(!cex.inputs.is_empty(), "counterexample names its inputs");
            }
            v => panic!("unsound rewrite must be disproved, got {v:?}"),
        }
    }
}
