//! Robustness: the front-end must reject arbitrary garbage with an error —
//! never panic — and round-trip structured programs it generated itself.

use hls_ir::parse_function;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary printable input never panics the parser.
    #[test]
    fn arbitrary_text_never_panics(s in "[ -~\n]{0,160}") {
        let _ = parse_function(&s);
    }

    /// Token-shaped garbage (valid lexemes, random order) never panics.
    #[test]
    fn token_soup_never_panics(parts in prop::collection::vec(
        prop::sample::select(vec![
            "void", "f", "(", ")", "{", "}", "[", "]", "int8", "sc_fixed",
            "<", ">", ",", ";", ":", "for", "if", "else", "static", "const",
            "=", "+=", "-=", "+", "-", "*", ">>", "<<", "?", "0", "7", "1.5",
            "x", "y", "k", "sign", "==", "<=", ">=", "++", "--", "999999999999",
        ]),
        0..48,
    )) {
        let src = parts.join(" ");
        let _ = parse_function(&src);
    }

    /// Generated well-formed accumulate programs always parse, validate and
    /// carry the right loop structure.
    #[test]
    fn generated_programs_roundtrip(n in 1i64..32, w in 4u32..16, shift in 0i64..8) {
        let src = format!(
            "void g(sc_fixed<{w},2> x[{n}], sc_fixed<20,8> *out) {{
                sc_fixed<20,8> acc = 0;
                l: for (int k = 0; k < {n}; k++) {{
                    acc += x[k] >> {shift};
                }}
                *out = acc;
            }}"
        );
        let f = parse_function(&src).expect("well-formed program parses");
        prop_assert!(hls_ir::validate(&f).is_empty());
        prop_assert_eq!(f.find_loop("l").expect("loop").trip_count(), n as usize);
    }
}
