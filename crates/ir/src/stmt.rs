//! Statements and structured loops.

use crate::expr::{CmpOp, Expr};
use crate::func::VarId;

/// Safety cap on statically-evaluated trip counts.
pub const MAX_TRIP_COUNT: usize = 1 << 20;

/// A counted `for` loop with compile-time bounds, as written in the paper's
/// C source (`nfe: for(int k=0; k < nffe; k++) …`).
#[derive(Debug, Clone, PartialEq)]
pub struct Loop {
    /// The C label (used to address the loop from synthesis directives).
    pub label: String,
    /// The loop counter variable.
    pub var: VarId,
    /// Initial counter value.
    pub start: i64,
    /// Comparison between counter and `bound` that keeps the loop running.
    pub cmp: CmpOp,
    /// Loop bound.
    pub bound: i64,
    /// Per-iteration counter increment (may be negative).
    pub step: i64,
    /// Loop body.
    pub body: Vec<Stmt>,
}

impl Loop {
    /// The sequence of values taken by the counter, in execution order.
    ///
    /// Returns an empty vector for loops that never execute. The sequence is
    /// capped at [`MAX_TRIP_COUNT`] as a safety net against non-terminating
    /// bounds (e.g. a zero step).
    pub fn iteration_values(&self) -> Vec<i64> {
        let mut vals = Vec::new();
        let mut k = self.start;
        while self.cmp.eval(k.cmp(&self.bound)) {
            vals.push(k);
            if self.step == 0 || vals.len() >= MAX_TRIP_COUNT {
                break;
            }
            k += self.step;
        }
        vals
    }

    /// Number of iterations the loop executes.
    pub fn trip_count(&self) -> usize {
        self.iteration_values().len()
    }

    /// `true` when the counter sequence is affine in the iteration index
    /// (`k = start + m * step`), which all counted loops are; kept for
    /// clarity at call sites performing affine counter substitution.
    pub fn is_affine(&self) -> bool {
        true
    }

    /// Counter value at iteration `m` (affine form).
    pub fn counter_at(&self, m: usize) -> i64 {
        self.start + m as i64 * self.step
    }
}

/// A structured statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Assignment to a scalar variable; the value is cast to the variable's
    /// declared type with default modes (C++ assignment semantics).
    Assign {
        /// Destination variable.
        var: VarId,
        /// Value expression.
        value: Expr,
    },
    /// Store into `array[index]`; the value is cast to the element type.
    Store {
        /// Destination array.
        array: VarId,
        /// Element index.
        index: Expr,
        /// Value expression.
        value: Expr,
    },
    /// A counted loop.
    For(Loop),
    /// A two-way conditional.
    If {
        /// Condition (boolean).
        cond: Expr,
        /// Statements executed when true.
        then_: Vec<Stmt>,
        /// Statements executed when false.
        else_: Vec<Stmt>,
    },
}

impl Stmt {
    /// Visits every statement in this subtree, pre-order.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Stmt)) {
        f(self);
        match self {
            Stmt::Assign { .. } | Stmt::Store { .. } => {}
            Stmt::For(l) => {
                for s in &l.body {
                    s.visit(f);
                }
            }
            Stmt::If { then_, else_, .. } => {
                for s in then_ {
                    s.visit(f);
                }
                for s in else_ {
                    s.visit(f);
                }
            }
        }
    }

    /// Variables written (directly or in nested statements), including
    /// arrays stored to and loop counters.
    pub fn writes(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.visit(&mut |s| match s {
            Stmt::Assign { var, .. } => out.push(*var),
            Stmt::Store { array, .. } => out.push(*array),
            Stmt::For(l) => out.push(l.var),
            Stmt::If { .. } => {}
        });
        out
    }

    /// Variables read (directly or in nested statements).
    pub fn reads(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.visit(&mut |s| match s {
            Stmt::Assign { value, .. } => out.extend(value.reads()),
            Stmt::Store { index, value, .. } => {
                out.extend(index.reads());
                out.extend(value.reads());
            }
            Stmt::For(l) => {
                // The body reads are collected by the visitor; the counter
                // itself is loop-internal but body loads read it.
                let _ = l;
            }
            Stmt::If { cond, .. } => out.extend(cond.reads()),
        });
        out
    }
}

/// Finds every loop (recursively) in a statement list, pre-order.
pub fn collect_loops(stmts: &[Stmt]) -> Vec<&Loop> {
    let mut loops = Vec::new();
    for s in stmts {
        s.visit(&mut |s| {
            if let Stmt::For(l) = s {
                loops.push(l);
            }
        });
    }
    loops
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mkloop(start: i64, cmp: CmpOp, bound: i64, step: i64) -> Loop {
        Loop {
            label: "l".into(),
            var: VarId::from_raw(0),
            start,
            cmp,
            bound,
            step,
            body: vec![],
        }
    }

    #[test]
    fn ascending_loop() {
        // for(k=0; k<8; k++) — the paper's ffe loop.
        let l = mkloop(0, CmpOp::Lt, 8, 1);
        assert_eq!(l.trip_count(), 8);
        assert_eq!(l.iteration_values(), vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn descending_step_two() {
        // for(k=nffe-4; k>=0; k-=2) — the paper's ffe_shift loop (nffe=8).
        let l = mkloop(4, CmpOp::Ge, 0, -2);
        assert_eq!(l.iteration_values(), vec![4, 2, 0]);
        assert_eq!(l.trip_count(), 3);
    }

    #[test]
    fn descending_by_one() {
        // for(k=ndfe-2; k>=0; k--) — the paper's dfe_shift loop (ndfe=16).
        let l = mkloop(14, CmpOp::Ge, 0, -1);
        assert_eq!(l.trip_count(), 15);
        assert_eq!(l.counter_at(0), 14);
        assert_eq!(l.counter_at(14), 0);
    }

    #[test]
    fn empty_loop() {
        let l = mkloop(5, CmpOp::Lt, 5, 1);
        assert_eq!(l.trip_count(), 0);
    }

    #[test]
    fn zero_step_capped() {
        let l = mkloop(0, CmpOp::Lt, 5, 0);
        assert_eq!(l.trip_count(), 1); // capped immediately after one value
    }

    #[test]
    fn counter_at_matches_sequence() {
        let l = mkloop(3, CmpOp::Le, 21, 3);
        for (m, v) in l.iteration_values().iter().enumerate() {
            assert_eq!(l.counter_at(m), *v);
        }
    }

    #[test]
    fn writes_and_loops() {
        let inner = Stmt::Assign {
            var: VarId::from_raw(3),
            value: Expr::int_const(0),
        };
        let l = Loop {
            body: vec![inner],
            ..mkloop(0, CmpOp::Lt, 4, 1)
        };
        let s = Stmt::For(l);
        let w = s.writes();
        assert!(w.contains(&VarId::from_raw(3)));
        assert!(w.contains(&VarId::from_raw(0)));
        let loops = collect_loops(std::slice::from_ref(&s));
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].label, "l");
    }
}
