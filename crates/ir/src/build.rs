//! Fluent construction of IR functions.
//!
//! The builder stands in for Catapult C's C++ front-end: it is how an
//! algorithm written against the untimed programming model enters the flow.

use crate::expr::{CmpOp, Expr};
use crate::func::{Function, Var, VarId, VarKind};
use crate::stmt::{Loop, Stmt};
use crate::ty::Ty;

/// Builds a [`Function`] statement by statement.
///
/// # Examples
///
/// ```
/// use hls_ir::{FunctionBuilder, Ty, Expr, CmpOp};
///
/// let mut b = FunctionBuilder::new("accumulate");
/// let x = b.param_array("x", Ty::int(10), 8);
/// let out = b.param_scalar("out", Ty::int(14));
/// let acc = b.local("acc", Ty::int(14));
/// b.assign(acc, Expr::int_const(0));
/// b.for_loop("sum", 0, CmpOp::Lt, 8, 1, |b, k| {
///     b.assign(acc, Expr::add(Expr::var(acc), Expr::load(x, Expr::var(k))));
/// });
/// b.assign(out, Expr::var(acc));
/// let f = b.build();
/// assert_eq!(f.loop_labels(), vec!["sum"]);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    vars: Vec<Var>,
    params: Vec<VarId>,
    stack: Vec<Vec<Stmt>>,
}

impl FunctionBuilder {
    /// Starts building a function named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        FunctionBuilder {
            name: name.into(),
            vars: Vec::new(),
            params: Vec::new(),
            stack: vec![Vec::new()],
        }
    }

    fn add_var(
        &mut self,
        name: impl Into<String>,
        ty: Ty,
        kind: VarKind,
        len: Option<usize>,
    ) -> VarId {
        let id = VarId::from_raw(self.vars.len() as u32);
        self.vars.push(Var {
            name: name.into(),
            ty,
            kind,
            len,
        });
        id
    }

    /// Declares a scalar parameter.
    pub fn param_scalar(&mut self, name: impl Into<String>, ty: Ty) -> VarId {
        let id = self.add_var(name, ty, VarKind::Param, None);
        self.params.push(id);
        id
    }

    /// Declares an array parameter of `len` elements.
    pub fn param_array(&mut self, name: impl Into<String>, ty: Ty, len: usize) -> VarId {
        let id = self.add_var(name, ty, VarKind::Param, Some(len));
        self.params.push(id);
        id
    }

    /// Declares a `static` scalar (state preserved across calls, zero
    /// initialized).
    pub fn static_scalar(&mut self, name: impl Into<String>, ty: Ty) -> VarId {
        self.add_var(name, ty, VarKind::Static, None)
    }

    /// Declares a `static` array of `len` elements (zero initialized).
    pub fn static_array(&mut self, name: impl Into<String>, ty: Ty, len: usize) -> VarId {
        self.add_var(name, ty, VarKind::Static, Some(len))
    }

    /// Declares a local scalar temporary.
    pub fn local(&mut self, name: impl Into<String>, ty: Ty) -> VarId {
        self.add_var(name, ty, VarKind::Local, None)
    }

    /// Declares a local array.
    pub fn local_array(&mut self, name: impl Into<String>, ty: Ty, len: usize) -> VarId {
        self.add_var(name, ty, VarKind::Local, Some(len))
    }

    fn push(&mut self, s: Stmt) {
        self.stack
            .last_mut()
            .expect("builder scope stack is never empty")
            .push(s);
    }

    /// Emits `var = value`.
    pub fn assign(&mut self, var: VarId, value: Expr) {
        self.push(Stmt::Assign { var, value });
    }

    /// Emits `array[index] = value`.
    pub fn store(&mut self, array: VarId, index: Expr, value: Expr) {
        self.push(Stmt::Store {
            array,
            index,
            value,
        });
    }

    /// Emits a labelled counted loop
    /// `label: for (k = start; k cmp bound; k += step) { body }`.
    ///
    /// The closure receives the builder and the fresh counter variable.
    /// Counters default to a signed 32-bit type (the C `int`); the bitwidth
    /// inference pass narrows them (Figure 2 of the paper).
    pub fn for_loop(
        &mut self,
        label: impl Into<String>,
        start: i64,
        cmp: CmpOp,
        bound: i64,
        step: i64,
        body: impl FnOnce(&mut Self, VarId),
    ) {
        let label = label.into();
        let var = self.add_var(format!("{label}_k"), Ty::int(32), VarKind::Counter, None);
        self.stack.push(Vec::new());
        body(self, var);
        let stmts = self.stack.pop().expect("loop scope present");
        self.push(Stmt::For(Loop {
            label,
            var,
            start,
            cmp,
            bound,
            step,
            body: stmts,
        }));
    }

    /// Emits `if (cond) { then } else { else }`.
    pub fn if_else(
        &mut self,
        cond: Expr,
        then_: impl FnOnce(&mut Self),
        else_: impl FnOnce(&mut Self),
    ) {
        self.stack.push(Vec::new());
        then_(self);
        let t = self.stack.pop().expect("then scope present");
        self.stack.push(Vec::new());
        else_(self);
        let e = self.stack.pop().expect("else scope present");
        self.push(Stmt::If {
            cond,
            then_: t,
            else_: e,
        });
    }

    /// Emits `if (cond) { then }` with no else branch.
    pub fn if_then(&mut self, cond: Expr, then_: impl FnOnce(&mut Self)) {
        self.if_else(cond, then_, |_| {});
    }

    /// Finishes construction.
    ///
    /// # Panics
    ///
    /// Panics if called while a loop or conditional scope is still open
    /// (cannot happen through the closure-based API).
    pub fn build(mut self) -> Function {
        assert_eq!(self.stack.len(), 1, "unclosed scopes at build()");
        Function {
            name: self.name,
            vars: self.vars,
            params: self.params,
            body: self.stack.pop().expect("body scope"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_scopes() {
        let mut b = FunctionBuilder::new("g");
        let a = b.local("a", Ty::int(8));
        b.assign(a, Expr::int_const(0));
        b.for_loop("outer", 0, CmpOp::Lt, 4, 1, |b, i| {
            b.for_loop("inner", 0, CmpOp::Lt, 2, 1, |b, j| {
                b.assign(a, Expr::add(Expr::var(i), Expr::var(j)));
            });
        });
        let f = b.build();
        assert_eq!(f.loop_labels(), vec!["outer", "inner"]);
        assert_eq!(f.find_loop("inner").unwrap().trip_count(), 2);
    }

    #[test]
    fn if_scopes() {
        let mut b = FunctionBuilder::new("h");
        let a = b.local("a", Ty::int(8));
        b.if_else(
            Expr::cmp(CmpOp::Gt, Expr::var(a), Expr::int_const(0)),
            |b| b.assign(a, Expr::int_const(1)),
            |b| b.assign(a, Expr::int_const(-1)),
        );
        let f = b.build();
        match &f.body[0] {
            Stmt::If { then_, else_, .. } => {
                assert_eq!(then_.len(), 1);
                assert_eq!(else_.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn counters_get_named_after_labels() {
        let mut b = FunctionBuilder::new("f");
        b.for_loop("ffe", 0, CmpOp::Lt, 8, 1, |_, _| {});
        let f = b.build();
        let l = f.find_loop("ffe").unwrap();
        assert_eq!(f.var(l.var).name, "ffe_k");
        assert_eq!(f.var(l.var).kind, VarKind::Counter);
    }
}
