//! Typed structured intermediate representation for algorithmic synthesis.
//!
//! This crate is the front half of the flow described in *C Based Hardware
//! Design for Wireless Applications* (DATE 2005). Where Catapult C consumes
//! untimed C++, this reproduction consumes IR built through
//! [`FunctionBuilder`] — the same constructs the paper's Figure 4 uses:
//! labelled counted loops, static state arrays, fixed-point expressions with
//! explicit quantization/overflow casts, and typed parameters whose
//! direction (in/out/inout) is inferred from use.
//!
//! The crate also carries the two analyses the synthesis engine relies on:
//!
//! - [`validate`] — structural and type checking,
//! - [`bitwidth`] — automatic bit reduction (the paper's Figure 2), and
//! - [`Interpreter`] — a bit-accurate executable semantics that serves as
//!   the golden reference for loop transforms and generated RTL.
//!
//! # Example
//!
//! ```
//! use hls_ir::{FunctionBuilder, Ty, Expr, CmpOp, Interpreter, Slot, validate};
//! use fixpt::{Fixed, Format};
//!
//! let mut b = FunctionBuilder::new("scale");
//! let x = b.param_array("x", Ty::fixed(10, 2), 4);
//! let out = b.param_array("y", Ty::fixed(10, 2), 4);
//! b.for_loop("s", 0, CmpOp::Lt, 4, 1, |b, k| {
//!     let half = Expr::Const(Fixed::from_f64(0.5, Format::signed(2, 1)));
//!     b.store(out, Expr::var(k), Expr::mul(Expr::load(x, Expr::var(k)), half));
//! });
//! let f = b.build();
//! assert!(validate(&f).is_empty());
//!
//! let mut interp = Interpreter::new(f);
//! let fmt = Format::signed(10, 2);
//! let input = Slot::Array(vec![Fixed::from_f64(1.5, fmt); 4]);
//! let result = interp.call(&[(x, input)])?;
//! assert_eq!(result[&out].array().unwrap()[0].to_f64(), 0.75);
//! # Ok::<(), hls_ir::EvalError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitwidth;
mod build;
pub mod diag;
mod expr;
mod func;
mod interp;
pub mod json;
mod parse;
mod stmt;
mod ty;
mod validate;

pub use build::FunctionBuilder;
pub use diag::{Anchor, Diagnostic, Diagnostics, Severity};
pub use expr::{BinOp, CmpOp, Expr, UnOp};
pub use func::{Direction, Function, Var, VarId, VarKind};
pub use interp::{EvalError, Interpreter, Slot, Value};
pub use json::{stable_digest, Json, JsonError};
pub use parse::{parse_function, ParseError};
pub use stmt::{collect_loops, Loop, Stmt, MAX_TRIP_COUNT};
pub use ty::Ty;
pub use validate::{validate, validate_diagnostics, ValidateError};
