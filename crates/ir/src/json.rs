//! A small self-contained JSON value type, parser and writer.
//!
//! The build environment is fully offline (no crates.io), so artifact
//! serialization cannot lean on `serde`. This module provides the one JSON
//! layer every crate shares: [`Json`] is a plain tree, [`Json::parse`] is a
//! strict recursive-descent reader, and [`Json::write`] emits a compact,
//! deterministic encoding (object keys keep insertion order, floats use
//! Rust's shortest round-trip formatting, so `parse(write(v)) == v`).
//!
//! Exact integers wider than an `f64` mantissa (e.g. `fixpt::Fixed::raw`
//! payloads) must be carried as strings by the schema; [`Json::Num`] is a
//! lossless `f64` only.

use std::fmt;

use crate::diag::json_str;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number. Non-finite floats are written as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is preserved (and significant for the writer),
    /// which keeps serialized artifacts byte-stable across processes.
    Obj(Vec<(String, Json)>),
}

/// Error produced by [`Json::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number from anything convertible to `f64` without loss of
    /// the magnitudes this codebase stores (counts, widths, areas).
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Builds a number from a `u64` count (callers keep counts < 2^53).
    pub fn count(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Builds a number from a `usize` count.
    pub fn size(n: usize) -> Json {
        Json::Num(n as f64)
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The numeric payload as an `i64`, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// First value under `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Parses a complete JSON document (rejects trailing garbage).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Writes the compact deterministic encoding.
    pub fn write(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.is_finite() {
                    // Rust's shortest formatting round-trips exactly through
                    // str::parse::<f64>.
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => out.push_str(&json_str(s)),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&json_str(k));
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// A stable 128-bit content digest rendered as 32 lowercase hex digits.
///
/// Two independent FNV-1a-64 passes with distinct offset bases; no
/// cryptographic strength is claimed — consumers that need integrity store
/// the preimage next to the digest and compare on load, so a collision
/// degrades to a cache miss, never to wrong data. Dependency-free and
/// byte-stable across processes and platforms.
pub fn stable_digest(bytes: &[u8]) -> String {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut a: u64 = 0xcbf2_9ce4_8422_2325;
    let mut b: u64 = 0x6c62_272e_07bb_0142;
    for &byte in bytes {
        a = (a ^ byte as u64).wrapping_mul(PRIME);
        b = (b ^ byte as u64).wrapping_mul(PRIME).rotate_left(1);
    }
    format!("{a:016x}{b:016x}")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs are not produced by our writer;
                            // decode lone escapes, pair high+low when present.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c).ok_or_else(|| self.err("bad surrogate"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("bad codepoint"))?
                            };
                            out.push(ch);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume the whole run of ordinary bytes at once. The
                    // run splits only at ASCII delimiters, so it stays valid
                    // UTF-8 given a `&str` input (continuation bytes are
                    // ≥ 0x80 and never match a delimiter).
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'"' || c == b'\\' || c < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\\n\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.write()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn round_trips_shortest_float() {
        let v = Json::Num(0.1 + 0.2);
        let back = Json::parse(&v.write()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn preserves_object_order() {
        let v = Json::obj(vec![
            ("zebra", Json::count(1)),
            ("alpha", Json::Arr(vec![Json::Null, Json::Bool(true)])),
        ]);
        assert_eq!(v.write(), "{\"zebra\":1,\"alpha\":[null,true]}");
        assert_eq!(Json::parse(&v.write()).unwrap(), v);
    }

    #[test]
    fn accessors() {
        let v = Json::parse("{\"a\": [1, 2.5], \"b\": \"x\"}").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn digest_is_stable_and_input_sensitive() {
        assert_eq!(stable_digest(b"abc"), stable_digest(b"abc"));
        assert_ne!(stable_digest(b"abc"), stable_digest(b"abd"));
        assert_eq!(stable_digest(b"").len(), 32);
        assert!(stable_digest(b"x").chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn rejects_garbage() {
        for text in ["", "{", "[1,", "nul", "\"unterminated", "{\"a\" 1}", "1 2"] {
            assert!(Json::parse(text).is_err(), "{text}");
        }
    }

    #[test]
    fn unicode_escapes() {
        let v = Json::parse("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
    }
}
