//! Lexer for the C-like front-end.

use std::fmt;

/// A token with its source position (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind/payload.
    pub kind: Tok,
    /// 1-based line number.
    pub line: u32,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A decimal literal (kept as text for exact binary conversion).
    Decimal(String),
    /// Punctuation / operator.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "`{v}`"),
            Tok::Decimal(s) => write!(f, "`{s}`"),
            Tok::Punct(p) => write!(f, "`{p}`"),
            Tok::Eof => f.write_str("end of input"),
        }
    }
}

/// A lexing error.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// The offending character.
    pub ch: char,
    /// 1-based line.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unexpected character `{}` on line {}",
            self.ch, self.line
        )
    }
}

impl std::error::Error for LexError {}

/// Multi-character operators, longest first.
const PUNCTS: [&str; 28] = [
    "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "++", "--", "<<", ">>",
    "(", ")", "{", "}", "[", "]", "<", ">", ",", ";", ":", "?", "=",
];

/// Single-character operators not prefixing any multi-char one.
const SINGLE: [&str; 6] = ["+", "-", "*", "/", "!", "&"];

/// Tokenizes `src`. `//` and `/* */` comments and `#pragma` lines are
/// skipped.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1u32;
    'outer: while i < bytes.len() {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments and pragmas.
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == '/' {
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == '*' {
            i += 2;
            while i + 1 < bytes.len() && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                if bytes[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            i += 2;
            continue;
        }
        if c == '#' {
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
            continue;
        }
        // Numbers (integers and decimals).
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            if i < bytes.len() && bytes[i] == '.' {
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                out.push(Token {
                    kind: Tok::Decimal(text),
                    line,
                });
            } else {
                let text: String = bytes[start..i].iter().collect();
                let v = text.parse::<i64>().unwrap_or(0);
                out.push(Token {
                    kind: Tok::Int(v),
                    line,
                });
            }
            continue;
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                i += 1;
            }
            out.push(Token {
                kind: Tok::Ident(bytes[start..i].iter().collect()),
                line,
            });
            continue;
        }
        // Operators (longest match first).
        for p in PUNCTS.iter().chain(SINGLE.iter()) {
            let pl = p.chars().count();
            if bytes[i..].iter().take(pl).collect::<String>() == **p {
                out.push(Token {
                    kind: Tok::Punct(p),
                    line,
                });
                i += pl;
                continue 'outer;
            }
        }
        return Err(LexError { ch: c, line });
    }
    out.push(Token {
        kind: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src)
            .expect("lexes")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("x += 3;"),
            vec![
                Tok::Ident("x".into()),
                Tok::Punct("+="),
                Tok::Int(3),
                Tok::Punct(";"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn decimals_kept_as_text() {
        assert_eq!(kinds("0.0625")[0], Tok::Decimal("0.0625".into()));
        assert_eq!(kinds("1.5")[0], Tok::Decimal("1.5".into()));
        assert_eq!(kinds("7")[0], Tok::Int(7));
    }

    #[test]
    fn comments_and_pragmas_skipped() {
        let toks = kinds("#pragma design top\n// line\nint /* mid */ x;");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("int".into()),
                Tok::Ident("x".into()),
                Tok::Punct(";"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn longest_match_operators() {
        assert_eq!(kinds(">>")[0], Tok::Punct(">>"));
        assert_eq!(kinds(">=")[0], Tok::Punct(">="));
        assert_eq!(kinds("> =").len(), 3); // '>' '=' eof
        assert_eq!(kinds("k++")[1], Tok::Punct("++"));
        assert_eq!(kinds("k -= 2")[1], Tok::Punct("-="));
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = lex("a\nb\n  c").expect("lexes");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("a @ b").is_err());
    }
}
