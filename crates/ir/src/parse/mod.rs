//! A C-like textual front-end.
//!
//! The paper's flow consumes untimed C++; this module accepts the same
//! subset Figure 4 is written in — bit-accurate scalar types (`int17`,
//! `uint6`, `sc_fixed<W,I[,Q,O]>`), `static` state arrays, labelled counted
//! `for` loops, `if`/`else`, compound assignments, quantizing casts, the
//! `sign()` builtin and `const int` parameters — and elaborates it into a
//! [`Function`]. Complex arithmetic is written out over re/im scalars, as
//! any fixed-point C implementation ultimately is.
//!
//! # Examples
//!
//! ```
//! use hls_ir::parse_function;
//!
//! let f = parse_function(r#"
//!     void sum(sc_fixed<10,2> x[8], sc_fixed<16,8> *out) {
//!         sc_fixed<16,8> acc = 0;
//!         sum_loop: for (int k = 0; k < 8; k++) {
//!             acc += x[k];
//!         }
//!         *out = acc;
//!     }
//! "#)?;
//! assert_eq!(f.name, "sum");
//! assert_eq!(f.loop_labels(), vec!["sum_loop"]);
//! # Ok::<(), hls_ir::ParseError>(())
//! ```

mod lex;

use std::collections::HashMap;
use std::fmt;

use fixpt::{BitInt, Fixed, Format, Overflow, Quantization, Signedness};

use crate::expr::{CmpOp, Expr};
use crate::func::{Function, Var, VarId, VarKind};
use crate::stmt::{Loop, Stmt};
use crate::ty::Ty;
use lex::{lex, Tok, Token};

/// A front-end error with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one `void` function written in the supported C subset.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first problem found (lexical,
/// syntactic, unknown name, non-constant loop bound, or a decimal constant
/// with no exact binary representation).
pub fn parse_function(src: &str) -> Result<Function, ParseError> {
    let tokens = lex(src).map_err(|e| ParseError {
        message: e.to_string(),
        line: e.line,
    })?;
    let mut p = Parser {
        toks: tokens,
        pos: 0,
        vars: Vec::new(),
        params: Vec::new(),
        scopes: vec![HashMap::new()],
        consts: HashMap::new(),
    };
    p.function()
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    vars: Vec<Var>,
    params: Vec<VarId>,
    scopes: Vec<HashMap<String, VarId>>,
    consts: HashMap<String, i64>,
}

impl Parser {
    // ----- token helpers -------------------------------------------------

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].kind
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            line: self.line(),
        })
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Punct(q) if *q == p => {
                self.bump();
                Ok(())
            }
            other => self.err(format!("expected `{p}`, found {other}")),
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected an identifier, found {other}")),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    // ----- names ----------------------------------------------------------

    fn declare(&mut self, name: &str, ty: Ty, kind: VarKind, len: Option<usize>) -> VarId {
        let id = VarId::from_raw(self.vars.len() as u32);
        self.vars.push(Var {
            name: name.to_string(),
            ty,
            kind,
            len,
        });
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), id);
        id
    }

    fn lookup(&self, name: &str) -> Option<VarId> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    // ----- types ----------------------------------------------------------

    /// Parses a type, optionally with quantization/overflow modes (for
    /// casts). Returns `(ty, q, o)`.
    fn parse_type(&mut self) -> Result<(Ty, Quantization, Overflow), ParseError> {
        let name = self.expect_ident()?;
        let default = (Quantization::Trn, Overflow::Wrap);
        let (q, o) = default;
        match name.as_str() {
            "int" => Ok((Ty::int(32), q, o)),
            "bool" => Ok((Ty::uint(1), q, o)),
            "sc_fixed" | "sc_ufixed" => {
                self.expect_punct("<")?;
                let w = self.const_expr()?;
                self.expect_punct(",")?;
                let i = self.const_expr()?;
                let (mut qm, mut om) = default;
                if self.eat_punct(",") {
                    qm = self.parse_quant()?;
                    self.expect_punct(",")?;
                    om = self.parse_ovf()?;
                }
                self.expect_punct(">")?;
                let s = if name == "sc_fixed" {
                    Signedness::Signed
                } else {
                    Signedness::Unsigned
                };
                let fmt = Format::new(w as u32, i as i32, s).map_err(|e| ParseError {
                    message: e.to_string(),
                    line: self.line(),
                })?;
                Ok((Ty::Fixed(fmt), qm, om))
            }
            "sc_int" | "sc_uint" => {
                self.expect_punct("<")?;
                let w = self.const_expr()?;
                self.expect_punct(">")?;
                let w = self.checked_width(w)?;
                let ty = if name == "sc_int" {
                    Ty::int(w)
                } else {
                    Ty::uint(w)
                };
                Ok((ty, q, o))
            }
            _ => {
                // intN / uintN shorthand (the paper's `int17`, `uint6`).
                if let Some(w) = name
                    .strip_prefix("uint")
                    .and_then(|d| d.parse::<u32>().ok())
                {
                    let w = self.checked_width(w as i64)?;
                    return Ok((Ty::uint(w), q, o));
                }
                if let Some(w) = name.strip_prefix("int").and_then(|d| d.parse::<u32>().ok()) {
                    let w = self.checked_width(w as i64)?;
                    return Ok((Ty::int(w), q, o));
                }
                self.err(format!("unknown type `{name}`"))
            }
        }
    }

    fn checked_width(&self, w: i64) -> Result<u32, ParseError> {
        if (1..=fixpt::MAX_WIDTH as i64).contains(&w) {
            Ok(w as u32)
        } else {
            self.err(format!(
                "integer width {w} out of range (1..={})",
                fixpt::MAX_WIDTH
            ))
        }
    }

    fn parse_quant(&mut self) -> Result<Quantization, ParseError> {
        let m = self.expect_ident()?;
        match m.as_str() {
            "SC_TRN" => Ok(Quantization::Trn),
            "SC_TRN_ZERO" => Ok(Quantization::TrnZero),
            "SC_RND" => Ok(Quantization::Rnd),
            "SC_RND_ZERO" => Ok(Quantization::RndZero),
            "SC_RND_MIN_INF" => Ok(Quantization::RndMinInf),
            "SC_RND_INF" => Ok(Quantization::RndInf),
            "SC_RND_CONV" => Ok(Quantization::RndConv),
            _ => self.err(format!("unknown quantization mode `{m}`")),
        }
    }

    fn parse_ovf(&mut self) -> Result<Overflow, ParseError> {
        let m = self.expect_ident()?;
        match m.as_str() {
            "SC_WRAP" => Ok(Overflow::Wrap),
            "SC_SAT" => Ok(Overflow::Sat),
            "SC_SAT_ZERO" => Ok(Overflow::SatZero),
            "SC_SAT_SYM" => Ok(Overflow::SatSym),
            _ => self.err(format!("unknown overflow mode `{m}`")),
        }
    }

    /// `true` when the upcoming tokens start a type.
    fn at_type(&self) -> bool {
        match self.peek() {
            Tok::Ident(s) => {
                matches!(
                    s.as_str(),
                    "int" | "bool" | "sc_fixed" | "sc_ufixed" | "sc_int" | "sc_uint"
                ) || (s.starts_with("int") && s[3..].parse::<u32>().is_ok())
                    || (s.starts_with("uint") && s[4..].parse::<u32>().is_ok())
            }
            _ => false,
        }
    }

    // ----- constants -------------------------------------------------------

    /// Constant integer expression: literals, `const int` names, + - *,
    /// parentheses.
    fn const_expr(&mut self) -> Result<i64, ParseError> {
        let mut v = self.const_term()?;
        loop {
            if self.eat_punct("+") {
                v = v
                    .checked_add(self.const_term()?)
                    .ok_or_else(|| self.overflow_err())?;
            } else if self.eat_punct("-") {
                v = v
                    .checked_sub(self.const_term()?)
                    .ok_or_else(|| self.overflow_err())?;
            } else {
                return Ok(v);
            }
        }
    }

    fn overflow_err(&self) -> ParseError {
        ParseError {
            message: "constant expression overflows".into(),
            line: self.line(),
        }
    }

    fn const_term(&mut self) -> Result<i64, ParseError> {
        let mut v = self.const_atom()?;
        while self.eat_punct("*") {
            v = v
                .checked_mul(self.const_atom()?)
                .ok_or_else(|| self.overflow_err())?;
        }
        Ok(v)
    }

    fn const_atom(&mut self) -> Result<i64, ParseError> {
        if self.eat_punct("-") {
            return self
                .const_atom()?
                .checked_neg()
                .ok_or_else(|| self.overflow_err());
        }
        if self.eat_punct("(") {
            let v = self.const_expr()?;
            self.expect_punct(")")?;
            return Ok(v);
        }
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(v)
            }
            Tok::Ident(name) => {
                if let Some(v) = self.consts.get(&name).copied() {
                    self.bump();
                    Ok(v)
                } else {
                    self.err(format!("`{name}` is not a compile-time constant"))
                }
            }
            other => self.err(format!("expected a constant, found {other}")),
        }
    }

    /// Validates an array length constant.
    fn array_len(&mut self) -> Result<usize, ParseError> {
        let n = self.const_expr()?;
        self.expect_punct("]")?;
        if !(1..=1_048_576).contains(&n) {
            return self.err(format!("array length {n} out of range (1..=2^20)"));
        }
        Ok(n as usize)
    }

    // ----- top level -------------------------------------------------------

    fn function(&mut self) -> Result<Function, ParseError> {
        if !self.eat_keyword("void") {
            return self.err("expected `void <name>(...)`");
        }
        let name = self.expect_ident()?;
        self.expect_punct("(")?;
        if !self.eat_punct(")") {
            loop {
                self.param()?;
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
        }
        self.expect_punct("{")?;
        let body = self.block_body()?;
        match self.peek() {
            Tok::Eof => {}
            other => return self.err(format!("trailing input after function: {other}")),
        }
        Ok(Function {
            name,
            vars: std::mem::take(&mut self.vars),
            params: std::mem::take(&mut self.params),
            body,
        })
    }

    fn param(&mut self) -> Result<(), ParseError> {
        let (ty, ..) = self.parse_type()?;
        let pointer = self.eat_punct("*");
        let name = self.expect_ident()?;
        let len = if self.eat_punct("[") {
            Some(self.array_len()?)
        } else {
            None
        };
        if pointer && len.is_some() {
            return self.err("a parameter cannot be both a pointer and an array");
        }
        let id = self.declare(&name, ty, VarKind::Param, len);
        self.params.push(id);
        Ok(())
    }

    // ----- statements ------------------------------------------------------

    /// Parses statements until the closing `}` (consumed).
    fn block_body(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut out = Vec::new();
        while !self.eat_punct("}") {
            if matches!(self.peek(), Tok::Eof) {
                return self.err("unexpected end of input (missing `}`)");
            }
            self.stmt(&mut out)?;
        }
        Ok(out)
    }

    fn braced_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_punct("{")?;
        self.scopes.push(HashMap::new());
        let body = self.block_body();
        self.scopes.pop();
        body
    }

    fn stmt(&mut self, out: &mut Vec<Stmt>) -> Result<(), ParseError> {
        // const int NAME = <const>;
        if matches!(self.peek(), Tok::Ident(s) if s == "const") {
            self.bump();
            if !self.eat_keyword("int") {
                return self.err("only `const int` compile-time constants are supported");
            }
            let name = self.expect_ident()?;
            self.expect_punct("=")?;
            let v = self.const_expr()?;
            self.expect_punct(";")?;
            self.consts.insert(name, v);
            return Ok(());
        }
        // static <type> name[len]?;
        if matches!(self.peek(), Tok::Ident(s) if s == "static") {
            self.bump();
            let (ty, ..) = self.parse_type()?;
            let name = self.expect_ident()?;
            let len = if self.eat_punct("[") {
                Some(self.array_len()?)
            } else {
                None
            };
            self.expect_punct(";")?;
            self.declare(&name, ty, VarKind::Static, len);
            return Ok(());
        }
        // if (...) {...} else {...}
        if matches!(self.peek(), Tok::Ident(s) if s == "if") {
            self.bump();
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then_ = self.braced_block()?;
            let else_ = if self.eat_keyword("else") {
                self.braced_block()?
            } else {
                Vec::new()
            };
            out.push(Stmt::If { cond, then_, else_ });
            return Ok(());
        }
        // for (...) — unlabeled.
        if matches!(self.peek(), Tok::Ident(s) if s == "for") {
            let stmt = self.for_loop(format!("loop_{}", self.line()))?;
            out.push(stmt);
            return Ok(());
        }
        // label: for (...)
        if let Tok::Ident(name) = self.peek().clone() {
            if matches!(&self.toks[self.pos + 1].kind, Tok::Punct(":"))
                && matches!(&self.toks.get(self.pos + 2).map(|t| &t.kind), Some(Tok::Ident(s)) if s == "for")
            {
                self.bump(); // label
                self.bump(); // ':'
                let stmt = self.for_loop(name)?;
                out.push(stmt);
                return Ok(());
            }
        }
        // Local declaration: <type> name [= expr];
        if self.at_type() {
            let (ty, ..) = self.parse_type()?;
            let name = self.expect_ident()?;
            let len = if self.eat_punct("[") {
                Some(self.array_len()?)
            } else {
                None
            };
            let id = self.declare(&name, ty, VarKind::Local, len);
            if self.eat_punct("=") {
                if len.is_some() {
                    return self.err("array initializers are not supported");
                }
                let value = self.expr()?;
                out.push(Stmt::Assign { var: id, value });
            }
            self.expect_punct(";")?;
            return Ok(());
        }
        // Assignment: lvalue (=|+=|-=) expr ;
        let (target, index) = self.lvalue()?;
        let op = match self.peek().clone() {
            Tok::Punct("=") => "=",
            Tok::Punct("+=") => "+=",
            Tok::Punct("-=") => "-=",
            other => return self.err(format!("expected an assignment operator, found {other}")),
        };
        self.bump();
        let rhs = self.expr()?;
        self.expect_punct(";")?;
        let current = match &index {
            Some(i) => Expr::load(target, i.clone()),
            None => Expr::var(target),
        };
        let value = match op {
            "=" => rhs,
            "+=" => Expr::add(current, rhs),
            _ => Expr::sub(current, rhs),
        };
        out.push(match index {
            Some(i) => Stmt::Store {
                array: target,
                index: i,
                value,
            },
            None => Stmt::Assign { var: target, value },
        });
        Ok(())
    }

    /// `for ( int k = c ; k cmp c ; k++/k--/k+=c/k-=c ) { ... }`
    fn for_loop(&mut self, label: String) -> Result<Stmt, ParseError> {
        if !self.eat_keyword("for") {
            return self.err("expected `for`");
        }
        self.expect_punct("(")?;
        self.scopes.push(HashMap::new());
        let counter_is_decl = self.eat_keyword("int");
        let counter_name = self.expect_ident()?;
        let var = if counter_is_decl {
            self.declare(&counter_name, Ty::int(32), VarKind::Counter, None)
        } else {
            match self.lookup(&counter_name) {
                Some(v) => v,
                None => return self.err(format!("unknown loop counter `{counter_name}`")),
            }
        };
        self.expect_punct("=")?;
        let start = self.const_expr()?;
        self.expect_punct(";")?;
        let lhs = self.expect_ident()?;
        if lhs != counter_name {
            return self.err("the loop condition must test the counter");
        }
        let cmp = match self.bump() {
            Tok::Punct("<") => CmpOp::Lt,
            Tok::Punct("<=") => CmpOp::Le,
            Tok::Punct(">") => CmpOp::Gt,
            Tok::Punct(">=") => CmpOp::Ge,
            Tok::Punct("!=") => CmpOp::Ne,
            other => return self.err(format!("unsupported loop comparison {other}")),
        };
        let bound = self.const_expr()?;
        self.expect_punct(";")?;
        let step_name = self.expect_ident()?;
        if step_name != counter_name {
            return self.err("the loop step must update the counter");
        }
        let step = match self.bump() {
            Tok::Punct("++") => 1,
            Tok::Punct("--") => -1,
            Tok::Punct("+=") => self.const_expr()?,
            Tok::Punct("-=") => -self.const_expr()?,
            other => return self.err(format!("unsupported loop step {other}")),
        };
        self.expect_punct(")")?;
        let body = self.braced_block()?;
        self.scopes.pop();
        Ok(Stmt::For(Loop {
            label,
            var,
            start,
            cmp,
            bound,
            step,
            body,
        }))
    }

    fn lvalue(&mut self) -> Result<(VarId, Option<Expr>), ParseError> {
        if self.eat_punct("*") {
            let name = self.expect_ident()?;
            return match self.lookup(&name) {
                Some(v) => Ok((v, None)),
                None => self.err(format!("unknown variable `{name}`")),
            };
        }
        let name = self.expect_ident()?;
        let Some(v) = self.lookup(&name) else {
            return self.err(format!("unknown variable `{name}`"));
        };
        if self.eat_punct("[") {
            let idx = self.expr()?;
            self.expect_punct("]")?;
            Ok((v, Some(idx)))
        } else {
            Ok((v, None))
        }
    }

    // ----- expressions -----------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let cond = self.comparison()?;
        if self.eat_punct("?") {
            let t = self.expr()?;
            self.expect_punct(":")?;
            let e = self.expr()?;
            return Ok(Expr::select(cond, t, e));
        }
        Ok(cond)
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.additive()?;
        let op = match self.peek() {
            Tok::Punct("==") => CmpOp::Eq,
            Tok::Punct("!=") => CmpOp::Ne,
            Tok::Punct("<") => CmpOp::Lt,
            Tok::Punct("<=") => CmpOp::Le,
            Tok::Punct(">") => CmpOp::Gt,
            Tok::Punct(">=") => CmpOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.additive()?;
        Ok(Expr::cmp(op, lhs, rhs))
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.multiplicative()?;
        loop {
            if self.eat_punct("+") {
                e = Expr::add(e, self.multiplicative()?);
            } else if self.eat_punct("-") {
                e = Expr::sub(e, self.multiplicative()?);
            } else {
                return Ok(e);
            }
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.shift()?;
        while self.eat_punct("*") {
            e = Expr::mul(e, self.shift()?);
        }
        Ok(e)
    }

    fn shift(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.unary()?;
        loop {
            if self.eat_punct(">>") {
                let n = self.shift_amount()?;
                e = Expr::Binary {
                    op: crate::expr::BinOp::Shr,
                    lhs: Box::new(e),
                    rhs: Box::new(Expr::int_const(n)),
                };
            } else if self.eat_punct("<<") {
                let n = self.shift_amount()?;
                e = Expr::Binary {
                    op: crate::expr::BinOp::Shl,
                    lhs: Box::new(e),
                    rhs: Box::new(Expr::int_const(n)),
                };
            } else {
                return Ok(e);
            }
        }
    }

    fn shift_amount(&mut self) -> Result<i64, ParseError> {
        let n = self.const_expr()?;
        if !(0..=63).contains(&n) {
            return self.err(format!("shift amount {n} out of range (0..=63)"));
        }
        Ok(n)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct("-") {
            return Ok(Expr::neg(self.unary()?));
        }
        // A parenthesis is a cast when a type follows.
        if matches!(self.peek(), Tok::Punct("(")) {
            let save = self.pos;
            self.bump();
            if self.at_type() {
                let (ty, q, o) = self.parse_type()?;
                self.expect_punct(")")?;
                let arg = self.unary()?;
                return Ok(Expr::cast_with(ty, q, o, arg));
            }
            // Plain parenthesized expression.
            self.pos = save;
            self.bump();
            let e = self.expr()?;
            self.expect_punct(")")?;
            return Ok(e);
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::int_const(v))
            }
            Tok::Decimal(text) => {
                self.bump();
                self.decimal_const(&text)
            }
            Tok::Ident(name) => {
                // Builtin: sign(expr).
                if name == "sign" && matches!(self.toks[self.pos + 1].kind, Tok::Punct("(")) {
                    self.bump();
                    self.bump();
                    let arg = self.expr()?;
                    self.expect_punct(")")?;
                    return Ok(Expr::signum(arg));
                }
                if let Some(v) = self.consts.get(&name).copied() {
                    self.bump();
                    return Ok(Expr::int_const(v));
                }
                self.bump();
                let Some(var) = self.lookup(&name) else {
                    return self.err(format!("unknown variable `{name}`"));
                };
                if self.eat_punct("[") {
                    let idx = self.expr()?;
                    self.expect_punct("]")?;
                    Ok(Expr::load(var, idx))
                } else {
                    Ok(Expr::var(var))
                }
            }
            other => self.err(format!("expected an expression, found {other}")),
        }
    }

    /// Converts a decimal literal to an exact binary fixed-point constant.
    fn decimal_const(&mut self, text: &str) -> Result<Expr, ParseError> {
        let v: f64 = text.parse().map_err(|_| ParseError {
            message: format!("bad decimal `{text}`"),
            line: self.line(),
        })?;
        // Find the smallest fractional bit count that represents it exactly.
        for frac in 0..=30u32 {
            let scaled = v * 2f64.powi(frac as i32);
            if (scaled - scaled.round()).abs() < 1e-9 {
                let mantissa = scaled.round() as i128;
                let width = BitInt::required_width(mantissa, Signedness::Signed).max(2);
                if width > fixpt::MAX_WIDTH {
                    return self.err(format!("decimal `{text}` needs {width} bits"));
                }
                let fmt = Format::signed(width, width as i32 - frac as i32);
                let f = Fixed::from_raw(mantissa, fmt).map_err(|e| ParseError {
                    message: e.to_string(),
                    line: self.line(),
                })?;
                return Ok(Expr::Const(f));
            }
        }
        self.err(format!(
            "decimal `{text}` has no exact binary representation"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Interpreter, Slot};
    use crate::validate::validate;

    #[test]
    fn parses_paper_style_function() {
        let f = parse_function(
            r#"
            #pragma design top
            void qd(sc_fixed<10,0> x_in[2], uint6 *data) {
                const int n = 4;
                static sc_fixed<10,0> c[4];
                sc_fixed<12,2> acc = 0;
                mac: for (int k = 0; k < n; k++) {
                    acc += x_in[0] * c[k];
                }
                *data = acc;
            }
        "#,
        )
        .expect("parses");
        assert_eq!(f.name, "qd");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.loop_labels(), vec!["mac"]);
        assert_eq!(f.find_loop("mac").expect("loop").trip_count(), 4);
        assert!(validate(&f).is_empty(), "{:?}", validate(&f));
    }

    #[test]
    fn parsed_function_executes() {
        let f = parse_function(
            r#"
            void scale(sc_fixed<10,2> x[4], sc_fixed<12,4> *out) {
                sc_fixed<12,4> acc = 0;
                s: for (int k = 0; k < 4; k++) {
                    acc += x[k] * 0.5;
                }
                *out = acc;
            }
        "#,
        )
        .expect("parses");
        let (x, out) = (f.params[0], f.params[1]);
        let mut i = Interpreter::new(f);
        let fmt = Format::signed(10, 2);
        let input = Slot::Array(vec![Fixed::from_f64(1.5, fmt); 4]);
        let r = i.call(&[(x, input)]).expect("runs");
        assert_eq!(r[&out].scalar().expect("scalar").to_f64(), 3.0);
    }

    #[test]
    fn casts_with_modes() {
        let f = parse_function(
            r#"
            void q(sc_fixed<12,4> y, sc_fixed<3,0> *r) {
                *r = (sc_fixed<3,0,SC_RND_ZERO,SC_SAT>)(y - 0.0625);
            }
        "#,
        )
        .expect("parses");
        let (y, r) = (f.params[0], f.params[1]);
        let mut i = Interpreter::new(f);
        let fmt = Format::signed(12, 4);
        let out = i
            .call(&[(y, Slot::Scalar(Fixed::from_f64(0.25, fmt)))])
            .expect("runs");
        // (0.25 - 0.0625) = 0.1875 -> round to 1/8 grid -> 0.25? No:
        // 0.1875 * 8 = 1.5, RndZero ties toward zero -> 1 -> 0.125.
        assert_eq!(out[&r].scalar().expect("scalar").to_f64(), 0.125);
    }

    #[test]
    fn descending_and_stepped_loops() {
        let f = parse_function(
            r#"
            void sh(int8 a[8]) {
                up: for (int k = 4; k >= 0; k -= 2) {
                    a[k + 3] = a[k + 1];
                    a[k + 2] = a[k];
                }
            }
        "#,
        )
        .expect("parses");
        let l = f.find_loop("up").expect("loop");
        assert_eq!(l.iteration_values(), vec![4, 2, 0]);
    }

    #[test]
    fn sign_builtin_and_ternary() {
        let f = parse_function(
            r#"
            void s(sc_fixed<10,2> e, sc_fixed<10,2> x, sc_fixed<10,2> *out) {
                *out = x > 0 ? e : (x < 0 ? -e : 0) ;
                sc_fixed<2,2> sg = sign(x);
            }
        "#,
        )
        .expect("parses");
        assert!(validate(&f).is_empty());
    }

    #[test]
    fn int_shorthand_types() {
        let f = parse_function("void t(int17 a, uint6 *b) { *b = a; }").expect("parses");
        assert_eq!(f.var(f.params[0]).ty.width(), 17);
        assert_eq!(f.var(f.params[1]).ty.width(), 6);
        assert!(f.var(f.params[0]).ty.format().expect("fmt").is_signed());
        assert!(!f.var(f.params[1]).ty.format().expect("fmt").is_signed());
    }

    #[test]
    fn error_reports_line() {
        let err = parse_function("void f(int8 a) {\n  b = 1;\n}").expect_err("unknown var");
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown variable `b`"), "{err}");
    }

    #[test]
    fn non_constant_bound_rejected() {
        let err = parse_function(
            "void f(int8 n, int8 *o) { l: for (int k = 0; k < n; k++) { *o = k; } }",
        )
        .expect_err("bound must be const");
        assert!(err.message.contains("not a compile-time constant"), "{err}");
    }

    #[test]
    fn inexact_decimal_rejected() {
        let err = parse_function("void f(sc_fixed<10,2> *o) { *o = 0.1; }")
            .expect_err("0.1 is not binary-exact");
        assert!(
            err.message.contains("no exact binary representation"),
            "{err}"
        );
    }

    #[test]
    fn shifts_parse() {
        let f = parse_function(
            "void f(sc_fixed<12,2> x, sc_fixed<12,2> *o) { *o = (x >> 8) + (x << 1); }",
        )
        .expect("parses");
        assert!(validate(&f).is_empty());
    }
}
