//! Structural and type validation of IR functions.

use std::collections::BTreeSet;
use std::fmt;

use crate::expr::{BinOp, Expr, UnOp};
use crate::func::{Function, VarKind};
use crate::stmt::Stmt;

/// A validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A statement referenced a variable id outside the function's table.
    UnknownVar {
        /// The raw id that was out of range.
        raw: u32,
    },
    /// An array variable was used as a scalar or vice versa.
    ShapeMismatch {
        /// The variable's name.
        var: String,
    },
    /// Two loops share a label.
    DuplicateLabel {
        /// The repeated label.
        label: String,
    },
    /// A loop counter is assigned inside its own loop.
    CounterAssigned {
        /// The loop label.
        label: String,
    },
    /// A constant array index is known to be out of bounds.
    ConstIndexOutOfBounds {
        /// The array's name.
        array: String,
        /// The constant index.
        index: i64,
        /// The declared length.
        len: usize,
    },
    /// A boolean appeared where a number was required, or vice versa.
    TypeMismatch {
        /// Human-readable context.
        context: String,
    },
    /// A shift amount was not a constant.
    NonConstShift,
    /// A loop never terminates within the statically-evaluated cap.
    SuspiciousLoop {
        /// The loop label.
        label: String,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::UnknownVar { raw } => write!(f, "unknown variable id v{raw}"),
            ValidateError::ShapeMismatch { var } => {
                write!(f, "variable {var} used with the wrong shape")
            }
            ValidateError::DuplicateLabel { label } => {
                write!(f, "duplicate loop label `{label}`")
            }
            ValidateError::CounterAssigned { label } => {
                write!(f, "counter of loop `{label}` is assigned in its body")
            }
            ValidateError::ConstIndexOutOfBounds { array, index, len } => {
                write!(f, "constant index {index} out of bounds for {array}[{len}]")
            }
            ValidateError::TypeMismatch { context } => write!(f, "type mismatch: {context}"),
            ValidateError::NonConstShift => f.write_str("shift amount must be a constant"),
            ValidateError::SuspiciousLoop { label } => {
                write!(f, "loop `{label}` does not terminate within the static cap")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

impl ValidateError {
    /// Converts the validation failure into a structured
    /// [`Diagnostic`](crate::diag::Diagnostic) with the appropriate stable
    /// code and source anchor.
    pub fn to_diagnostic(&self) -> crate::diag::Diagnostic {
        use crate::diag::{Anchor, Diagnostic};
        let d = Diagnostic::error("invalid-ir", self.to_string());
        match self {
            ValidateError::UnknownVar { raw } => d.with_anchor(Anchor::Var(format!("v{raw}"))),
            ValidateError::ShapeMismatch { var } => d.with_anchor(Anchor::Var(var.clone())),
            ValidateError::DuplicateLabel { label }
            | ValidateError::CounterAssigned { label }
            | ValidateError::SuspiciousLoop { label } => d.with_anchor(Anchor::Loop(label.clone())),
            ValidateError::ConstIndexOutOfBounds { array, .. } => {
                d.with_anchor(Anchor::Var(array.clone()))
            }
            ValidateError::TypeMismatch { .. } | ValidateError::NonConstShift => d,
        }
    }
}

/// [`validate`], with the problems reported as structured diagnostics.
pub fn validate_diagnostics(func: &Function) -> crate::diag::Diagnostics {
    validate(func)
        .iter()
        .map(ValidateError::to_diagnostic)
        .collect()
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    Num,
    Bool,
}

/// Validates a function, returning every problem found.
///
/// An empty result means the function is structurally sound: variable ids
/// resolve, arrays and scalars are used consistently, loop labels are
/// unique, counters are read-only in their bodies, constant indices are in
/// bounds, and boolean/numeric contexts are respected.
pub fn validate(func: &Function) -> Vec<ValidateError> {
    let mut errors = Vec::new();
    let nvars = func.vars.len() as u32;

    // Label uniqueness and loop sanity.
    let mut seen = BTreeSet::new();
    for l in func.loops() {
        if !seen.insert(l.label.clone()) {
            errors.push(ValidateError::DuplicateLabel {
                label: l.label.clone(),
            });
        }
        if l.trip_count() >= crate::stmt::MAX_TRIP_COUNT {
            errors.push(ValidateError::SuspiciousLoop {
                label: l.label.clone(),
            });
        }
        if func.var(l.var).kind != VarKind::Counter {
            errors.push(ValidateError::TypeMismatch {
                context: format!("loop `{}` counter is not a counter variable", l.label),
            });
        }
        for s in &l.body {
            s.visit(&mut |s| {
                if let Stmt::Assign { var, .. } = s {
                    if *var == l.var {
                        errors.push(ValidateError::CounterAssigned {
                            label: l.label.clone(),
                        });
                    }
                }
            });
        }
    }

    // Per-statement checks.
    for s in &func.body {
        s.visit(&mut |s| check_stmt(func, s, nvars, &mut errors));
    }
    errors
}

fn check_stmt(func: &Function, s: &Stmt, nvars: u32, errors: &mut Vec<ValidateError>) {
    match s {
        Stmt::Assign { var, value } => {
            if var.index() as u32 >= nvars {
                errors.push(ValidateError::UnknownVar {
                    raw: var.index() as u32,
                });
                return;
            }
            let decl = func.var(*var);
            if decl.is_array() {
                errors.push(ValidateError::ShapeMismatch {
                    var: decl.name.clone(),
                });
            }
            if let Some(kind) = check_expr(func, value, nvars, errors) {
                let want = if decl.ty.is_bool() {
                    Kind::Bool
                } else {
                    Kind::Num
                };
                if kind != want {
                    errors.push(ValidateError::TypeMismatch {
                        context: format!("assignment to {}", decl.name),
                    });
                }
            }
        }
        Stmt::Store {
            array,
            index,
            value,
        } => {
            if array.index() as u32 >= nvars {
                errors.push(ValidateError::UnknownVar {
                    raw: array.index() as u32,
                });
                return;
            }
            let decl = func.var(*array);
            match decl.len {
                None => errors.push(ValidateError::ShapeMismatch {
                    var: decl.name.clone(),
                }),
                Some(len) => {
                    if let Expr::Const(c) = index {
                        let i = c.to_i64();
                        if i < 0 || i as usize >= len {
                            errors.push(ValidateError::ConstIndexOutOfBounds {
                                array: decl.name.clone(),
                                index: i,
                                len,
                            });
                        }
                    }
                }
            }
            if check_expr(func, index, nvars, errors) == Some(Kind::Bool) {
                errors.push(ValidateError::TypeMismatch {
                    context: "boolean array index".into(),
                });
            }
            if check_expr(func, value, nvars, errors) == Some(Kind::Bool) {
                errors.push(ValidateError::TypeMismatch {
                    context: format!("boolean stored into {}", decl.name),
                });
            }
        }
        Stmt::If { cond, .. } => {
            if check_expr(func, cond, nvars, errors) == Some(Kind::Num) {
                errors.push(ValidateError::TypeMismatch {
                    context: "if condition is not boolean".into(),
                });
            }
        }
        Stmt::For(_) => {}
    }
}

/// Type/shape check of an expression; returns its kind when derivable.
fn check_expr(
    func: &Function,
    e: &Expr,
    nvars: u32,
    errors: &mut Vec<ValidateError>,
) -> Option<Kind> {
    match e {
        Expr::Const(_) => Some(Kind::Num),
        Expr::ConstBool(_) => Some(Kind::Bool),
        Expr::Var(v) => {
            if v.index() as u32 >= nvars {
                errors.push(ValidateError::UnknownVar {
                    raw: v.index() as u32,
                });
                return None;
            }
            let decl = func.var(*v);
            if decl.is_array() {
                errors.push(ValidateError::ShapeMismatch {
                    var: decl.name.clone(),
                });
                return None;
            }
            Some(if decl.ty.is_bool() {
                Kind::Bool
            } else {
                Kind::Num
            })
        }
        Expr::Load { array, index } => {
            if array.index() as u32 >= nvars {
                errors.push(ValidateError::UnknownVar {
                    raw: array.index() as u32,
                });
                return None;
            }
            let decl = func.var(*array);
            match decl.len {
                None => {
                    errors.push(ValidateError::ShapeMismatch {
                        var: decl.name.clone(),
                    });
                }
                Some(len) => {
                    if let Expr::Const(c) = index.as_ref() {
                        let i = c.to_i64();
                        if i < 0 || i as usize >= len {
                            errors.push(ValidateError::ConstIndexOutOfBounds {
                                array: decl.name.clone(),
                                index: i,
                                len,
                            });
                        }
                    }
                }
            }
            if check_expr(func, index, nvars, errors) == Some(Kind::Bool) {
                errors.push(ValidateError::TypeMismatch {
                    context: "boolean array index".into(),
                });
            }
            Some(Kind::Num)
        }
        Expr::Unary { op, arg } => {
            let k = check_expr(func, arg, nvars, errors)?;
            match op {
                UnOp::Neg | UnOp::Signum => {
                    if k == Kind::Bool {
                        errors.push(ValidateError::TypeMismatch {
                            context: "arithmetic on boolean".into(),
                        });
                    }
                    Some(Kind::Num)
                }
                UnOp::Not => {
                    if k == Kind::Num {
                        errors.push(ValidateError::TypeMismatch {
                            context: "logical not on number".into(),
                        });
                    }
                    Some(Kind::Bool)
                }
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let kl = check_expr(func, lhs, nvars, errors);
            let kr = check_expr(func, rhs, nvars, errors);
            match op {
                BinOp::And | BinOp::Or => {
                    if kl == Some(Kind::Num) || kr == Some(Kind::Num) {
                        errors.push(ValidateError::TypeMismatch {
                            context: "logical op on numbers".into(),
                        });
                    }
                    Some(Kind::Bool)
                }
                BinOp::Shl | BinOp::Shr => {
                    if !matches!(rhs.as_ref(), Expr::Const(_)) {
                        errors.push(ValidateError::NonConstShift);
                    }
                    Some(Kind::Num)
                }
                _ => {
                    if kl == Some(Kind::Bool) || kr == Some(Kind::Bool) {
                        errors.push(ValidateError::TypeMismatch {
                            context: "arithmetic on boolean".into(),
                        });
                    }
                    Some(Kind::Num)
                }
            }
        }
        Expr::Compare { lhs, rhs, .. } => {
            for side in [lhs, rhs] {
                if check_expr(func, side, nvars, errors) == Some(Kind::Bool) {
                    errors.push(ValidateError::TypeMismatch {
                        context: "comparison of booleans".into(),
                    });
                }
            }
            Some(Kind::Bool)
        }
        Expr::Select { cond, then_, else_ } => {
            if check_expr(func, cond, nvars, errors) == Some(Kind::Num) {
                errors.push(ValidateError::TypeMismatch {
                    context: "select condition is not boolean".into(),
                });
            }
            let kt = check_expr(func, then_, nvars, errors);
            let ke = check_expr(func, else_, nvars, errors);
            if kt.is_some() && ke.is_some() && kt != ke {
                errors.push(ValidateError::TypeMismatch {
                    context: "select arms disagree".into(),
                });
            }
            kt.or(ke)
        }
        Expr::Cast { arg, .. } => {
            if check_expr(func, arg, nvars, errors) == Some(Kind::Bool) {
                errors.push(ValidateError::TypeMismatch {
                    context: "cast of boolean".into(),
                });
            }
            Some(Kind::Num)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::FunctionBuilder;
    use crate::expr::CmpOp;
    use crate::ty::Ty;

    #[test]
    fn valid_function_passes() {
        let mut b = FunctionBuilder::new("ok");
        let x = b.param_array("x", Ty::int(8), 4);
        let out = b.param_scalar("out", Ty::int(12));
        let acc = b.local("acc", Ty::int(12));
        b.assign(acc, Expr::int_const(0));
        b.for_loop("sum", 0, CmpOp::Lt, 4, 1, |b, k| {
            b.assign(acc, Expr::add(Expr::var(acc), Expr::load(x, Expr::var(k))));
        });
        b.assign(out, Expr::var(acc));
        assert!(validate(&b.build()).is_empty());
    }

    #[test]
    fn duplicate_labels_rejected() {
        let mut b = FunctionBuilder::new("dup");
        b.for_loop("l", 0, CmpOp::Lt, 2, 1, |_, _| {});
        b.for_loop("l", 0, CmpOp::Lt, 2, 1, |_, _| {});
        let errs = validate(&b.build());
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::DuplicateLabel { .. })));
    }

    #[test]
    fn counter_assignment_rejected() {
        let mut b = FunctionBuilder::new("bad");
        b.for_loop("l", 0, CmpOp::Lt, 4, 1, |b, k| {
            b.assign(k, Expr::int_const(0));
        });
        let errs = validate(&b.build());
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::CounterAssigned { .. })));
    }

    #[test]
    fn const_index_bounds_checked() {
        let mut b = FunctionBuilder::new("oob");
        let a = b.param_array("a", Ty::int(8), 4);
        let out = b.param_scalar("out", Ty::int(8));
        b.assign(out, Expr::load(a, Expr::int_const(7)));
        let errs = validate(&b.build());
        assert!(errs.iter().any(|e| matches!(
            e,
            ValidateError::ConstIndexOutOfBounds {
                index: 7,
                len: 4,
                ..
            }
        )));
    }

    #[test]
    fn scalar_indexed_rejected() {
        let mut b = FunctionBuilder::new("shape");
        let s = b.param_scalar("s", Ty::int(8));
        let out = b.param_scalar("out", Ty::int(8));
        b.assign(out, Expr::load(s, Expr::int_const(0)));
        let errs = validate(&b.build());
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::ShapeMismatch { .. })));
    }

    #[test]
    fn array_assigned_as_scalar_rejected() {
        let mut b = FunctionBuilder::new("shape2");
        let a = b.param_array("a", Ty::int(8), 4);
        b.assign(a, Expr::int_const(0));
        let errs = validate(&b.build());
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::ShapeMismatch { .. })));
    }

    #[test]
    fn boolean_misuse_rejected() {
        let mut b = FunctionBuilder::new("bools");
        let x = b.param_scalar("x", Ty::int(8));
        let out = b.param_scalar("out", Ty::int(8));
        // Arithmetic on a comparison result.
        b.assign(
            out,
            Expr::add(
                Expr::cmp(CmpOp::Lt, Expr::var(x), Expr::int_const(0)),
                Expr::var(x),
            ),
        );
        let errs = validate(&b.build());
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::TypeMismatch { .. })));
    }

    #[test]
    fn non_const_shift_rejected() {
        let mut b = FunctionBuilder::new("shift");
        let x = b.param_scalar("x", Ty::int(8));
        let n = b.param_scalar("n", Ty::int(8));
        let out = b.param_scalar("out", Ty::int(8));
        b.assign(
            out,
            Expr::Binary {
                op: BinOp::Shr,
                lhs: Box::new(Expr::var(x)),
                rhs: Box::new(Expr::var(n)),
            },
        );
        let errs = validate(&b.build());
        assert!(errs.contains(&ValidateError::NonConstShift));
    }

    #[test]
    fn if_condition_must_be_bool() {
        let mut b = FunctionBuilder::new("ifnum");
        let x = b.param_scalar("x", Ty::int(8));
        let out = b.param_scalar("out", Ty::int(8));
        b.if_then(Expr::var(x), |b| b.assign(out, Expr::int_const(1)));
        let errs = validate(&b.build());
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::TypeMismatch { .. })));
    }
}
