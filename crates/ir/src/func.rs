//! Functions, variables and the top-level design unit.

use std::fmt;

use crate::expr::Expr;
use crate::stmt::{collect_loops, Loop, Stmt};
use crate::ty::Ty;

/// Identifier of a variable within a [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(u32);

impl VarId {
    /// Builds a `VarId` from its raw index. Intended for tests and for
    /// tooling that serializes IR; normal construction goes through the
    /// [`FunctionBuilder`](crate::build::FunctionBuilder).
    pub fn from_raw(raw: u32) -> VarId {
        VarId(raw)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// What role a variable plays in the function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// A function argument (scalar or array). Interface synthesis maps these
    /// to ports, memories or streams.
    Param,
    /// A `static` variable: state preserved between calls (the paper's tap
    /// and coefficient arrays). Initialized to zero.
    Static,
    /// A function-local temporary.
    Local,
    /// A loop counter.
    Counter,
}

/// Direction of a parameter, inferred from use (the paper's in/out/inout
/// pointer-argument analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Only read.
    In,
    /// Only written.
    Out,
    /// Read and written.
    InOut,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::In => f.write_str("in"),
            Direction::Out => f.write_str("out"),
            Direction::InOut => f.write_str("inout"),
        }
    }
}

/// A variable declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Var {
    /// Source-level name.
    pub name: String,
    /// Element type (for arrays, the element type).
    pub ty: Ty,
    /// Role of the variable.
    pub kind: VarKind,
    /// `Some(n)` when the variable is an `n`-element array.
    pub len: Option<usize>,
}

impl Var {
    /// `true` if the variable is an array.
    pub fn is_array(&self) -> bool {
        self.len.is_some()
    }
}

/// A synthesizable function: the design's top level (`#pragma design top`).
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// All variables: parameters, statics, locals and counters.
    pub vars: Vec<Var>,
    /// Parameter variables in declaration order.
    pub params: Vec<VarId>,
    /// The function body.
    pub body: Vec<Stmt>,
}

impl Function {
    /// Looks up a variable declaration.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this function.
    pub fn var(&self, id: VarId) -> &Var {
        &self.vars[id.index()]
    }

    /// Iterates over `(id, var)` pairs.
    pub fn iter_vars(&self) -> impl Iterator<Item = (VarId, &Var)> {
        self.vars
            .iter()
            .enumerate()
            .map(|(i, v)| (VarId(i as u32), v))
    }

    /// All static (inter-call state) variables.
    pub fn statics(&self) -> Vec<VarId> {
        self.iter_vars()
            .filter(|(_, v)| v.kind == VarKind::Static)
            .map(|(id, _)| id)
            .collect()
    }

    /// All loops in the body, pre-order.
    pub fn loops(&self) -> Vec<&Loop> {
        collect_loops(&self.body)
    }

    /// Finds a loop by label.
    pub fn find_loop(&self, label: &str) -> Option<&Loop> {
        self.loops().into_iter().find(|l| l.label == label)
    }

    /// Labels of every loop, pre-order.
    pub fn loop_labels(&self) -> Vec<String> {
        self.loops().iter().map(|l| l.label.clone()).collect()
    }

    /// Infers the direction of parameter `p` from reads and writes in the
    /// body, mirroring the paper's treatment of pointer arguments.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a parameter of this function.
    pub fn param_direction(&self, p: VarId) -> Direction {
        assert!(
            self.params.contains(&p),
            "{} is not a parameter of {}",
            self.var(p).name,
            self.name
        );
        let mut read = false;
        let mut written = false;
        for s in &self.body {
            s.visit(&mut |s| match s {
                Stmt::Assign { var, value } => {
                    written |= *var == p;
                    read |= value.reads().contains(&p);
                }
                Stmt::Store {
                    array,
                    index,
                    value,
                } => {
                    written |= *array == p;
                    read |= index.reads().contains(&p) || value.reads().contains(&p);
                }
                Stmt::If { cond, .. } => read |= cond.reads().contains(&p),
                Stmt::For(_) => {}
            });
        }
        match (read, written) {
            (_, false) => Direction::In,
            (false, true) => Direction::Out,
            (true, true) => Direction::InOut,
        }
    }

    /// Total primitive operation count over the whole body (a rough
    /// complexity measure used by reports).
    pub fn op_count(&self) -> usize {
        let mut n = 0;
        for s in &self.body {
            s.visit(&mut |s| {
                n += match s {
                    Stmt::Assign { value, .. } => value.op_count(),
                    Stmt::Store { index, value, .. } => index.op_count() + value.op_count() + 1,
                    Stmt::If { cond, .. } => cond.op_count(),
                    Stmt::For(_) => 0,
                };
            });
        }
        n
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "fn {}(", self.name)?;
        for &p in &self.params {
            let v = self.var(p);
            let dir = self.param_direction(p);
            match v.len {
                Some(n) => writeln!(f, "    {dir} {}: [{}; {n}],", v.name, v.ty)?,
                None => writeln!(f, "    {dir} {}: {},", v.name, v.ty)?,
            }
        }
        writeln!(f, ") {{")?;
        for &s in self.statics().iter() {
            let v = self.var(s);
            match v.len {
                Some(n) => writeln!(f, "    static {}: [{}; {n}];", v.name, v.ty)?,
                None => writeln!(f, "    static {}: {};", v.name, v.ty)?,
            }
        }
        for s in &self.body {
            fmt_stmt(self, s, f, 1)?;
        }
        writeln!(f, "}}")
    }
}

fn fmt_stmt(func: &Function, s: &Stmt, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
    let pad = "    ".repeat(indent);
    match s {
        Stmt::Assign { var, value } => {
            writeln!(
                f,
                "{pad}{} = {};",
                func.var(*var).name,
                fmt_expr(func, value)
            )
        }
        Stmt::Store {
            array,
            index,
            value,
        } => writeln!(
            f,
            "{pad}{}[{}] = {};",
            func.var(*array).name,
            fmt_expr(func, index),
            fmt_expr(func, value)
        ),
        Stmt::For(l) => {
            writeln!(
                f,
                "{pad}{}: for ({} = {}; {} {} {}; {} += {}) {{",
                l.label,
                func.var(l.var).name,
                l.start,
                func.var(l.var).name,
                l.cmp,
                l.bound,
                func.var(l.var).name,
                l.step
            )?;
            for s in &l.body {
                fmt_stmt(func, s, f, indent + 1)?;
            }
            writeln!(f, "{pad}}}")
        }
        Stmt::If { cond, then_, else_ } => {
            writeln!(f, "{pad}if ({}) {{", fmt_expr(func, cond))?;
            for s in then_ {
                fmt_stmt(func, s, f, indent + 1)?;
            }
            if !else_.is_empty() {
                writeln!(f, "{pad}}} else {{")?;
                for s in else_ {
                    fmt_stmt(func, s, f, indent + 1)?;
                }
            }
            writeln!(f, "{pad}}}")
        }
    }
}

fn fmt_expr(func: &Function, e: &Expr) -> String {
    use crate::expr::{BinOp, UnOp};
    match e {
        Expr::Const(c) => format!("{c}"),
        Expr::ConstBool(b) => format!("{b}"),
        Expr::Var(v) => func.var(*v).name.clone(),
        Expr::Load { array, index } => {
            format!("{}[{}]", func.var(*array).name, fmt_expr(func, index))
        }
        Expr::Unary { op, arg } => {
            let a = fmt_expr(func, arg);
            match op {
                UnOp::Neg => format!("-({a})"),
                UnOp::Signum => format!("sign({a})"),
                UnOp::Not => format!("!({a})"),
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Shl => "<<",
                BinOp::Shr => ">>",
                BinOp::And => "&&",
                BinOp::Or => "||",
            };
            format!("({} {sym} {})", fmt_expr(func, lhs), fmt_expr(func, rhs))
        }
        Expr::Compare { op, lhs, rhs } => {
            format!("({} {op} {})", fmt_expr(func, lhs), fmt_expr(func, rhs))
        }
        Expr::Select { cond, then_, else_ } => format!(
            "({} ? {} : {})",
            fmt_expr(func, cond),
            fmt_expr(func, then_),
            fmt_expr(func, else_)
        ),
        Expr::Cast { ty, arg, .. } => format!("({ty})({})", fmt_expr(func, arg)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::FunctionBuilder;
    use crate::expr::CmpOp;

    fn sample() -> Function {
        let mut b = FunctionBuilder::new("f");
        let x = b.param_array("x", Ty::int(10), 4);
        let out = b.param_scalar("out", Ty::int(16));
        let acc = b.local("acc", Ty::int(16));
        b.assign(acc, Expr::int_const(0));
        b.for_loop("sum", 0, CmpOp::Lt, 4, 1, |b, k| {
            b.assign(acc, Expr::add(Expr::var(acc), Expr::load(x, Expr::var(k))));
        });
        b.assign(out, Expr::var(acc));
        b.build()
    }

    #[test]
    fn directions() {
        let f = sample();
        assert_eq!(f.param_direction(f.params[0]), Direction::In);
        assert_eq!(f.param_direction(f.params[1]), Direction::Out);
    }

    #[test]
    fn loop_lookup() {
        let f = sample();
        assert_eq!(f.loop_labels(), vec!["sum"]);
        assert_eq!(f.find_loop("sum").unwrap().trip_count(), 4);
        assert!(f.find_loop("nope").is_none());
    }

    #[test]
    fn display_roundtrip_contains_structure() {
        let f = sample();
        let text = f.to_string();
        assert!(text.contains("fn f("), "{text}");
        assert!(text.contains("sum: for"), "{text}");
        assert!(text.contains("acc = (acc + x[sum_k]);"), "{text}");
    }

    #[test]
    fn op_count_counts_loads_and_adds() {
        let f = sample();
        // add + load inside loop = 2 ops.
        assert_eq!(f.op_count(), 2);
    }
}
