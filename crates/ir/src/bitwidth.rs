//! Automatic bit reduction (the paper's Figure 2 and Section 3.2).
//!
//! Two analyses are provided:
//!
//! 1. **Loop-counter width inference** — the minimum bitwidth of a counted
//!    loop's induction variable, which in the paper depends on a template
//!    constant `N`.
//! 2. **Value-range analysis** — interval propagation through the body that
//!    suggests narrower formats for over-declared locals (the `a = (int17)
//!    (a + b*c)` example), so RTL operators shrink without source changes.

use std::collections::BTreeMap;

use fixpt::{BitInt, Signedness};

use crate::expr::{BinOp, Expr, UnOp};
use crate::func::{Function, VarId, VarKind};
use crate::stmt::Stmt;

/// Inferred width for one loop counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterWidth {
    /// The loop label.
    pub label: String,
    /// Trip count.
    pub trip_count: usize,
    /// Smallest counter value taken (including the exit value, which the
    /// comparison still evaluates).
    pub min_value: i64,
    /// Largest counter value taken (including the exit value).
    pub max_value: i64,
    /// Minimum width as an unsigned integer (0 when negative values occur).
    pub unsigned_width: Option<u32>,
    /// Minimum width as a signed integer.
    pub signed_width: u32,
    /// The declared width (32 for a C `int`).
    pub declared_width: u32,
}

/// Computes the minimal counter width for every loop.
///
/// The exit value participates because the final comparison evaluates it:
/// `for (i = 0; i < N; i++)` with `N = 8` needs `i` to hold 8, i.e. 4
/// unsigned bits — exactly the paper's Figure 2 observation.
pub fn loop_counter_widths(func: &Function) -> Vec<CounterWidth> {
    func.loops()
        .into_iter()
        .map(|l| {
            let mut vals = l.iteration_values();
            let exit = vals.last().map(|v| v + l.step).unwrap_or(l.start);
            vals.push(exit);
            let min_value = *vals.iter().min().expect("nonempty");
            let max_value = *vals.iter().max().expect("nonempty");
            let unsigned_width = if min_value >= 0 {
                Some(BitInt::required_width(
                    max_value as i128,
                    Signedness::Unsigned,
                ))
            } else {
                None
            };
            let signed_width = vals
                .iter()
                .map(|v| BitInt::required_width(*v as i128, Signedness::Signed))
                .max()
                .expect("nonempty");
            CounterWidth {
                label: l.label.clone(),
                trip_count: l.trip_count(),
                min_value,
                max_value,
                unsigned_width,
                signed_width,
                declared_width: func.var(l.var).ty.width(),
            }
        })
        .collect()
}

/// A closed real interval tracked by the range analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Interval {
    /// The point interval `[v, v]`.
    pub fn point(v: f64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// The interval covering both operands.
    pub fn union(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    fn add(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo + o.lo,
            hi: self.hi + o.hi,
        }
    }

    fn sub(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo - o.hi,
            hi: self.hi - o.lo,
        }
    }

    fn mul(self, o: Interval) -> Interval {
        let c = [
            self.lo * o.lo,
            self.lo * o.hi,
            self.hi * o.lo,
            self.hi * o.hi,
        ];
        Interval {
            lo: c.iter().cloned().fold(f64::INFINITY, f64::min),
            hi: c.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    fn neg(self) -> Interval {
        Interval {
            lo: -self.hi,
            hi: -self.lo,
        }
    }
}

/// Result of the range analysis for one variable.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeReport {
    /// Variable name.
    pub name: String,
    /// Declared format width.
    pub declared_width: u32,
    /// The inferred value interval.
    pub interval: Interval,
    /// Minimal integer-bit count that holds the interval (with the declared
    /// fractional bits), i.e. the suggested narrowed width.
    pub required_width: u32,
}

/// Interval analysis over the function body.
///
/// Loops are abstractly executed up to `max_iters` times per loop (with the
/// counter bound to its exact per-iteration interval); when a loop is longer
/// the remaining iterations are widened by re-running the body on the
/// accumulated intervals until a fixpoint or the cap, then falling back to
/// the declared range. For the paper's 8/16-iteration loops the analysis is
/// effectively exact.
pub fn infer_ranges(func: &Function, max_iters: usize) -> BTreeMap<VarId, Interval> {
    let mut env: BTreeMap<VarId, Interval> = BTreeMap::new();
    for (id, v) in func.iter_vars() {
        let init = match v.kind {
            // Parameters can hold anything their type allows.
            VarKind::Param => declared_interval(func, id),
            // Statics, locals and counters start at zero; the analysis is a
            // per-call approximation seeded with the declared range for
            // statics (their value persists across calls).
            VarKind::Static => declared_interval(func, id),
            VarKind::Local | VarKind::Counter => Interval::point(0.0),
        };
        env.insert(id, init);
    }
    abstract_block(func, &func.body, &mut env, max_iters);
    env
}

fn declared_interval(func: &Function, id: VarId) -> Interval {
    match func.var(id).ty.format() {
        Some(f) => Interval {
            lo: f.min_value(),
            hi: f.max_value(),
        },
        None => Interval { lo: 0.0, hi: 1.0 },
    }
}

fn abstract_block(
    func: &Function,
    stmts: &[Stmt],
    env: &mut BTreeMap<VarId, Interval>,
    max_iters: usize,
) {
    for s in stmts {
        match s {
            Stmt::Assign { var, value } => {
                let iv = abstract_expr(value, env);
                // Clamp to the declared range: assignment casts.
                let d = declared_interval(func, *var);
                let clamped = Interval {
                    lo: iv.lo.max(d.lo),
                    hi: iv.hi.min(d.hi),
                };
                env.insert(*var, if clamped.lo <= clamped.hi { clamped } else { d });
            }
            Stmt::Store { array, value, .. } => {
                let iv = abstract_expr(value, env);
                let d = declared_interval(func, *array);
                let prev = env[array];
                let clamped = Interval {
                    lo: iv.lo.max(d.lo),
                    hi: iv.hi.min(d.hi),
                };
                let joined = prev.union(if clamped.lo <= clamped.hi { clamped } else { d });
                env.insert(*array, joined);
            }
            Stmt::For(l) => {
                let vals = l.iteration_values();
                if vals.is_empty() {
                    continue;
                }
                if vals.len() <= max_iters {
                    for k in vals {
                        env.insert(l.var, Interval::point(k as f64));
                        abstract_block(func, &l.body, env, max_iters);
                    }
                } else {
                    let lo = *vals.iter().min().expect("nonempty") as f64;
                    let hi = *vals.iter().max().expect("nonempty") as f64;
                    env.insert(l.var, Interval { lo, hi });
                    // Widen by running the body to a fixpoint (bounded).
                    for _ in 0..max_iters {
                        let before = env.clone();
                        abstract_block(func, &l.body, env, max_iters);
                        if *env == before {
                            break;
                        }
                    }
                }
            }
            Stmt::If { then_, else_, .. } => {
                let mut t_env = env.clone();
                abstract_block(func, then_, &mut t_env, max_iters);
                let mut e_env = env.clone();
                abstract_block(func, else_, &mut e_env, max_iters);
                for (id, iv) in t_env {
                    let joined = iv.union(e_env[&id]);
                    env.insert(id, joined);
                }
            }
        }
    }
}

fn abstract_expr(e: &Expr, env: &BTreeMap<VarId, Interval>) -> Interval {
    match e {
        Expr::Const(c) => Interval::point(c.to_f64()),
        Expr::ConstBool(_) => Interval { lo: 0.0, hi: 1.0 },
        Expr::Var(v) => env[v],
        Expr::Load { array, .. } => env[array],
        Expr::Unary { op, arg } => {
            let a = abstract_expr(arg, env);
            match op {
                UnOp::Neg => a.neg(),
                UnOp::Signum => Interval { lo: -1.0, hi: 1.0 },
                UnOp::Not => Interval { lo: 0.0, hi: 1.0 },
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let a = abstract_expr(lhs, env);
            let b = abstract_expr(rhs, env);
            match op {
                BinOp::Add => a.add(b),
                BinOp::Sub => a.sub(b),
                BinOp::Mul => a.mul(b),
                BinOp::Shl => a.mul(Interval::point(pow2(b.hi))),
                BinOp::Shr => a.mul(Interval::point(1.0 / pow2(b.hi).max(1.0))),
                BinOp::And | BinOp::Or => Interval { lo: 0.0, hi: 1.0 },
            }
        }
        Expr::Compare { .. } => Interval { lo: 0.0, hi: 1.0 },
        Expr::Select { then_, else_, .. } => {
            abstract_expr(then_, env).union(abstract_expr(else_, env))
        }
        Expr::Cast { ty, arg, .. } => {
            let a = abstract_expr(arg, env);
            match ty.format() {
                Some(f) => Interval {
                    lo: a.lo.max(f.min_value()),
                    hi: a.hi.min(f.max_value()),
                },
                None => a,
            }
        }
    }
}

fn pow2(v: f64) -> f64 {
    2f64.powi(v.clamp(0.0, 62.0) as i32)
}

/// Suggests narrower formats for locals whose inferred range needs fewer
/// integer bits than declared.
pub fn narrowing_suggestions(func: &Function, max_iters: usize) -> Vec<RangeReport> {
    let ranges = infer_ranges(func, max_iters);
    let mut out = Vec::new();
    for (id, v) in func.iter_vars() {
        if !matches!(v.kind, VarKind::Local) {
            continue;
        }
        let Some(fmt) = v.ty.format() else { continue };
        let iv = ranges[&id];
        let frac = fmt.frac_bits();
        // Raw mantissa bounds at the declared LSB.
        let scale = 2f64.powi(frac);
        let lo_raw = (iv.lo * scale).floor() as i128;
        let hi_raw = (iv.hi * scale).ceil() as i128;
        let width = BitInt::required_width(lo_raw, Signedness::Signed)
            .max(BitInt::required_width(hi_raw, Signedness::Signed));
        if width < fmt.width() {
            out.push(RangeReport {
                name: v.name.clone(),
                declared_width: fmt.width(),
                interval: iv,
                required_width: width,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::FunctionBuilder;
    use crate::expr::CmpOp;
    use crate::ty::Ty;

    /// Figure 2 of the paper: `for(i=0; i<N; i++) a += x[i]` — the minimum
    /// bitwidth of `i` depends on the template parameter `N`.
    fn figure2(n: i64) -> Function {
        let mut b = FunctionBuilder::new("f");
        let x = b.param_array("x", Ty::int(10), n as usize);
        let out = b.param_scalar("out", Ty::int(32));
        let a = b.local("a", Ty::int(32));
        b.assign(a, Expr::int_const(0));
        b.for_loop("sum", 0, CmpOp::Lt, n, 1, |b, i| {
            b.assign(a, Expr::add(Expr::var(a), Expr::load(x, Expr::var(i))));
        });
        b.assign(out, Expr::var(a));
        b.build()
    }

    #[test]
    fn counter_width_depends_on_n() {
        for (n, expect_unsigned) in [(4, 3), (8, 4), (15, 4), (16, 5), (1000, 10), (1024, 11)] {
            let f = figure2(n);
            let w = loop_counter_widths(&f);
            assert_eq!(w.len(), 1);
            assert_eq!(w[0].trip_count, n as usize);
            assert_eq!(w[0].unsigned_width, Some(expect_unsigned), "N = {n}");
            assert_eq!(w[0].declared_width, 32);
        }
    }

    #[test]
    fn descending_counter_needs_sign() {
        let mut b = FunctionBuilder::new("g");
        b.for_loop("down", 14, CmpOp::Ge, 0, -1, |_, _| {});
        let f = b.build();
        let w = loop_counter_widths(&f);
        // Exit value is -1, so unsigned representation is impossible.
        assert_eq!(w[0].min_value, -1);
        assert_eq!(w[0].max_value, 14);
        assert_eq!(w[0].unsigned_width, None);
        assert_eq!(w[0].signed_width, 5);
    }

    #[test]
    fn accumulator_range_bounds_growth() {
        // 8 elements of int10 (|x| <= 511.xx) summed: |a| <= 8 * 512.
        let f = figure2(8);
        let ranges = infer_ranges(&f, 64);
        let a = f
            .iter_vars()
            .find(|(_, v)| v.name == "a")
            .map(|(id, _)| id)
            .expect("a exists");
        let iv = ranges[&a];
        assert!(iv.hi <= 8.0 * 512.0 + 1.0, "hi = {}", iv.hi);
        assert!(iv.lo >= -8.0 * 512.0 - 1.0, "lo = {}", iv.lo);
        assert!(iv.hi >= 8.0 * 511.0, "hi = {}", iv.hi);
    }

    #[test]
    fn narrowing_suggests_smaller_accumulator() {
        // Section 3.2: a 32-bit local that only ever needs ~13 bits.
        let f = figure2(8);
        let suggestions = narrowing_suggestions(&f, 64);
        let a = suggestions
            .iter()
            .find(|s| s.name == "a")
            .expect("suggestion for a");
        assert_eq!(a.declared_width, 32);
        assert!(a.required_width <= 14, "required {}", a.required_width);
        assert!(a.required_width >= 12, "required {}", a.required_width);
    }

    #[test]
    fn long_loops_fall_back_to_widening() {
        let f = figure2(1000);
        // Cap abstract iterations below the trip count.
        let ranges = infer_ranges(&f, 8);
        let a = f
            .iter_vars()
            .find(|(_, v)| v.name == "a")
            .map(|(id, _)| id)
            .expect("a exists");
        let iv = ranges[&a];
        // Falls back to (clamped) declared range — still sound.
        let declared = Ty::int(32).format().expect("int format");
        assert!(iv.hi <= declared.max_value());
        assert!(iv.lo >= declared.min_value());
    }
}
