//! Expression trees.

use std::fmt;

use fixpt::{Fixed, Overflow, Quantization};

use crate::func::VarId;
use crate::ty::Ty;

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation (exact, widening).
    Neg,
    /// Sign extraction: yields -1, 0 or 1 as `fixed<2,2>`.
    Signum,
    /// Logical NOT of a boolean.
    Not,
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Exact addition.
    Add,
    /// Exact subtraction.
    Sub,
    /// Exact multiplication.
    Mul,
    /// Value shift left by a constant amount (wraps within format).
    Shl,
    /// Value shift right by a constant amount (truncates).
    Shr,
    /// Boolean AND.
    And,
    /// Boolean OR.
    Or,
}

/// Comparison operators, yielding [`Ty::Bool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// Evaluates the comparison on an [`Ordering`](std::cmp::Ordering).
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// An expression tree.
///
/// Arithmetic is *exact* (full precision, as in SystemC expressions);
/// precision is lost only at [`Expr::Cast`] nodes and at assignment to a
/// typed variable.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A fixed-point constant.
    Const(Fixed),
    /// A boolean constant.
    ConstBool(bool),
    /// Read of a scalar variable (or loop counter).
    Var(VarId),
    /// Read of `array[index]`.
    Load {
        /// The array variable.
        array: VarId,
        /// The element index expression.
        index: Box<Expr>,
    },
    /// A unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        arg: Box<Expr>,
    },
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// A comparison producing a boolean.
    Compare {
        /// The comparison operator.
        op: CmpOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// A two-way multiplexer: `cond ? then_ : else_`.
    Select {
        /// The boolean condition.
        cond: Box<Expr>,
        /// Value when true.
        then_: Box<Expr>,
        /// Value when false.
        else_: Box<Expr>,
    },
    /// An explicit cast with quantization and overflow modes, like the
    /// paper's `(sc_fixed<FFE_W,0,SC_RND_ZERO,SC_SAT>)(y.r() - offset)`.
    Cast {
        /// Destination type.
        ty: Ty,
        /// Quantization applied when fractional bits are dropped.
        quantization: Quantization,
        /// Overflow handling when the value exceeds the destination range.
        overflow: Overflow,
        /// The operand.
        arg: Box<Expr>,
    },
}

// The constructor names mirror the IR mnemonics; they are associated
// functions (not methods), so they cannot be confused with the `std::ops`
// traits at a call site.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Integer constant helper. The constant carries the minimal signed
    /// integer format that holds `v`, so exact expression arithmetic never
    /// widens more than needed.
    pub fn int_const(v: i64) -> Expr {
        let width = fixpt::BitInt::required_width(v as i128, fixpt::Signedness::Signed);
        Expr::Const(Fixed::from_int(
            v,
            fixpt::Format::integer(width, fixpt::Signedness::Signed),
        ))
    }

    /// Variable read helper.
    pub fn var(v: VarId) -> Expr {
        Expr::Var(v)
    }

    /// `lhs + rhs`.
    pub fn add(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// `lhs - rhs`.
    pub fn sub(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op: BinOp::Sub,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// `lhs * rhs`.
    pub fn mul(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op: BinOp::Mul,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Comparison helper.
    pub fn cmp(op: CmpOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Compare {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// `array[index]` load helper.
    pub fn load(array: VarId, index: Expr) -> Expr {
        Expr::Load {
            array,
            index: Box::new(index),
        }
    }

    /// Default-mode cast helper (truncate, wrap).
    pub fn cast(ty: Ty, arg: Expr) -> Expr {
        Expr::Cast {
            ty,
            quantization: Quantization::Trn,
            overflow: Overflow::Wrap,
            arg: Box::new(arg),
        }
    }

    /// Explicit-mode cast helper.
    pub fn cast_with(ty: Ty, q: Quantization, o: Overflow, arg: Expr) -> Expr {
        Expr::Cast {
            ty,
            quantization: q,
            overflow: o,
            arg: Box::new(arg),
        }
    }

    /// Negation helper.
    pub fn neg(arg: Expr) -> Expr {
        Expr::Unary {
            op: UnOp::Neg,
            arg: Box::new(arg),
        }
    }

    /// Signum helper (-1/0/1).
    pub fn signum(arg: Expr) -> Expr {
        Expr::Unary {
            op: UnOp::Signum,
            arg: Box::new(arg),
        }
    }

    /// Select (mux) helper.
    pub fn select(cond: Expr, then_: Expr, else_: Expr) -> Expr {
        Expr::Select {
            cond: Box::new(cond),
            then_: Box::new(then_),
            else_: Box::new(else_),
        }
    }

    /// Visits every sub-expression (including `self`), pre-order.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Const(_) | Expr::ConstBool(_) | Expr::Var(_) => {}
            Expr::Load { index, .. } => index.visit(f),
            Expr::Unary { arg, .. } => arg.visit(f),
            Expr::Binary { lhs, rhs, .. } | Expr::Compare { lhs, rhs, .. } => {
                lhs.visit(f);
                rhs.visit(f);
            }
            Expr::Select { cond, then_, else_ } => {
                cond.visit(f);
                then_.visit(f);
                else_.visit(f);
            }
            Expr::Cast { arg, .. } => arg.visit(f),
        }
    }

    /// Collects every variable read by this expression (including arrays and
    /// load indices).
    pub fn reads(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.visit(&mut |e| match e {
            Expr::Var(v) => out.push(*v),
            Expr::Load { array, .. } => out.push(*array),
            _ => {}
        });
        out
    }

    /// Rewrites every variable reference through `map` (used by loop
    /// transforms when substituting counters).
    pub fn substitute(&self, map: &impl Fn(VarId) -> Option<Expr>) -> Expr {
        match self {
            Expr::Const(_) | Expr::ConstBool(_) => self.clone(),
            Expr::Var(v) => map(*v).unwrap_or_else(|| self.clone()),
            Expr::Load { array, index } => Expr::Load {
                array: *array,
                index: Box::new(index.substitute(map)),
            },
            Expr::Unary { op, arg } => Expr::Unary {
                op: *op,
                arg: Box::new(arg.substitute(map)),
            },
            Expr::Binary { op, lhs, rhs } => Expr::Binary {
                op: *op,
                lhs: Box::new(lhs.substitute(map)),
                rhs: Box::new(rhs.substitute(map)),
            },
            Expr::Compare { op, lhs, rhs } => Expr::Compare {
                op: *op,
                lhs: Box::new(lhs.substitute(map)),
                rhs: Box::new(rhs.substitute(map)),
            },
            Expr::Select { cond, then_, else_ } => Expr::Select {
                cond: Box::new(cond.substitute(map)),
                then_: Box::new(then_.substitute(map)),
                else_: Box::new(else_.substitute(map)),
            },
            Expr::Cast {
                ty,
                quantization,
                overflow,
                arg,
            } => Expr::Cast {
                ty: *ty,
                quantization: *quantization,
                overflow: *overflow,
                arg: Box::new(arg.substitute(map)),
            },
        }
    }

    /// Number of primitive operation nodes (excluding constants and reads).
    pub fn op_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |e| {
            if !matches!(e, Expr::Const(_) | Expr::ConstBool(_) | Expr::Var(_)) {
                n += 1;
            }
        });
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::VarId;

    #[test]
    fn cmp_eval() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Lt.eval(Less));
        assert!(!CmpOp::Lt.eval(Equal));
        assert!(CmpOp::Le.eval(Equal));
        assert!(CmpOp::Ge.eval(Greater));
        assert!(CmpOp::Ne.eval(Less));
        assert!(CmpOp::Eq.eval(Equal));
        assert!(!CmpOp::Gt.eval(Equal));
    }

    #[test]
    fn reads_collects_vars_and_arrays() {
        let a = VarId::from_raw(0);
        let x = VarId::from_raw(1);
        let k = VarId::from_raw(2);
        let e = Expr::add(Expr::var(a), Expr::load(x, Expr::var(k)));
        let mut reads = e.reads();
        reads.sort();
        assert_eq!(reads, vec![a, x, k]);
    }

    #[test]
    fn substitute_replaces_counter() {
        let k = VarId::from_raw(0);
        let x = VarId::from_raw(1);
        let e = Expr::load(x, Expr::var(k));
        let m = VarId::from_raw(2);
        let sub = e.substitute(&|v| (v == k).then(|| Expr::mul(Expr::var(m), Expr::int_const(2))));
        match sub {
            Expr::Load { index, .. } => {
                assert_eq!(index.op_count(), 1); // the mul node
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn op_count() {
        let e = Expr::add(
            Expr::mul(Expr::var(VarId::from_raw(0)), Expr::var(VarId::from_raw(1))),
            Expr::int_const(1),
        );
        assert_eq!(e.op_count(), 2);
    }
}
