//! Value types carried by the IR.

use std::fmt;

use fixpt::{Format, Signedness};

/// The type of an IR value.
///
/// Fixed-point formats subsume integers (an integer is a fixed-point value
/// whose binary point sits at the LSB); booleans are kept distinct because
/// they arise from comparisons and steer control flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// A fixed-point (or integer) value with the given format.
    Fixed(Format),
    /// A single-bit truth value produced by comparisons.
    Bool,
}

impl Ty {
    /// A signed integer type of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`fixpt::MAX_WIDTH`].
    pub fn int(width: u32) -> Ty {
        Ty::Fixed(Format::integer(width, Signedness::Signed))
    }

    /// An unsigned integer type of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`fixpt::MAX_WIDTH`].
    pub fn uint(width: u32) -> Ty {
        Ty::Fixed(Format::integer(width, Signedness::Unsigned))
    }

    /// A signed fixed-point type `sc_fixed<width, int_bits>`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`fixpt::MAX_WIDTH`].
    pub fn fixed(width: u32, int_bits: i32) -> Ty {
        Ty::Fixed(Format::signed(width, int_bits))
    }

    /// The fixed-point format, if this is a fixed/integer type.
    pub fn format(&self) -> Option<Format> {
        match self {
            Ty::Fixed(f) => Some(*f),
            Ty::Bool => None,
        }
    }

    /// Bit width of the hardware value carrying this type.
    pub fn width(&self) -> u32 {
        match self {
            Ty::Fixed(f) => f.width(),
            Ty::Bool => 1,
        }
    }

    /// `true` for [`Ty::Bool`].
    pub fn is_bool(&self) -> bool {
        matches!(self, Ty::Bool)
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Fixed(fm) => write!(f, "{fm}"),
            Ty::Bool => f.write_str("bool"),
        }
    }
}

impl From<Format> for Ty {
    fn from(f: Format) -> Ty {
        Ty::Fixed(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Ty::int(17).width(), 17);
        assert_eq!(Ty::uint(6).width(), 6);
        assert_eq!(Ty::fixed(10, 0).width(), 10);
        assert_eq!(Ty::Bool.width(), 1);
        assert!(Ty::Bool.is_bool());
        assert!(Ty::Bool.format().is_none());
        assert!(Ty::int(8).format().unwrap().is_signed());
        assert!(!Ty::uint(8).format().unwrap().is_signed());
    }

    #[test]
    fn display() {
        assert_eq!(Ty::fixed(10, 0).to_string(), "fixed<10,0>");
        assert_eq!(Ty::Bool.to_string(), "bool");
    }
}
