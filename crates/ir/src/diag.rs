//! Structured diagnostics: the flow's unified error/warning vocabulary.
//!
//! Every layer of the flow — IR validation, directive checking, loop
//! transforms, scheduling, allocation, RTL compilation, equivalence
//! checking — reports problems as [`Diagnostic`]s: a severity, a stable
//! machine-readable code, the pass of origin, a human message, and
//! *source anchors* pointing back at the construct the user wrote (a loop
//! label, a variable name, an operation). A [`Diagnostics`] list collects
//! them in emission order and renders as text or JSON, so the same record
//! drives terminal output, pass traces and CI assertions.

use std::fmt;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational (e.g. a pass summary worth surfacing).
    Note,
    /// The flow continued but the result may differ from the source
    /// semantics (e.g. an accepted merge hazard).
    Warning,
    /// The flow could not produce a result.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => f.write_str("note"),
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// A pointer back at the source construct a diagnostic is about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Anchor {
    /// A labelled loop.
    Loop(String),
    /// A variable or parameter, by name.
    Var(String),
    /// An operation, described (class and width).
    Op(String),
}

impl Anchor {
    /// The anchor's kind as a stable lowercase tag (for JSON).
    pub fn kind(&self) -> &'static str {
        match self {
            Anchor::Loop(_) => "loop",
            Anchor::Var(_) => "var",
            Anchor::Op(_) => "op",
        }
    }

    /// The anchored name.
    pub fn name(&self) -> &str {
        match self {
            Anchor::Loop(s) | Anchor::Var(s) | Anchor::Op(s) => s,
        }
    }
}

impl fmt::Display for Anchor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Anchor::Loop(l) => write!(f, "loop `{l}`"),
            Anchor::Var(v) => write!(f, "variable `{v}`"),
            Anchor::Op(o) => write!(f, "operation {o}"),
        }
    }
}

/// One structured problem report.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// Stable machine-readable code (kebab-case, e.g. `unknown-loop`).
    pub code: &'static str,
    /// The pass that emitted it (empty until a pass manager stamps it).
    pub pass: String,
    /// Human-readable description.
    pub message: String,
    /// Source constructs the diagnostic is about.
    pub anchors: Vec<Anchor>,
    /// Supplementary free-form notes.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            code,
            pass: String::new(),
            message: message.into(),
            anchors: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, message)
        }
    }

    /// Creates a note diagnostic.
    pub fn note(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Note,
            ..Diagnostic::error(code, message)
        }
    }

    /// Stamps the pass of origin (builder style).
    pub fn in_pass(mut self, pass: impl Into<String>) -> Self {
        self.pass = pass.into();
        self
    }

    /// Attaches a source anchor (builder style).
    pub fn with_anchor(mut self, anchor: Anchor) -> Self {
        self.anchors.push(anchor);
        self
    }

    /// Attaches a note (builder style).
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Renders the diagnostic as one JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!(
            "\"severity\":{}",
            json_str(&self.severity.to_string())
        ));
        s.push_str(&format!(",\"code\":{}", json_str(self.code)));
        if !self.pass.is_empty() {
            s.push_str(&format!(",\"pass\":{}", json_str(&self.pass)));
        }
        s.push_str(&format!(",\"message\":{}", json_str(&self.message)));
        if !self.anchors.is_empty() {
            s.push_str(",\"anchors\":[");
            for (i, a) in self.anchors.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"kind\":{},\"name\":{}}}",
                    json_str(a.kind()),
                    json_str(a.name())
                ));
            }
            s.push(']');
        }
        if !self.notes.is_empty() {
            s.push_str(",\"notes\":[");
            for (i, n) in self.notes.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&json_str(n));
            }
            s.push(']');
        }
        s.push('}');
        s
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        if !self.pass.is_empty() {
            write!(f, " ({})", self.pass)?;
        }
        write!(f, ": {}", self.message)?;
        for a in &self.anchors {
            write!(f, " [{a}]")?;
        }
        for n in &self.notes {
            write!(f, "\n  note: {n}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Diagnostic {}

/// An ordered collection of diagnostics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty collection.
    pub fn new() -> Self {
        Diagnostics::default()
    }

    /// Appends one diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// Appends every diagnostic of another collection.
    pub fn extend(&mut self, other: Diagnostics) {
        self.items.extend(other.items);
    }

    /// All diagnostics, in emission order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    /// Mutable access to all diagnostics, in emission order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Diagnostic> {
        self.items.iter_mut()
    }

    /// Number of diagnostics.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when no diagnostics were recorded.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// `true` when any diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    /// The error diagnostics only.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter().filter(|d| d.severity == Severity::Error)
    }

    /// The first diagnostic with the given code, if any.
    pub fn find(&self, code: &str) -> Option<&Diagnostic> {
        self.items.iter().find(|d| d.code == code)
    }

    /// Renders all diagnostics as a JSON array.
    pub fn to_json(&self) -> String {
        let mut s = String::from("[");
        for (i, d) in self.items.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&d.to_json());
        }
        s.push(']');
        s
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.items.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl From<Diagnostic> for Diagnostics {
    fn from(d: Diagnostic) -> Self {
        Diagnostics { items: vec![d] }
    }
}

impl FromIterator<Diagnostic> for Diagnostics {
    fn from_iter<T: IntoIterator<Item = Diagnostic>>(iter: T) -> Self {
        Diagnostics {
            items: iter.into_iter().collect(),
        }
    }
}

/// Escapes a string as a JSON string literal.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
