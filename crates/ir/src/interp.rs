//! Bit-accurate execution of IR functions.
//!
//! The interpreter is the flow's golden reference: transforms and generated
//! RTL are checked against it. It executes with the same SystemC semantics
//! as the `fixpt` types (exact expression arithmetic, cast-on-assign).

use std::collections::BTreeMap;
use std::fmt;

use fixpt::{Fixed, Format, Signedness};

use crate::expr::{BinOp, Expr, UnOp};
use crate::func::{Function, VarId, VarKind};
use crate::stmt::Stmt;
use crate::ty::Ty;

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Fixed-point / integer value.
    Fix(Fixed),
    /// Boolean value.
    Bool(bool),
}

impl Value {
    fn as_fix(&self) -> Result<Fixed, EvalError> {
        match self {
            Value::Fix(f) => Ok(*f),
            Value::Bool(_) => Err(EvalError::TypeMismatch(
                "expected a numeric value, found bool",
            )),
        }
    }

    fn as_bool(&self) -> Result<bool, EvalError> {
        match self {
            Value::Bool(b) => Ok(*b),
            Value::Fix(_) => Err(EvalError::TypeMismatch(
                "expected bool, found a numeric value",
            )),
        }
    }
}

/// Storage for one variable: a scalar or an array of elements.
#[derive(Debug, Clone, PartialEq)]
pub enum Slot {
    /// Scalar storage.
    Scalar(Fixed),
    /// Array storage.
    Array(Vec<Fixed>),
}

impl Slot {
    /// Convenience accessor for scalar slots.
    pub fn scalar(&self) -> Option<Fixed> {
        match self {
            Slot::Scalar(f) => Some(*f),
            Slot::Array(_) => None,
        }
    }

    /// Convenience accessor for array slots.
    pub fn array(&self) -> Option<&[Fixed]> {
        match self {
            Slot::Array(v) => Some(v),
            Slot::Scalar(_) => None,
        }
    }
}

/// Evaluation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// An operation received a value of the wrong kind.
    TypeMismatch(&'static str),
    /// Array access outside the declared bounds.
    IndexOutOfBounds {
        /// The array's name.
        array: String,
        /// The evaluated index.
        index: i64,
        /// The declared length.
        len: usize,
    },
    /// A scalar was indexed or an array used as a scalar.
    ShapeMismatch {
        /// The variable's name.
        var: String,
    },
    /// A shift amount was not a constant integer.
    NonConstShift,
    /// A required input argument was not supplied.
    MissingInput {
        /// The parameter's name.
        param: String,
    },
    /// A supplied argument had the wrong shape (scalar vs array) or length.
    BadArgument {
        /// The parameter's name.
        param: String,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::TypeMismatch(msg) => write!(f, "type mismatch: {msg}"),
            EvalError::IndexOutOfBounds { array, index, len } => {
                write!(f, "index {index} out of bounds for {array}[{len}]")
            }
            EvalError::ShapeMismatch { var } => {
                write!(f, "variable {var} used with the wrong shape")
            }
            EvalError::NonConstShift => f.write_str("shift amount must be a constant"),
            EvalError::MissingInput { param } => write!(f, "missing input for parameter {param}"),
            EvalError::BadArgument { param } => {
                write!(f, "argument for {param} has the wrong shape")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Format used for loop counters and integer intermediates.
fn counter_format() -> Format {
    Format::integer(fixpt::MAX_WIDTH, Signedness::Signed)
}

/// Dense execution environment: one slot per function variable, indexed by
/// [`VarId::index`]. Replaces the earlier `BTreeMap<VarId, Slot>` — every
/// variable access is a direct vector index instead of a tree walk, which
/// matters because `eval` hits the environment on every operand.
type Env = Vec<Option<Slot>>;

/// An interpreter instance holding the persistent `static` state of one
/// function across calls (the decoder's tap and coefficient arrays).
///
/// # Examples
///
/// ```
/// use hls_ir::{FunctionBuilder, Ty, Expr, CmpOp, Interpreter, Slot};
/// use fixpt::{Fixed, Format};
///
/// let mut b = FunctionBuilder::new("count_calls");
/// let out = b.param_scalar("out", Ty::int(8));
/// let n = b.static_scalar("n", Ty::int(8));
/// b.assign(n, Expr::add(Expr::var(n), Expr::int_const(1)));
/// b.assign(out, Expr::var(n));
/// let f = b.build();
///
/// let mut interp = Interpreter::new(f);
/// let r1 = interp.call(&[])?;
/// let r2 = interp.call(&[])?;
/// let out_id = interp.function().params[0];
/// assert_eq!(r1[&out_id].scalar().unwrap().to_i64(), 1);
/// assert_eq!(r2[&out_id].scalar().unwrap().to_i64(), 2);
/// # Ok::<(), hls_ir::EvalError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Interpreter {
    func: Function,
    statics: BTreeMap<VarId, Slot>,
}

impl Interpreter {
    /// Creates an interpreter with zero-initialized static state.
    pub fn new(func: Function) -> Self {
        let mut statics = BTreeMap::new();
        for (id, v) in func.iter_vars() {
            if v.kind == VarKind::Static {
                statics.insert(id, zero_slot(v.ty, v.len));
            }
        }
        Interpreter { func, statics }
    }

    /// The interpreted function.
    pub fn function(&self) -> &Function {
        &self.func
    }

    /// Read access to the persistent static state.
    pub fn static_slot(&self, id: VarId) -> Option<&Slot> {
        self.statics.get(&id)
    }

    /// Overwrites one element of a static array (testbench state
    /// preloading, e.g. cold-start equalizer coefficients). The value is
    /// cast to the array's element format.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a static array of this function or `index` is
    /// out of bounds.
    pub fn poke_static(&mut self, id: VarId, index: usize, value: Fixed) {
        let fmt = self
            .func
            .var(id)
            .ty
            .format()
            .expect("static arrays hold numeric elements");
        match self.statics.get_mut(&id) {
            Some(Slot::Array(a)) => a[index] = value.cast(fmt),
            _ => panic!("{} is not a static array", self.func.var(id).name),
        }
    }

    /// Resets all static state to zero.
    pub fn reset(&mut self) {
        for (id, v) in self.func.iter_vars() {
            if v.kind == VarKind::Static {
                self.statics.insert(id, zero_slot(v.ty, v.len));
            }
        }
    }

    /// Executes one call. `inputs` supplies values for parameters (by id);
    /// output-only parameters may be omitted. Returns the final value of
    /// every parameter, so callers read out-parameters from the result.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] on missing inputs, shape mismatches or
    /// out-of-bounds accesses.
    pub fn call(&mut self, inputs: &[(VarId, Slot)]) -> Result<BTreeMap<VarId, Slot>, EvalError> {
        let mut env: Env = vec![None; self.func.vars.len()];
        // Parameters.
        for &p in &self.func.params {
            let v = self.func.var(p);
            let supplied = inputs
                .iter()
                .find(|(id, _)| *id == p)
                .map(|(_, s)| s.clone());
            let slot = match supplied {
                Some(s) => {
                    check_shape(v, &s)?;
                    coerce_slot(s, v.ty)
                }
                None => {
                    // Only out-parameters may be omitted.
                    match self.func.param_direction(p) {
                        crate::func::Direction::Out => zero_slot(v.ty, v.len),
                        _ => {
                            return Err(EvalError::MissingInput {
                                param: v.name.clone(),
                            })
                        }
                    }
                }
            };
            env[p.index()] = Some(slot);
        }
        // Locals and counters (zero-initialized), statics from persistent state.
        for (id, v) in self.func.iter_vars() {
            match v.kind {
                VarKind::Local | VarKind::Counter => {
                    env[id.index()] = Some(zero_slot(v.ty, v.len));
                }
                VarKind::Static => {
                    env[id.index()] = Some(self.statics[&id].clone());
                }
                VarKind::Param => {}
            }
        }

        exec_block(&self.func, &self.func.body, &mut env)?;

        // Persist statics.
        for id in self.func.statics() {
            let slot = env[id.index()].clone().expect("static initialized");
            self.statics.insert(id, slot);
        }
        // Return parameter slots.
        Ok(self
            .func
            .params
            .iter()
            .map(|&p| (p, env[p.index()].take().expect("parameter initialized")))
            .collect())
    }
}

fn zero_slot(ty: Ty, len: Option<usize>) -> Slot {
    let fmt = ty.format().unwrap_or_else(counter_format);
    match len {
        Some(n) => Slot::Array(vec![Fixed::zero(fmt); n]),
        None => Slot::Scalar(Fixed::zero(fmt)),
    }
}

fn check_shape(v: &crate::func::Var, s: &Slot) -> Result<(), EvalError> {
    let ok = match (v.len, s) {
        (Some(n), Slot::Array(a)) => a.len() == n,
        (None, Slot::Scalar(_)) => true,
        _ => false,
    };
    if ok {
        Ok(())
    } else {
        Err(EvalError::BadArgument {
            param: v.name.clone(),
        })
    }
}

/// Casts a supplied slot into the parameter's declared type (like passing an
/// argument through a typed port).
fn coerce_slot(s: Slot, ty: Ty) -> Slot {
    let fmt = ty.format().unwrap_or_else(counter_format);
    match s {
        Slot::Scalar(f) => Slot::Scalar(f.cast(fmt)),
        Slot::Array(a) => Slot::Array(a.into_iter().map(|f| f.cast(fmt)).collect()),
    }
}

fn exec_block(func: &Function, stmts: &[Stmt], env: &mut Env) -> Result<(), EvalError> {
    for s in stmts {
        exec_stmt(func, s, env)?;
    }
    Ok(())
}

fn exec_stmt(func: &Function, s: &Stmt, env: &mut Env) -> Result<(), EvalError> {
    match s {
        Stmt::Assign { var, value } => {
            let v = eval(func, value, env)?;
            let decl = func.var(*var);
            let stored = match (decl.ty, v) {
                (Ty::Bool, Value::Bool(b)) => {
                    // Booleans are stored as 1-bit integers.
                    Fixed::from_int(b as i64, Format::integer(1, Signedness::Unsigned))
                }
                (Ty::Bool, Value::Fix(_)) => {
                    return Err(EvalError::TypeMismatch(
                        "numeric value assigned to bool variable",
                    ))
                }
                (Ty::Fixed(fmt), Value::Fix(f)) => f.cast(fmt),
                (Ty::Fixed(_), Value::Bool(_)) => {
                    return Err(EvalError::TypeMismatch("bool assigned to numeric variable"))
                }
            };
            match env[var.index()].as_mut() {
                Some(Slot::Scalar(slot)) => {
                    *slot = stored;
                    Ok(())
                }
                _ => Err(EvalError::ShapeMismatch {
                    var: decl.name.clone(),
                }),
            }
        }
        Stmt::Store {
            array,
            index,
            value,
        } => {
            let idx = eval(func, index, env)?.as_fix()?.to_i64();
            let val = eval(func, value, env)?.as_fix()?;
            let decl = func.var(*array);
            let fmt = decl
                .ty
                .format()
                .ok_or(EvalError::TypeMismatch("store into bool array"))?;
            let stored = val.cast(fmt);
            match env[array.index()].as_mut() {
                Some(Slot::Array(a)) => {
                    let len = a.len();
                    if idx < 0 || idx as usize >= len {
                        return Err(EvalError::IndexOutOfBounds {
                            array: decl.name.clone(),
                            index: idx,
                            len,
                        });
                    }
                    a[idx as usize] = stored;
                    Ok(())
                }
                _ => Err(EvalError::ShapeMismatch {
                    var: decl.name.clone(),
                }),
            }
        }
        Stmt::For(l) => {
            for k in l.iteration_values() {
                set_counter(env, l.var, k);
                exec_block(func, &l.body, env)?;
            }
            // Final counter value (visible after the loop in C scope rules
            // only for externally-declared counters; harmless here).
            Ok(())
        }
        Stmt::If { cond, then_, else_ } => {
            let c = eval(func, cond, env)?.as_bool()?;
            if c {
                exec_block(func, then_, env)
            } else {
                exec_block(func, else_, env)
            }
        }
    }
}

fn set_counter(env: &mut Env, var: VarId, k: i64) {
    if let Some(Slot::Scalar(slot)) = env[var.index()].as_mut() {
        *slot = Fixed::from_int(k, slot.format());
    }
}

fn eval(func: &Function, e: &Expr, env: &Env) -> Result<Value, EvalError> {
    match e {
        Expr::Const(c) => Ok(Value::Fix(*c)),
        Expr::ConstBool(b) => Ok(Value::Bool(*b)),
        Expr::Var(v) => match env[v.index()].as_ref() {
            Some(Slot::Scalar(f)) => {
                if func.var(*v).ty.is_bool() {
                    Ok(Value::Bool(!f.is_zero()))
                } else {
                    Ok(Value::Fix(*f))
                }
            }
            _ => Err(EvalError::ShapeMismatch {
                var: func.var(*v).name.clone(),
            }),
        },
        Expr::Load { array, index } => {
            let idx = eval(func, index, env)?.as_fix()?.to_i64();
            let decl = func.var(*array);
            match env[array.index()].as_ref() {
                Some(Slot::Array(a)) => {
                    if idx < 0 || idx as usize >= a.len() {
                        Err(EvalError::IndexOutOfBounds {
                            array: decl.name.clone(),
                            index: idx,
                            len: a.len(),
                        })
                    } else {
                        Ok(Value::Fix(a[idx as usize]))
                    }
                }
                _ => Err(EvalError::ShapeMismatch {
                    var: decl.name.clone(),
                }),
            }
        }
        Expr::Unary { op, arg } => {
            let a = eval(func, arg, env)?;
            match op {
                UnOp::Neg => Ok(Value::Fix(a.as_fix()?.negate())),
                UnOp::Signum => {
                    let s = a.as_fix()?.signum();
                    Ok(Value::Fix(Fixed::from_int(s as i64, Format::signed(2, 2))))
                }
                UnOp::Not => Ok(Value::Bool(!a.as_bool()?)),
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let a = eval(func, lhs, env)?;
            match op {
                BinOp::And => {
                    // Short-circuit like C.
                    if !a.as_bool()? {
                        return Ok(Value::Bool(false));
                    }
                    Ok(Value::Bool(eval(func, rhs, env)?.as_bool()?))
                }
                BinOp::Or => {
                    if a.as_bool()? {
                        return Ok(Value::Bool(true));
                    }
                    Ok(Value::Bool(eval(func, rhs, env)?.as_bool()?))
                }
                BinOp::Shl | BinOp::Shr => {
                    let n = match rhs.as_ref() {
                        Expr::Const(c) => c.to_i64(),
                        _ => return Err(EvalError::NonConstShift),
                    };
                    if n < 0 {
                        return Err(EvalError::NonConstShift);
                    }
                    let x = a.as_fix()?;
                    Ok(Value::Fix(if matches!(op, BinOp::Shl) {
                        x.shl(n as u32)
                    } else {
                        x.shr(n as u32)
                    }))
                }
                BinOp::Add | BinOp::Sub | BinOp::Mul => {
                    let x = a.as_fix()?;
                    let y = eval(func, rhs, env)?.as_fix()?;
                    Ok(Value::Fix(match op {
                        BinOp::Add => x.exact_add(&y),
                        BinOp::Sub => x.exact_sub(&y),
                        BinOp::Mul => x.exact_mul(&y),
                        _ => unreachable!(),
                    }))
                }
            }
        }
        Expr::Compare { op, lhs, rhs } => {
            let a = eval(func, lhs, env)?.as_fix()?;
            let b = eval(func, rhs, env)?.as_fix()?;
            Ok(Value::Bool(op.eval(a.cmp(&b))))
        }
        Expr::Select { cond, then_, else_ } => {
            let c = eval(func, cond, env)?.as_bool()?;
            // Evaluate both arms (hardware mux semantics) but return one.
            let t = eval(func, then_, env)?;
            let e = eval(func, else_, env)?;
            Ok(if c { t } else { e })
        }
        Expr::Cast {
            ty,
            quantization,
            overflow,
            arg,
        } => {
            let a = eval(func, arg, env)?.as_fix()?;
            let fmt = ty
                .format()
                .ok_or(EvalError::TypeMismatch("cast to bool is not supported"))?;
            Ok(Value::Fix(a.cast_with(fmt, *quantization, *overflow)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::FunctionBuilder;
    use crate::expr::CmpOp;

    fn fir4() -> (Function, VarId, VarId, VarId) {
        // out = sum x[k] * c[k]
        let mut b = FunctionBuilder::new("fir4");
        let x = b.param_array("x", Ty::fixed(10, 2), 4);
        let c = b.param_array("c", Ty::fixed(10, 2), 4);
        let out = b.param_scalar("out", Ty::fixed(22, 6));
        let acc = b.local("acc", Ty::fixed(22, 6));
        b.assign(acc, Expr::int_const(0));
        b.for_loop("mac", 0, CmpOp::Lt, 4, 1, |b, k| {
            b.assign(
                acc,
                Expr::add(
                    Expr::var(acc),
                    Expr::mul(Expr::load(x, Expr::var(k)), Expr::load(c, Expr::var(k))),
                ),
            );
        });
        b.assign(out, Expr::var(acc));
        let f = b.build();
        let (x, c, out) = (f.params[0], f.params[1], f.params[2]);
        (f, x, c, out)
    }

    fn fix_arr(vals: &[f64], fmt: Format) -> Slot {
        Slot::Array(vals.iter().map(|v| Fixed::from_f64(*v, fmt)).collect())
    }

    #[test]
    fn fir_computes_dot_product() {
        let (f, x, c, out) = fir4();
        let fmt = Format::signed(10, 2);
        let mut interp = Interpreter::new(f);
        let res = interp
            .call(&[
                (x, fix_arr(&[1.0, 0.5, -0.25, 1.5], fmt)),
                (c, fix_arr(&[0.5, 0.5, 1.0, -1.0], fmt)),
            ])
            .unwrap();
        let got = res[&out].scalar().unwrap().to_f64();
        assert_eq!(got, 1.0 * 0.5 + 0.5 * 0.5 - 0.25 - 1.5);
    }

    #[test]
    fn missing_input_is_an_error() {
        let (f, x, _, _) = fir4();
        let fmt = Format::signed(10, 2);
        let mut interp = Interpreter::new(f);
        let err = interp.call(&[(x, fix_arr(&[0.0; 4], fmt))]).unwrap_err();
        assert!(matches!(err, EvalError::MissingInput { .. }));
    }

    #[test]
    fn wrong_shape_is_an_error() {
        let (f, x, c, _) = fir4();
        let fmt = Format::signed(10, 2);
        let mut interp = Interpreter::new(f);
        let err = interp
            .call(&[
                (x, Slot::Scalar(Fixed::zero(fmt))),
                (c, fix_arr(&[0.0; 4], fmt)),
            ])
            .unwrap_err();
        assert!(matches!(err, EvalError::BadArgument { .. }));
    }

    #[test]
    fn static_state_persists_and_resets() {
        let mut b = FunctionBuilder::new("acc");
        let inp = b.param_scalar("inp", Ty::int(8));
        let out = b.param_scalar("out", Ty::int(16));
        let state = b.static_scalar("state", Ty::int(16));
        b.assign(state, Expr::add(Expr::var(state), Expr::var(inp)));
        b.assign(out, Expr::var(state));
        let f = b.build();
        let (inp, out) = (f.params[0], f.params[1]);
        let mut interp = Interpreter::new(f);
        let one = Slot::Scalar(Fixed::from_int(5, Format::integer(8, Signedness::Signed)));
        let r1 = interp.call(&[(inp, one.clone())]).unwrap();
        let r2 = interp.call(&[(inp, one.clone())]).unwrap();
        assert_eq!(r1[&out].scalar().unwrap().to_i64(), 5);
        assert_eq!(r2[&out].scalar().unwrap().to_i64(), 10);
        interp.reset();
        let r3 = interp.call(&[(inp, one)]).unwrap();
        assert_eq!(r3[&out].scalar().unwrap().to_i64(), 5);
    }

    #[test]
    fn descending_loop_with_guard() {
        // Shift an array down by one, as dfe_shift does.
        let mut b = FunctionBuilder::new("shift");
        let a = b.param_array("a", Ty::int(8), 4);
        b.for_loop("sh", 2, CmpOp::Ge, 0, -1, |b, k| {
            b.store(
                a,
                Expr::add(Expr::var(k), Expr::int_const(1)),
                Expr::load(a, Expr::var(k)),
            );
        });
        let f = b.build();
        let a_id = f.params[0];
        let mut interp = Interpreter::new(f);
        let fmt = Format::integer(8, Signedness::Signed);
        let slot = Slot::Array(
            [1, 2, 3, 4]
                .iter()
                .map(|v| Fixed::from_int(*v, fmt))
                .collect(),
        );
        let res = interp.call(&[(a_id, slot)]).unwrap();
        let vals: Vec<i64> = res[&a_id]
            .array()
            .unwrap()
            .iter()
            .map(|f| f.to_i64())
            .collect();
        assert_eq!(vals, vec![1, 1, 2, 3]);
    }

    #[test]
    fn out_of_bounds_reported() {
        let mut b = FunctionBuilder::new("oob");
        let a = b.param_array("a", Ty::int(8), 4);
        let out = b.param_scalar("out", Ty::int(8));
        b.assign(out, Expr::load(a, Expr::int_const(4)));
        let f = b.build();
        let a_id = f.params[0];
        let mut interp = Interpreter::new(f);
        let fmt = Format::integer(8, Signedness::Signed);
        let slot = Slot::Array(vec![Fixed::zero(fmt); 4]);
        let err = interp.call(&[(a_id, slot)]).unwrap_err();
        assert!(matches!(err, EvalError::IndexOutOfBounds { index: 4, .. }));
    }

    #[test]
    fn select_and_compare() {
        let mut b = FunctionBuilder::new("clip");
        let x = b.param_scalar("x", Ty::int(8));
        let out = b.param_scalar("out", Ty::int(8));
        b.assign(
            out,
            Expr::select(
                Expr::cmp(CmpOp::Gt, Expr::var(x), Expr::int_const(3)),
                Expr::int_const(3),
                Expr::var(x),
            ),
        );
        let f = b.build();
        let (x, out) = (f.params[0], f.params[1]);
        let mut interp = Interpreter::new(f);
        let fmt = Format::integer(8, Signedness::Signed);
        let call = |i: &mut Interpreter, v: i64| {
            let r = i
                .call(&[(x, Slot::Scalar(Fixed::from_int(v, fmt)))])
                .unwrap();
            r[&out].scalar().unwrap().to_i64()
        };
        assert_eq!(call(&mut interp, 10), 3);
        assert_eq!(call(&mut interp, -5), -5);
    }

    #[test]
    fn signum_values() {
        let mut b = FunctionBuilder::new("sgn");
        let x = b.param_scalar("x", Ty::fixed(10, 2));
        let out = b.param_scalar("out", Ty::fixed(2, 2));
        b.assign(out, Expr::signum(Expr::var(x)));
        let f = b.build();
        let (x, out) = (f.params[0], f.params[1]);
        let mut interp = Interpreter::new(f);
        let fmt = Format::signed(10, 2);
        let call = |i: &mut Interpreter, v: f64| {
            let r = i
                .call(&[(x, Slot::Scalar(Fixed::from_f64(v, fmt)))])
                .unwrap();
            r[&out].scalar().unwrap().to_i64()
        };
        assert_eq!(call(&mut interp, 0.5), 1);
        assert_eq!(call(&mut interp, -0.5), -1);
        assert_eq!(call(&mut interp, 0.0), 0);
    }

    #[test]
    fn assignment_quantizes_to_declared_type() {
        let mut b = FunctionBuilder::new("q");
        let x = b.param_scalar("x", Ty::fixed(10, 2));
        let out = b.param_scalar("out", Ty::fixed(4, 2)); // 2 frac bits
        b.assign(out, Expr::var(x));
        let f = b.build();
        let (x, out) = (f.params[0], f.params[1]);
        let mut interp = Interpreter::new(f);
        let r = interp
            .call(&[(
                x,
                Slot::Scalar(Fixed::from_f64(1.3125, Format::signed(10, 2))),
            )])
            .unwrap();
        // 1.3125 truncated to 2 fractional bits = 1.25.
        assert_eq!(r[&out].scalar().unwrap().to_f64(), 1.25);
    }
}
