//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this workspace ships
//! a minimal wall-clock benchmark harness that is source-compatible with
//! the criterion API subset its benches use: [`Criterion`],
//! `benchmark_group`/`bench_function`, `Bencher::iter`, [`black_box`] and
//! the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is warmed up for a fixed wall-clock
//! budget, then sampled in batches until the measurement budget elapses;
//! the mean, minimum and iteration count are reported on stdout. Results
//! are also collected on the [`Criterion`] instance so harness binaries
//! can serialize them (see [`Criterion::results`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// An opaque identity function that prevents the optimizer from deleting a
/// computation or const-folding its input.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/name` identifier.
    pub id: String,
    /// Mean time per iteration in nanoseconds.
    pub mean_ns: f64,
    /// Fastest observed batch, per iteration, in nanoseconds.
    pub min_ns: f64,
    /// Total iterations measured.
    pub iters: u64,
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    warmup: Duration,
    measurement: Duration,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup: Duration::from_millis(300),
            measurement: Duration::from_millis(1200),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Accepts CLI arguments for interface parity (filters and criterion
    /// flags are ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the warm-up budget.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warmup = d;
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run(name.to_string(), f);
        self
    }

    /// All measurements taken so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    fn run(&mut self, id: String, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            mode: Mode::Warmup(self.warmup),
            total: Duration::ZERO,
            iters: 0,
            min_ns: f64::INFINITY,
        };
        f(&mut b);
        b.mode = Mode::Measure(self.measurement);
        b.total = Duration::ZERO;
        b.iters = 0;
        b.min_ns = f64::INFINITY;
        f(&mut b);
        let mean_ns = if b.iters > 0 {
            b.total.as_nanos() as f64 / b.iters as f64
        } else {
            f64::NAN
        };
        println!(
            "bench {id:<48} {:>14.1} ns/iter (min {:>12.1}, {} iters)",
            mean_ns, b.min_ns, b.iters
        );
        self.results.push(BenchResult {
            id,
            mean_ns,
            min_ns: b.min_ns,
            iters: b.iters,
        });
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in this group.
    pub fn bench_function(
        &mut self,
        name: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, name);
        self.c.run(id, f);
        self
    }

    /// Finishes the group (a no-op; provided for API parity).
    pub fn finish(self) {}
}

enum Mode {
    Warmup(Duration),
    Measure(Duration),
}

/// Passed to the benchmark closure; runs the measured routine.
pub struct Bencher {
    mode: Mode,
    total: Duration,
    iters: u64,
    min_ns: f64,
}

impl Bencher {
    /// Times `routine` in growing batches until the phase budget elapses.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let budget = match self.mode {
            Mode::Warmup(d) | Mode::Measure(d) => d,
        };
        let phase = Instant::now();
        let mut batch: u64 = 1;
        while phase.elapsed() < budget {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = start.elapsed();
            self.total += dt;
            self.iters += batch;
            let per_iter = dt.as_nanos() as f64 / batch as f64;
            if per_iter < self.min_ns {
                self.min_ns = per_iter;
            }
            // Grow batches until one batch takes ~1/20 of the budget, so
            // timer overhead amortizes away for nanosecond routines.
            if dt < budget / 20 {
                batch = batch.saturating_mul(2);
            }
        }
    }
}

/// Declares a benchmark group function, criterion style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion {
            warmup: Duration::from_millis(5),
            measurement: Duration::from_millis(20),
            results: Vec::new(),
        };
        let mut g = c.benchmark_group("g");
        g.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
        let r = &c.results()[0];
        assert_eq!(r.id, "g/spin");
        assert!(r.iters > 0);
        assert!(r.mean_ns.is_finite() && r.mean_ns > 0.0);
        assert!(r.min_ns <= r.mean_ns * 1.001);
    }
}
