//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the small slice of the `rand` 0.8 API it actually uses: a seeded
//! [`rngs::StdRng`] plus the [`Rng`]/[`SeedableRng`] traits with
//! `gen_range` over integer and float ranges. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic for a given
//! seed, which is all the tests and harnesses rely on (they compare two
//! implementations on the *same* stream, never golden values from the
//! real `rand`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seeding support (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random value generation (subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 raw bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        let (lo, hi, inclusive) = range.bounds();
        T::sample(self, lo, hi, inclusive)
    }

    /// A uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self, 0.0, 1.0, false) < p
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample<G: Rng + ?Sized>(g: &mut G, lo: Self, hi: Self, inclusive: bool) -> Self;
}

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// `(low, high, inclusive)` bounds of the range.
    fn bounds(&self) -> (T, T, bool);
}

impl<T: Copy> SampleRange<T> for Range<T> {
    fn bounds(&self) -> (T, T, bool) {
        (self.start, self.end, false)
    }
}

impl<T: Copy> SampleRange<T> for RangeInclusive<T> {
    fn bounds(&self) -> (T, T, bool) {
        (*self.start(), *self.end(), true)
    }
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<G: Rng + ?Sized>(g: &mut G, lo: Self, hi: Self, inclusive: bool) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128 + if inclusive { 1 } else { 0 };
                assert!(lo_w < hi_w, "empty range in gen_range");
                let span = (hi_w - lo_w) as u128;
                // Multiply-shift bounded sampling; the tiny modulo bias is
                // irrelevant for test stimulus.
                let r = ((g.next_u64() as u128).wrapping_mul(span)) >> 64;
                (lo_w + r as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128, isize);

impl SampleUniform for f64 {
    fn sample<G: Rng + ?Sized>(g: &mut G, lo: Self, hi: Self, _inclusive: bool) -> Self {
        assert!(lo < hi, "empty range in gen_range");
        // 53 uniform mantissa bits in [0, 1).
        let u = (g.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + u * (hi - lo)
    }
}

/// Types producible by [`Rng::gen`] (subset of the `Standard` distribution).
pub trait Standard {
    /// A uniformly distributed value.
    fn standard<G: Rng + ?Sized>(g: &mut G) -> Self;
}

impl Standard for bool {
    fn standard<G: Rng + ?Sized>(g: &mut G) -> Self {
        g.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn standard<G: Rng + ?Sized>(g: &mut G) -> Self {
        g.next_u64()
    }
}

impl Standard for i64 {
    fn standard<G: Rng + ?Sized>(g: &mut G) -> Self {
        g.next_u64() as i64
    }
}

impl Standard for u32 {
    fn standard<G: Rng + ?Sized>(g: &mut G) -> Self {
        (g.next_u64() >> 32) as u32
    }
}

impl Standard for i32 {
    fn standard<G: Rng + ?Sized>(g: &mut G) -> Self {
        (g.next_u64() >> 32) as i32
    }
}

impl Standard for f64 {
    fn standard<G: Rng + ?Sized>(g: &mut G) -> Self {
        (g.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Pre-packaged generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A deterministic xoshiro256++ generator (stands in for the real
    /// `StdRng`; the algorithm differs but the contract — a seeded,
    /// reproducible stream — is the same).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&x));
            let n: u32 = r.gen_range(0..64u32);
            assert!(n < 64);
            let k: i64 = r.gen_range(-400i64..400);
            assert!((-400..400).contains(&k));
            let m: i128 = 1 << 60;
            let v: i64 = r.gen_range((-m as i64)..m as i64);
            assert!(v >= -m as i64 && v < m as i64);
        }
    }

    #[test]
    fn inclusive_range_hits_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v: u32 = r.gen_range(0..=2u32);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
