//! Test-runner configuration.

pub use crate::strategy::TestRng;

/// Configuration for one [`proptest!`](crate::proptest) block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(128);
        ProptestConfig { cases }
    }
}
