//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace ships
//! a miniature property-testing framework that is source-compatible with
//! the `proptest` API subset its tests use: the [`proptest!`] macro,
//! strategy combinators (`prop_map`, `prop_flat_map`, `prop_recursive`),
//! [`prop_oneof!`], ranges / tuples / string patterns as strategies, and
//! the `prop::{bool, sample, collection, option}` helper modules.
//!
//! Semantics differ from real proptest in one deliberate way: failing
//! cases are *not shrunk* — the failing inputs are printed verbatim
//! instead. Case generation is deterministic per test (seeded from the
//! test's module path), so failures reproduce across runs.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Helper strategies, mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use crate::strategy::{Strategy, TestRng};

        /// The uniform boolean strategy.
        #[derive(Debug, Clone, Copy)]
        pub struct BoolAny;

        impl Strategy for BoolAny {
            type Value = bool;
            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }

        /// Uniformly `true` or `false`.
        pub const ANY: BoolAny = BoolAny;
    }

    /// Sampling from explicit value sets.
    pub mod sample {
        use crate::strategy::BoxedStrategy;

        /// A strategy that picks one element of `options` uniformly.
        pub fn select<T>(options: Vec<T>) -> BoxedStrategy<T>
        where
            T: Clone + std::fmt::Debug + 'static,
        {
            assert!(!options.is_empty(), "select() needs at least one option");
            BoxedStrategy::new(move |rng| {
                let i = (rng.next_u64() % options.len() as u64) as usize;
                options[i].clone()
            })
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{BoxedStrategy, Strategy};

        /// Length specification for [`vec()`]: a fixed size or a range.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // inclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        /// A strategy for vectors whose elements come from `element` and
        /// whose length lies in `size`.
        pub fn vec<S>(element: S, size: impl Into<SizeRange>) -> BoxedStrategy<Vec<S::Value>>
        where
            S: Strategy + 'static,
        {
            let size = size.into();
            BoxedStrategy::new(move |rng| {
                let span = (size.hi - size.lo) as u64 + 1;
                let n = size.lo + (rng.next_u64() % span) as usize;
                (0..n).map(|_| element.sample(rng)).collect()
            })
        }
    }

    /// Option strategies.
    pub mod option {
        use crate::strategy::{BoxedStrategy, Strategy};

        /// `None` about a third of the time, otherwise `Some` of `inner`.
        pub fn of<S>(inner: S) -> BoxedStrategy<Option<S::Value>>
        where
            S: Strategy + 'static,
        {
            BoxedStrategy::new(move |rng| {
                if rng.next_u64() % 3 == 0 {
                    None
                } else {
                    Some(inner.sample(rng))
                }
            })
        }
    }
}

/// The everything-you-need import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, BoxedStrategy, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Builds one test function per `fn` item, running its body over `cases`
/// sampled inputs. `#![proptest_config(..)]` sets the case count.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ [$crate::test_runner::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::strategy::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);)*
                let __desc = format!(
                    concat!("case {}: ", $(stringify!($arg), " = {:?} ",)*),
                    __case, $(&$arg),*
                );
                let __result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let Err(e) = __result {
                    eprintln!("proptest failure in {}; {}", stringify!($name), __desc);
                    ::std::panic::resume_unwind(e);
                }
            }
        }
        $crate::__proptest_fns!{ [$cfg] $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Picks one of several strategies (uniformly) per sample. All arms must
/// share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let arms = vec![$($crate::strategy::Strategy::boxed($arm)),+];
        $crate::strategy::union(arms)
    }};
}
