//! Strategies: deterministic samplers over a seeded generator.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The per-test generator strategies sample from.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A generator seeded from the test's name, so every run of a given
    /// test sees the same case sequence.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the test path.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// The next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A source of values for one [`proptest!`](crate::proptest) argument.
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// deterministic sampler. Combinators consume `self` and return a
/// [`BoxedStrategy`], which is cheap to clone (an `Arc`).
pub trait Strategy {
    /// The type of sampled values.
    type Value: Debug + 'static;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies `f` to every sampled value.
    fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized + 'static,
        U: Debug + 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        BoxedStrategy::new(move |rng| f(self.sample(rng)))
    }

    /// Samples a value, then samples from the strategy `f` builds from it.
    fn prop_flat_map<S2, F>(self, f: F) -> BoxedStrategy<S2::Value>
    where
        Self: Sized + 'static,
        S2: Strategy,
        F: Fn(Self::Value) -> S2 + 'static,
    {
        BoxedStrategy::new(move |rng| f(self.sample(rng)).sample(rng))
    }

    /// Builds a recursive strategy: `self` is the leaf, and `f` wraps an
    /// inner strategy into one more level of structure. A sample picks a
    /// nesting level in `0..=depth` uniformly. The `_desired_size` and
    /// `_expected_branch_size` tuning knobs of real proptest are accepted
    /// and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
    {
        let mut level = self.boxed();
        let mut levels = vec![level.clone()];
        for _ in 0..depth {
            level = f(level).boxed();
            levels.push(level.clone());
        }
        BoxedStrategy::new(move |rng| {
            let i = (rng.next_u64() % levels.len() as u64) as usize;
            levels[i].sample(rng)
        })
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::new(move |rng| self.sample(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> BoxedStrategy<T> {
    /// Wraps a sampler closure.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy(Arc::new(f))
    }
}

impl<T: Debug + 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice between `arms` (the [`prop_oneof!`](crate::prop_oneof)
/// implementation).
pub fn union<T: Debug + 'static>(arms: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    BoxedStrategy::new(move |rng| {
        let i = (rng.next_u64() % arms.len() as u64) as usize;
        arms[i].sample(rng)
    })
}

/// The whole-type strategy for `T` (`any::<i64>()` etc.).
pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    T::arbitrary()
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Debug + Sized + 'static {
    /// The whole-domain strategy.
    fn arbitrary() -> BoxedStrategy<Self>;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> BoxedStrategy<Self> {
                BoxedStrategy::new(|rng| rng.next_u64() as $t)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary() -> BoxedStrategy<Self> {
        BoxedStrategy::new(|rng| rng.next_u64() & 1 == 1)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(S0.0);
impl_tuple_strategy!(S0.0, S1.1);
impl_tuple_strategy!(S0.0, S1.1, S2.2);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);

/// String-pattern strategies: a `&str` is interpreted as a tiny regex
/// subset — a sequence of literal characters or `[...]` character classes,
/// each optionally followed by `{m}`, `{m,n}`, `*` or `+`.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = match atom.rep {
                Rep::One => 1,
                Rep::Range(lo, hi) => lo + (rng.next_u64() % (hi - lo + 1) as u64) as usize,
            };
            for _ in 0..n {
                let i = (rng.next_u64() % atom.chars.len() as u64) as usize;
                out.push(atom.chars[i]);
            }
        }
        out
    }
}

struct Atom {
    chars: Vec<char>,
    rep: Rep,
}

enum Rep {
    One,
    Range(usize, usize),
}

fn parse_pattern(pat: &str) -> Vec<Atom> {
    let chars: Vec<char> = pat.chars().collect();
    let mut atoms: Vec<Atom> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pat:?}"));
                let set = parse_class(&chars[i + 1..close], pat);
                i = close + 1;
                set
            }
            '\\' => {
                i += 1;
                let c = unescape(chars[i]);
                i += 1;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let rep = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed {{ in pattern {pat:?}"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    let (lo, hi) = match body.split_once(',') {
                        Some((a, b)) => (
                            a.trim().parse().expect("repeat lower bound"),
                            b.trim().parse().expect("repeat upper bound"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("repeat count");
                            (n, n)
                        }
                    };
                    Rep::Range(lo, hi)
                }
                '*' => {
                    i += 1;
                    Rep::Range(0, 8)
                }
                '+' => {
                    i += 1;
                    Rep::Range(1, 8)
                }
                _ => Rep::One,
            }
        } else {
            Rep::One
        };
        atoms.push(Atom { chars: set, rep });
    }
    atoms
}

fn parse_class(body: &[char], pat: &str) -> Vec<char> {
    let mut set = Vec::new();
    let mut i = 0;
    while i < body.len() {
        let c = if body[i] == '\\' {
            i += 1;
            unescape(body[i])
        } else {
            body[i]
        };
        // A range like `a-z` (a trailing or leading `-` is a literal).
        if i + 2 < body.len() && body[i + 1] == '-' && body[i + 2] != ']' {
            let hi = if body[i + 2] == '\\' {
                i += 1;
                unescape(body[i + 2])
            } else {
                body[i + 2]
            };
            assert!(c <= hi, "reversed class range in pattern {pat:?}");
            for v in c as u32..=hi as u32 {
                set.push(char::from_u32(v).expect("valid char in class range"));
            }
            i += 3;
        } else {
            set.push(c);
            i += 1;
        }
    }
    assert!(!set.is_empty(), "empty character class in pattern {pat:?}");
    set
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("strategy::tests")
    }

    #[test]
    fn ranges_sample_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (10u32..20).sample(&mut r);
            assert!((10..20).contains(&v));
            let w = (-5i64..=5).sample(&mut r);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn string_pattern_respects_class_and_reps() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[ -~\n]{0,160}".sample(&mut r);
            assert!(s.chars().count() <= 160);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
        let t = "ab{3}".sample(&mut r);
        assert_eq!(t, "abbb");
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf(#[allow(dead_code)] u32),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf(_) => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0u32..10).prop_map(T::Leaf);
        let tree = leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(a.into(), b.into()))
        });
        let mut r = rng();
        for _ in 0..100 {
            // Each recursion level adds at most one Node layer around
            // level-(n-1) strategies, so depth is bounded by the cap.
            assert!(depth(&tree.sample(&mut r)) <= 3 + 3 + 3);
        }
    }

    #[test]
    fn oneof_union_covers_arms() {
        let u = union(vec![(0u32..1).boxed(), (5u32..6).boxed()]);
        let mut r = rng();
        let mut saw = [false; 2];
        for _ in 0..100 {
            match u.sample(&mut r) {
                0 => saw[0] = true,
                5 => saw[1] = true,
                other => panic!("unexpected {other}"),
            }
        }
        assert!(saw[0] && saw[1]);
    }
}
