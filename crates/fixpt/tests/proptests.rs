//! Property-based tests for the fixed-point datatype laws.

use fixpt::{
    overflow_raw, quantize_raw, BitInt, Fixed, Format, Overflow, Quantization, Signedness,
};
use proptest::prelude::*;

fn arb_format() -> impl Strategy<Value = Format> {
    (1u32..=24, -8i32..=24, prop::bool::ANY).prop_map(|(w, i, signed)| {
        let s = if signed {
            Signedness::Signed
        } else {
            Signedness::Unsigned
        };
        Format::new(w, i, s).expect("format in range")
    })
}

fn arb_fixed() -> impl Strategy<Value = Fixed> {
    arb_format().prop_flat_map(|f| {
        (f.min_raw()..=f.max_raw()).prop_map(move |raw| Fixed::from_raw(raw, f).expect("in range"))
    })
}

fn arb_quant() -> impl Strategy<Value = Quantization> {
    prop::sample::select(Quantization::ALL.to_vec())
}

fn arb_ovf() -> impl Strategy<Value = Overflow> {
    prop::sample::select(Overflow::ALL.to_vec())
}

proptest! {
    /// Any rounding mode lands on one of the two neighbouring grid points.
    #[test]
    fn quantize_within_one_ulp(raw in -(1i128 << 60)..(1i128 << 60), shift in 0u32..40, q in arb_quant()) {
        let out = quantize_raw(raw, shift, q);
        let floor = raw >> shift;
        prop_assert!(out == floor || out == floor + 1,
            "quantize({raw}, {shift}, {q:?}) = {out}, floor = {floor}");
    }

    /// Quantization of an exact grid value is the identity.
    #[test]
    fn quantize_exact_identity(v in -(1i128 << 50)..(1i128 << 50), shift in 0u32..30, q in arb_quant()) {
        let raw = v << shift;
        prop_assert_eq!(quantize_raw(raw, shift, q), v);
    }

    /// Quantization is monotone: a <= b implies q(a) <= q(b).
    #[test]
    fn quantize_monotone(a in -(1i128 << 50)..(1i128 << 50), b in -(1i128 << 50)..(1i128 << 50),
                         shift in 0u32..30, q in arb_quant()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(quantize_raw(lo, shift, q) <= quantize_raw(hi, shift, q));
    }

    /// Overflow handling always produces an in-range result.
    #[test]
    fn overflow_in_range(v in any::<i64>(), width in 1u32..=32, signed in any::<bool>(), o in arb_ovf()) {
        let out = overflow_raw(v as i128, width, signed, o);
        let (min, max) = if signed {
            (-(1i128 << (width - 1)), (1i128 << (width - 1)) - 1)
        } else {
            (0, (1i128 << width) - 1)
        };
        prop_assert!(out >= min && out <= max);
    }

    /// Saturation is the nearest representable value for out-of-range inputs.
    #[test]
    fn saturation_is_nearest(v in any::<i64>(), width in 1u32..=32, signed in any::<bool>()) {
        let v = v as i128;
        let out = overflow_raw(v, width, signed, Overflow::Sat);
        let (min, max) = if signed {
            (-(1i128 << (width - 1)), (1i128 << (width - 1)) - 1)
        } else {
            (0, (1i128 << width) - 1)
        };
        prop_assert_eq!(out, v.clamp(min, max));
    }

    /// Wrap is a ring homomorphism: wrap(a) + wrap(b) wraps to wrap(a + b).
    #[test]
    fn wrap_additive(a in any::<i64>(), b in any::<i64>(), width in 1u32..=32, signed in any::<bool>()) {
        let w = |x: i128| overflow_raw(x, width, signed, Overflow::Wrap);
        prop_assert_eq!(w(w(a as i128) + w(b as i128)), w(a as i128 + b as i128));
    }

    /// Exact fixed-point addition matches rational arithmetic via f64 (safe
    /// for the narrow formats generated here).
    #[test]
    fn exact_add_matches_reference(a in arb_fixed(), b in arb_fixed()) {
        let s = a.exact_add(&b);
        prop_assert_eq!(s.to_f64(), a.to_f64() + b.to_f64());
    }

    /// Exact multiplication matches rational arithmetic.
    #[test]
    fn exact_mul_matches_reference(a in arb_fixed(), b in arb_fixed()) {
        let p = a.exact_mul(&b);
        prop_assert_eq!(p.to_f64(), a.to_f64() * b.to_f64());
    }

    /// Subtraction is addition of the negation.
    #[test]
    fn sub_is_add_neg(a in arb_fixed(), b in arb_fixed()) {
        prop_assert_eq!(a.exact_sub(&b).to_f64(), a.exact_add(&b.negate()).to_f64());
    }

    /// Casting into the same format with any modes is the identity.
    #[test]
    fn cast_same_format_identity(a in arb_fixed(), q in arb_quant(), o in arb_ovf()) {
        let back = a.cast_with(a.format(), q, o);
        prop_assert_eq!(back.raw(), a.raw());
    }

    /// Widening (adding fractional and integer bits) then narrowing with
    /// truncation recovers the original value.
    #[test]
    fn widen_narrow_roundtrip(a in arb_fixed()) {
        let f = a.format();
        if f.width() + 8 <= fixpt::MAX_WIDTH {
            let wide = Format::new(f.width() + 8, f.int_bits() + 4, f.signedness()).unwrap();
            let roundtrip = a.cast(wide).cast(f);
            prop_assert_eq!(roundtrip.raw(), a.raw());
        }
    }

    /// Value ordering agrees with the f64 interpretation.
    #[test]
    fn ordering_matches_f64(a in arb_fixed(), b in arb_fixed()) {
        let expected = a.to_f64().partial_cmp(&b.to_f64()).unwrap();
        prop_assert_eq!(a.cmp(&b), expected);
    }

    /// Equal values (across formats) hash identically.
    #[test]
    fn equal_values_hash_equal(a in arb_fixed()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let f = a.format();
        if f.width() + 8 <= fixpt::MAX_WIDTH {
            let wide = Format::new(f.width() + 8, f.int_bits() + 4, f.signedness()).unwrap();
            let b = a.cast(wide);
            prop_assert_eq!(a, b);
            let mut h1 = DefaultHasher::new();
            let mut h2 = DefaultHasher::new();
            a.hash(&mut h1);
            b.hash(&mut h2);
            prop_assert_eq!(h1.finish(), h2.finish());
        }
    }

    /// BitInt widening product never wraps for widths that fit.
    #[test]
    fn bitint_mul_exact(a in -1000i128..1000, b in -1000i128..1000) {
        let x = BitInt::new_signed(12, a);
        let y = BitInt::new_signed(12, b);
        prop_assert_eq!((x * y).value(), a * b);
    }

    /// BitInt part-selects recompose to the original bits.
    #[test]
    fn bitint_bits_recompose(v in any::<i32>()) {
        let x = BitInt::new_signed(32, v as i128);
        let lo = x.bits(15, 0);
        let hi = x.bits(31, 16);
        let recomposed = (hi.value() << 16) | lo.value();
        let expected = overflow_raw(v as i128, 32, false, Overflow::Wrap);
        prop_assert_eq!(recomposed, expected);
    }

    /// required_width is minimal: the value fits in w bits but not w-1.
    #[test]
    fn required_width_minimal(v in any::<i32>()) {
        let v = v as i128;
        let w = BitInt::required_width(v, Signedness::Signed);
        let fits = |bits: u32| {
            bits >= 1 && v >= -(1i128 << (bits - 1)) && v < (1i128 << (bits - 1))
        };
        prop_assert!(fits(w));
        if w > 1 {
            prop_assert!(!fits(w - 1));
        }
    }
}
