//! Fixed-point formats: total width, integer bits and signedness.

use std::fmt;

/// Maximum supported total width in bits.
///
/// Values are stored in an `i128` mantissa; keeping operand widths at or
/// below 64 bits guarantees that sums (width + 1) and products
/// (width₁ + width₂) of mantissas are exactly representable in `i128`.
/// The paper's case study needs at most 24 bits.
pub const MAX_WIDTH: u32 = 64;

/// Signedness of a fixed-point or integer format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Signedness {
    /// Two's-complement signed (`sc_fixed`, `sc_int`).
    Signed,
    /// Unsigned (`sc_ufixed`, `sc_uint`).
    Unsigned,
}

impl Signedness {
    /// Returns `true` for [`Signedness::Signed`].
    pub fn is_signed(self) -> bool {
        matches!(self, Signedness::Signed)
    }
}

impl fmt::Display for Signedness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Signedness::Signed => f.write_str("signed"),
            Signedness::Unsigned => f.write_str("unsigned"),
        }
    }
}

/// Error constructing a [`Format`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// Width was zero.
    ZeroWidth,
    /// Width exceeded [`MAX_WIDTH`].
    WidthTooLarge {
        /// The offending width.
        width: u32,
    },
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::ZeroWidth => f.write_str("format width must be at least 1 bit"),
            FormatError::WidthTooLarge { width } => {
                write!(
                    f,
                    "format width {width} exceeds the supported maximum {MAX_WIDTH}"
                )
            }
        }
    }
}

impl std::error::Error for FormatError {}

/// A fixed-point format, mirroring SystemC's `sc_fixed<W, I>`.
///
/// `width` is the total number of bits and `int_bits` the number of bits to
/// the left of the binary point (including the sign bit for signed formats).
/// As in SystemC, `int_bits` may exceed `width` (coarse quantization, LSB
/// weight above 1) or be zero/negative (all-fractional values).
///
/// The real value represented by a mantissa `raw` is
/// `raw * 2^(int_bits - width)`.
///
/// # Examples
///
/// ```
/// use fixpt::{Format, Signedness};
///
/// // sc_fixed<8,3>: bbb.bbbbb
/// let f = Format::new(8, 3, Signedness::Signed)?;
/// assert_eq!(f.frac_bits(), 5);
/// assert_eq!(f.lsb_weight(), 2f64.powi(-5));
/// assert_eq!(f.max_value(), 3.96875);
/// # Ok::<(), fixpt::FormatError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Format {
    width: u32,
    int_bits: i32,
    signedness: Signedness,
}

impl Format {
    /// Creates a new format with `width` total bits and `int_bits` integer
    /// bits.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::ZeroWidth`] if `width == 0` and
    /// [`FormatError::WidthTooLarge`] if `width > MAX_WIDTH`.
    pub fn new(width: u32, int_bits: i32, signedness: Signedness) -> Result<Self, FormatError> {
        if width == 0 {
            return Err(FormatError::ZeroWidth);
        }
        if width > MAX_WIDTH {
            return Err(FormatError::WidthTooLarge { width });
        }
        Ok(Format {
            width,
            int_bits,
            signedness,
        })
    }

    /// Signed format, panicking on invalid widths. Intended for constants.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`MAX_WIDTH`].
    pub fn signed(width: u32, int_bits: i32) -> Self {
        Format::new(width, int_bits, Signedness::Signed).expect("invalid signed format")
    }

    /// Unsigned format, panicking on invalid widths. Intended for constants.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`MAX_WIDTH`].
    pub fn unsigned(width: u32, int_bits: i32) -> Self {
        Format::new(width, int_bits, Signedness::Unsigned).expect("invalid unsigned format")
    }

    /// Pure-integer format: `width` bits, binary point at the LSB.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`MAX_WIDTH`].
    pub fn integer(width: u32, signedness: Signedness) -> Self {
        Format::new(width, width as i32, signedness).expect("invalid integer format")
    }

    /// Total number of bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of integer bits (bits left of the binary point).
    pub fn int_bits(&self) -> i32 {
        self.int_bits
    }

    /// Number of fractional bits: `width - int_bits`. Negative when the LSB
    /// weight is above one.
    pub fn frac_bits(&self) -> i32 {
        self.width as i32 - self.int_bits
    }

    /// Signedness of the format.
    pub fn signedness(&self) -> Signedness {
        self.signedness
    }

    /// `true` if the format is signed.
    pub fn is_signed(&self) -> bool {
        self.signedness.is_signed()
    }

    /// Weight of the least significant bit as an `f64`.
    pub fn lsb_weight(&self) -> f64 {
        2f64.powi(-self.frac_bits())
    }

    /// Smallest representable mantissa.
    pub fn min_raw(&self) -> i128 {
        if self.is_signed() {
            -(1i128 << (self.width - 1))
        } else {
            0
        }
    }

    /// Largest representable mantissa.
    pub fn max_raw(&self) -> i128 {
        if self.is_signed() {
            (1i128 << (self.width - 1)) - 1
        } else {
            (1i128 << self.width) - 1
        }
    }

    /// Smallest representable real value.
    pub fn min_value(&self) -> f64 {
        self.min_raw() as f64 * self.lsb_weight()
    }

    /// Largest representable real value.
    pub fn max_value(&self) -> f64 {
        self.max_raw() as f64 * self.lsb_weight()
    }

    /// `true` if `raw` is a legal mantissa for this format.
    pub fn contains_raw(&self, raw: i128) -> bool {
        raw >= self.min_raw() && raw <= self.max_raw()
    }

    /// The exact (lossless) format of the sum of values in `self` and `other`
    /// with matching signedness rules: one extra integer bit, fractional bits
    /// covering both operands. When exactly one operand is unsigned it is
    /// first sign-extended (one more integer bit) so its full range fits the
    /// signed result.
    ///
    /// # Panics
    ///
    /// Panics if the exact result format exceeds [`MAX_WIDTH`] bits.
    pub fn add_format(&self, other: &Format) -> Format {
        let signed = self.is_signed() || other.is_signed();
        let eff = |f: &Format| {
            if signed && !f.is_signed() {
                f.int_bits + 1
            } else {
                f.int_bits
            }
        };
        let int = eff(self).max(eff(other)) + 1;
        let frac = self.frac_bits().max(other.frac_bits());
        let width = exact_width(int, frac, "sum", self, other);
        Format {
            width,
            int_bits: int,
            signedness: if signed {
                Signedness::Signed
            } else {
                Signedness::Unsigned
            },
        }
    }

    /// The exact (lossless) format of the difference of values in `self` and
    /// `other`: always signed, with unsigned operands sign-extended.
    ///
    /// # Panics
    ///
    /// Panics if the exact result format exceeds [`MAX_WIDTH`] bits.
    pub fn sub_format(&self, other: &Format) -> Format {
        let eff = |f: &Format| {
            if f.is_signed() {
                f.int_bits
            } else {
                f.int_bits + 1
            }
        };
        let int = eff(self).max(eff(other)) + 1;
        let frac = self.frac_bits().max(other.frac_bits());
        let width = exact_width(int, frac, "difference", self, other);
        Format {
            width,
            int_bits: int,
            signedness: Signedness::Signed,
        }
    }

    /// The exact (lossless) format of the product of values in `self` and
    /// `other`: integer bits and fractional bits both add.
    ///
    /// # Panics
    ///
    /// Panics if the exact result format exceeds [`MAX_WIDTH`] bits.
    pub fn mul_format(&self, other: &Format) -> Format {
        let int = self.int_bits + other.int_bits;
        let frac = self.frac_bits() + other.frac_bits();
        let signed = self.is_signed() || other.is_signed();
        let width = exact_width(int, frac, "product", self, other);
        Format {
            width,
            int_bits: int,
            signedness: if signed {
                Signedness::Signed
            } else {
                Signedness::Unsigned
            },
        }
    }

    /// The exact format of the negation of values in `self`: signed, one
    /// extra integer bit when the operand was unsigned or at full negative
    /// range.
    pub fn neg_format(&self) -> Format {
        let int = self.int_bits + 1;
        let width = self.width + 1;
        assert!(
            width <= MAX_WIDTH,
            "exact negation of {self} exceeds the {MAX_WIDTH}-bit limit"
        );
        Format {
            width,
            int_bits: int,
            signedness: Signedness::Signed,
        }
    }
}

/// Width of an exact result format; panics when it exceeds [`MAX_WIDTH`].
fn exact_width(int: i32, frac: i32, what: &str, a: &Format, b: &Format) -> u32 {
    let width = (int + frac).max(1);
    assert!(
        width as u32 <= MAX_WIDTH,
        "exact {what} of {a} and {b} exceeds the {MAX_WIDTH}-bit limit"
    );
    width as u32
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = if self.is_signed() { "fixed" } else { "ufixed" };
        write!(f, "{tag}<{},{}>", self.width, self.int_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_properties() {
        let f = Format::signed(8, 3);
        assert_eq!(f.width(), 8);
        assert_eq!(f.int_bits(), 3);
        assert_eq!(f.frac_bits(), 5);
        assert!(f.is_signed());
        assert_eq!(f.min_raw(), -128);
        assert_eq!(f.max_raw(), 127);
        assert_eq!(f.lsb_weight(), 1.0 / 32.0);
        assert_eq!(f.min_value(), -4.0);
        assert_eq!(f.max_value(), 127.0 / 32.0);
    }

    #[test]
    fn unsigned_ranges() {
        let f = Format::unsigned(4, 4);
        assert_eq!(f.min_raw(), 0);
        assert_eq!(f.max_raw(), 15);
        assert_eq!(f.min_value(), 0.0);
        assert_eq!(f.max_value(), 15.0);
    }

    #[test]
    fn int_bits_can_exceed_width() {
        // sc_fixed<4,6>: LSB weight 4.
        let f = Format::signed(4, 6);
        assert_eq!(f.frac_bits(), -2);
        assert_eq!(f.lsb_weight(), 4.0);
        assert_eq!(f.max_value(), 7.0 * 4.0);
    }

    #[test]
    fn negative_int_bits() {
        // sc_fixed<4,-2>: all fractional, MSB weight 2^-3.
        let f = Format::signed(4, -2);
        assert_eq!(f.frac_bits(), 6);
        assert_eq!(f.max_value(), 7.0 / 64.0);
    }

    #[test]
    fn rejects_bad_widths() {
        assert_eq!(
            Format::new(0, 0, Signedness::Signed).unwrap_err(),
            FormatError::ZeroWidth
        );
        assert_eq!(
            Format::new(65, 0, Signedness::Signed).unwrap_err(),
            FormatError::WidthTooLarge { width: 65 }
        );
    }

    #[test]
    fn arithmetic_result_formats() {
        let a = Format::signed(10, 0);
        let b = Format::signed(10, 0);
        let m = a.mul_format(&b);
        assert_eq!(m.width(), 20);
        assert_eq!(m.int_bits(), 0);
        let s = a.add_format(&b);
        assert_eq!(s.width(), 11);
        assert_eq!(s.int_bits(), 1);
    }

    #[test]
    fn add_format_mixed_points() {
        let a = Format::signed(8, 3); // 5 frac
        let b = Format::signed(6, 4); // 2 frac
        let s = a.add_format(&b);
        assert_eq!(s.int_bits(), 5);
        assert_eq!(s.frac_bits(), 5);
        assert_eq!(s.width(), 10);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Format::signed(8, 3).to_string(), "fixed<8,3>");
        assert_eq!(Format::unsigned(6, 6).to_string(), "ufixed<6,6>");
    }

    #[test]
    fn contains_raw_bounds() {
        let f = Format::signed(4, 4);
        assert!(f.contains_raw(-8));
        assert!(f.contains_raw(7));
        assert!(!f.contains_raw(8));
        assert!(!f.contains_raw(-9));
    }
}
