//! Bit-accurate integers (`mc_int` / `sc_bigint` analogue).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, BitAnd, BitOr, BitXor, Mul, Neg, Not, Shl, Shr, Sub};

use crate::format::{Signedness, MAX_WIDTH};
use crate::modes::{overflow_raw, Overflow};

/// A bit-accurate integer of a fixed width.
///
/// Mirrors Mentor's `mc_int` / SystemC's `sc_bigint`: operations between
/// `BitInt`s are performed in full precision and the *assignment* (here the
/// constructor / [`BitInt::assign`]) wraps the value into the destination
/// width, which is how RTL integer registers behave.
///
/// # Examples
///
/// ```
/// use fixpt::BitInt;
///
/// // int17 as in the paper: a = (int17)(a + b*c)
/// let b = BitInt::new_signed(17, 30_000);
/// let c = BitInt::new_signed(17, 3);
/// let a = BitInt::new_signed(17, 40_000);
/// let r = a.wrapping_add(&b.wrapping_mul(&c)); // 130000 wraps into 17 bits
/// assert_eq!(r.value(), 130_000 - (1 << 17));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitInt {
    value: i128,
    width: u32,
    signedness: Signedness,
}

impl BitInt {
    /// Creates a signed `width`-bit integer, wrapping `value` into range.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`MAX_WIDTH`].
    pub fn new_signed(width: u32, value: i128) -> Self {
        Self::with_signedness(width, Signedness::Signed, value)
    }

    /// Creates an unsigned `width`-bit integer, wrapping `value` into range.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`MAX_WIDTH`].
    pub fn new_unsigned(width: u32, value: i128) -> Self {
        Self::with_signedness(width, Signedness::Unsigned, value)
    }

    /// Creates an integer with explicit signedness, wrapping `value`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`MAX_WIDTH`].
    pub fn with_signedness(width: u32, signedness: Signedness, value: i128) -> Self {
        assert!(
            (1..=MAX_WIDTH).contains(&width),
            "BitInt width {width} out of range"
        );
        let value = overflow_raw(value, width, signedness.is_signed(), Overflow::Wrap);
        BitInt {
            value,
            width,
            signedness,
        }
    }

    /// The contained value.
    pub fn value(&self) -> i128 {
        self.value
    }

    /// The width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The signedness.
    pub fn signedness(&self) -> Signedness {
        self.signedness
    }

    /// Returns a copy holding `value` wrapped into this integer's width
    /// (RTL register assignment).
    pub fn assign(&self, value: i128) -> Self {
        BitInt::with_signedness(self.width, self.signedness, value)
    }

    /// Saturating variant of [`assign`](BitInt::assign).
    pub fn assign_saturating(&self, value: i128) -> Self {
        let v = overflow_raw(
            value,
            self.width,
            self.signedness.is_signed(),
            Overflow::Sat,
        );
        BitInt {
            value: v,
            width: self.width,
            signedness: self.signedness,
        }
    }

    /// Full-precision sum wrapped back into `self`'s width.
    pub fn wrapping_add(&self, other: &BitInt) -> Self {
        self.assign(self.value + other.value)
    }

    /// Full-precision difference wrapped back into `self`'s width.
    pub fn wrapping_sub(&self, other: &BitInt) -> Self {
        self.assign(self.value - other.value)
    }

    /// Full-precision product wrapped back into `self`'s width.
    pub fn wrapping_mul(&self, other: &BitInt) -> Self {
        self.assign(self.value * other.value)
    }

    /// Reads bit `i` of the two's-complement representation.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn bit(&self, i: u32) -> bool {
        assert!(
            i < self.width,
            "bit index {i} out of range for {}-bit integer",
            self.width
        );
        let unsigned = overflow_raw(self.value, self.width, false, Overflow::Wrap);
        (unsigned >> i) & 1 == 1
    }

    /// Extracts bits `[lo, hi]` (inclusive) as an unsigned integer, like a
    /// Verilog part-select.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi >= width`.
    pub fn bits(&self, hi: u32, lo: u32) -> BitInt {
        assert!(
            hi >= lo && hi < self.width,
            "part-select [{hi}:{lo}] out of range"
        );
        let unsigned = overflow_raw(self.value, self.width, false, Overflow::Wrap);
        let w = hi - lo + 1;
        let mask = (1i128 << w) - 1;
        BitInt {
            value: (unsigned >> lo) & mask,
            width: w,
            signedness: Signedness::Unsigned,
        }
    }

    /// Minimum width needed to represent `value` with the given signedness
    /// (at least 1). This is the analysis behind the paper's Figure 2
    /// automatic bit reduction.
    pub fn required_width(value: i128, signedness: Signedness) -> u32 {
        match signedness {
            Signedness::Unsigned => {
                debug_assert!(value >= 0);
                (128 - value.leading_zeros()).max(1)
            }
            Signedness::Signed => {
                if value >= 0 {
                    (128 - value.leading_zeros()) + 1
                } else {
                    128 - (!value).leading_zeros() + 1
                }
            }
        }
    }
}

impl Add for BitInt {
    type Output = BitInt;
    /// Full-precision sum carried in a widened result (max width + 1,
    /// capped at [`MAX_WIDTH`]).
    fn add(self, rhs: BitInt) -> BitInt {
        let w = (self.width.max(rhs.width) + 1).min(MAX_WIDTH);
        let s = if self.signedness.is_signed() || rhs.signedness.is_signed() {
            Signedness::Signed
        } else {
            Signedness::Unsigned
        };
        BitInt::with_signedness(w, s, self.value + rhs.value)
    }
}

impl Sub for BitInt {
    type Output = BitInt;
    /// Full-precision difference (always signed, widened).
    fn sub(self, rhs: BitInt) -> BitInt {
        let w = (self.width.max(rhs.width) + 1).min(MAX_WIDTH);
        BitInt::with_signedness(w, Signedness::Signed, self.value - rhs.value)
    }
}

impl Mul for BitInt {
    type Output = BitInt;
    /// Full-precision product carried in a widened result (sum of widths,
    /// capped at [`MAX_WIDTH`]).
    fn mul(self, rhs: BitInt) -> BitInt {
        let w = (self.width + rhs.width).min(MAX_WIDTH);
        let s = if self.signedness.is_signed() || rhs.signedness.is_signed() {
            Signedness::Signed
        } else {
            Signedness::Unsigned
        };
        BitInt::with_signedness(w, s, self.value * rhs.value)
    }
}

impl Neg for BitInt {
    type Output = BitInt;
    fn neg(self) -> BitInt {
        let w = (self.width + 1).min(MAX_WIDTH);
        BitInt::with_signedness(w, Signedness::Signed, -self.value)
    }
}

impl Not for BitInt {
    type Output = BitInt;
    fn not(self) -> BitInt {
        let unsigned = overflow_raw(self.value, self.width, false, Overflow::Wrap);
        let mask = if self.width == 128 {
            -1i128
        } else {
            (1i128 << self.width) - 1
        };
        BitInt::with_signedness(self.width, self.signedness, !unsigned & mask)
    }
}

macro_rules! impl_bitop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for BitInt {
            type Output = BitInt;
            fn $method(self, rhs: BitInt) -> BitInt {
                let w = self.width.max(rhs.width);
                let a = overflow_raw(self.value, self.width, false, Overflow::Wrap);
                let b = overflow_raw(rhs.value, rhs.width, false, Overflow::Wrap);
                let s = if self.signedness.is_signed() && rhs.signedness.is_signed() {
                    Signedness::Signed
                } else {
                    Signedness::Unsigned
                };
                BitInt::with_signedness(w, s, a $op b)
            }
        }
    };
}

impl_bitop!(BitAnd, bitand, &);
impl_bitop!(BitOr, bitor, |);
impl_bitop!(BitXor, bitxor, ^);

impl Shl<u32> for BitInt {
    type Output = BitInt;
    /// Shift left within the same width (bits fall off the top).
    fn shl(self, n: u32) -> BitInt {
        if n >= self.width + 64 {
            return self.assign(0);
        }
        self.assign(self.value << n.min(63))
    }
}

impl Shr<u32> for BitInt {
    type Output = BitInt;
    /// Arithmetic (signed) or logical (unsigned) shift right.
    fn shr(self, n: u32) -> BitInt {
        let v = if self.signedness.is_signed() {
            self.value >> n.min(127)
        } else {
            let u = overflow_raw(self.value, self.width, false, Overflow::Wrap);
            if n >= 127 {
                0
            } else {
                u >> n
            }
        };
        self.assign(v)
    }
}

impl PartialOrd for BitInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BitInt {
    fn cmp(&self, other: &Self) -> Ordering {
        self.value.cmp(&other.value)
    }
}

impl fmt::Display for BitInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value)
    }
}

impl fmt::Binary for BitInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let unsigned = overflow_raw(self.value, self.width, false, Overflow::Wrap) as u128;
        write!(f, "{unsigned:0width$b}", width = self.width as usize)
    }
}

impl fmt::LowerHex for BitInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let unsigned = overflow_raw(self.value, self.width, false, Overflow::Wrap) as u128;
        write!(f, "{unsigned:x}")
    }
}

impl fmt::UpperHex for BitInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let unsigned = overflow_raw(self.value, self.width, false, Overflow::Wrap) as u128;
        write!(f, "{unsigned:X}")
    }
}

impl fmt::Octal for BitInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let unsigned = overflow_raw(self.value, self.width, false, Overflow::Wrap) as u128;
        write!(f, "{unsigned:o}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_wraps() {
        assert_eq!(BitInt::new_signed(4, 8).value(), -8);
        assert_eq!(BitInt::new_signed(4, 7).value(), 7);
        assert_eq!(BitInt::new_unsigned(4, 16).value(), 0);
        assert_eq!(BitInt::new_unsigned(4, -1).value(), 15);
    }

    #[test]
    fn widening_ops() {
        let a = BitInt::new_signed(8, 127);
        let b = BitInt::new_signed(8, 127);
        assert_eq!((a + b).value(), 254);
        assert_eq!((a + b).width(), 9);
        assert_eq!((a * b).value(), 16129);
        assert_eq!((a * b).width(), 16);
        assert_eq!((a - b).value(), 0);
    }

    #[test]
    fn wrapping_ops_stay_narrow() {
        let a = BitInt::new_signed(8, 100);
        let b = BitInt::new_signed(8, 100);
        let s = a.wrapping_add(&b); // 200 wraps in 8 bits -> -56
        assert_eq!(s.value(), -56);
        assert_eq!(s.width(), 8);
    }

    #[test]
    fn saturating_assign() {
        let r = BitInt::new_signed(8, 0);
        assert_eq!(r.assign_saturating(1000).value(), 127);
        assert_eq!(r.assign_saturating(-1000).value(), -128);
    }

    #[test]
    fn bit_and_part_select() {
        let v = BitInt::new_unsigned(8, 0b1011_0110);
        assert!(v.bit(1));
        assert!(!v.bit(0));
        assert_eq!(v.bits(5, 2).value(), 0b1101);
        assert_eq!(v.bits(7, 4).value(), 0b1011);
        let n = BitInt::new_signed(4, -1);
        assert_eq!(n.bits(3, 0).value(), 0b1111);
    }

    #[test]
    fn bitwise_ops() {
        let a = BitInt::new_unsigned(4, 0b1100);
        let b = BitInt::new_unsigned(4, 0b1010);
        assert_eq!((a & b).value(), 0b1000);
        assert_eq!((a | b).value(), 0b1110);
        assert_eq!((a ^ b).value(), 0b0110);
        assert_eq!((!a).value(), 0b0011);
    }

    #[test]
    fn not_of_signed() {
        let a = BitInt::new_signed(4, -1); // 0b1111
        assert_eq!((!a).value(), 0);
    }

    #[test]
    fn shifts() {
        let a = BitInt::new_unsigned(8, 0b0110_0000);
        assert_eq!((a << 1).value(), 0b1100_0000);
        assert_eq!((a << 2).value(), 0b1000_0000); // top bit falls off
        let s = BitInt::new_signed(8, -64);
        assert_eq!((s >> 2).value(), -16); // arithmetic
        let u = BitInt::new_unsigned(8, 0b1000_0000);
        assert_eq!((u >> 3).value(), 0b0001_0000); // logical
        assert_eq!((u >> 200).value(), 0);
        assert_eq!((u << 200).value(), 0);
    }

    #[test]
    fn negation_widens() {
        let m = BitInt::new_signed(4, -8);
        assert_eq!((-m).value(), 8);
        assert_eq!((-m).width(), 5);
    }

    #[test]
    fn required_width_examples() {
        // Figure 2: loop counter for N iterations.
        assert_eq!(BitInt::required_width(0, Signedness::Unsigned), 1);
        assert_eq!(BitInt::required_width(7, Signedness::Unsigned), 3);
        assert_eq!(BitInt::required_width(8, Signedness::Unsigned), 4);
        assert_eq!(BitInt::required_width(15, Signedness::Unsigned), 4);
        assert_eq!(BitInt::required_width(16, Signedness::Unsigned), 5);
        assert_eq!(BitInt::required_width(0, Signedness::Signed), 1);
        assert_eq!(BitInt::required_width(-1, Signedness::Signed), 1);
        assert_eq!(BitInt::required_width(-2, Signedness::Signed), 2);
        assert_eq!(BitInt::required_width(1, Signedness::Signed), 2);
        assert_eq!(BitInt::required_width(-128, Signedness::Signed), 8);
        assert_eq!(BitInt::required_width(127, Signedness::Signed), 8);
        // 17-bit example from Section 3.2.
        assert_eq!(BitInt::required_width(65_535, Signedness::Signed), 17);
    }

    #[test]
    fn ordering_and_formatting() {
        let a = BitInt::new_signed(8, -5);
        let b = BitInt::new_signed(8, 3);
        assert!(a < b);
        assert_eq!(format!("{a}"), "-5");
        assert_eq!(format!("{a:b}"), "11111011");
        assert_eq!(format!("{a:x}"), "fb");
        assert_eq!(format!("{a:X}"), "FB");
        assert_eq!(format!("{a:o}"), "373");
    }
}
