//! Const-generic conveniences over [`Fixed`].

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use crate::fixed::Fixed;
use crate::format::{Format, Signedness};
use crate::modes::{Overflow, Quantization};

/// A signed fixed-point value with compile-time format `sc_fixed<W, I>`.
///
/// `Fx` is an ergonomic wrapper over [`Fixed`] for code whose formats are
/// known statically (the DSP reference models). Arithmetic between equal
/// formats quantizes the exact result back into `<W, I>` with the SystemC
/// default modes (truncate, wrap) — i.e. it behaves like a C assignment
/// `a = a + b` on `sc_fixed<W, I>` variables. Use [`Fx::widening`] to access
/// the exact [`Fixed`] value when an accumulator needs more headroom.
///
/// # Examples
///
/// ```
/// use fixpt::Fx;
///
/// type Coef = Fx<10, 0>; // sc_fixed<10,0>
/// let a = Coef::from_f64(0.25);
/// let b = Coef::from_f64(0.125);
/// assert_eq!((a + b).to_f64(), 0.375);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fx<const W: u32, const I: i32> {
    inner: Fixed,
}

impl<const W: u32, const I: i32> Fx<W, I> {
    /// The compile-time format.
    ///
    /// # Panics
    ///
    /// Panics (at first use) if `W` is zero or exceeds
    /// [`MAX_WIDTH`](crate::MAX_WIDTH).
    pub fn format() -> Format {
        Format::signed(W, I)
    }

    /// Zero.
    pub fn zero() -> Self {
        Fx {
            inner: Fixed::zero(Self::format()),
        }
    }

    /// Converts from `f64` with default modes (truncate, wrap).
    pub fn from_f64(v: f64) -> Self {
        Fx {
            inner: Fixed::from_f64(v, Self::format()),
        }
    }

    /// Converts from `f64` with explicit modes.
    pub fn from_f64_with(v: f64, q: Quantization, o: Overflow) -> Self {
        Fx {
            inner: Fixed::from_f64_with(v, Self::format(), q, o),
        }
    }

    /// Quantizes any [`Fixed`] into this format with default modes.
    pub fn from_fixed(v: Fixed) -> Self {
        Fx {
            inner: v.cast(Self::format()),
        }
    }

    /// Quantizes any [`Fixed`] into this format with explicit modes.
    pub fn from_fixed_with(v: Fixed, q: Quantization, o: Overflow) -> Self {
        Fx {
            inner: v.cast_with(Self::format(), q, o),
        }
    }

    /// The exact dynamically-formatted value, for widening arithmetic.
    pub fn widening(&self) -> Fixed {
        self.inner
    }

    /// The represented value as `f64`.
    pub fn to_f64(&self) -> f64 {
        self.inner.to_f64()
    }

    /// The raw mantissa.
    pub fn raw(&self) -> i128 {
        self.inner.raw()
    }

    /// Sign of the value: -1, 0 or 1.
    pub fn signum(&self) -> i32 {
        self.inner.signum()
    }
}

impl<const W: u32, const I: i32> Default for Fx<W, I> {
    fn default() -> Self {
        Self::zero()
    }
}

impl<const W: u32, const I: i32> Add for Fx<W, I> {
    type Output = Fx<W, I>;
    fn add(self, rhs: Self) -> Self {
        Self::from_fixed(self.inner + rhs.inner)
    }
}

impl<const W: u32, const I: i32> Sub for Fx<W, I> {
    type Output = Fx<W, I>;
    fn sub(self, rhs: Self) -> Self {
        Self::from_fixed(self.inner - rhs.inner)
    }
}

impl<const W: u32, const I: i32> Mul for Fx<W, I> {
    type Output = Fx<W, I>;
    fn mul(self, rhs: Self) -> Self {
        Self::from_fixed(self.inner * rhs.inner)
    }
}

impl<const W: u32, const I: i32> Neg for Fx<W, I> {
    type Output = Fx<W, I>;
    fn neg(self) -> Self {
        Self::from_fixed(self.inner.negate())
    }
}

impl<const W: u32, const I: i32> fmt::Display for Fx<W, I> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.inner)
    }
}

impl<const W: u32, const I: i32> From<Fx<W, I>> for Fixed {
    fn from(v: Fx<W, I>) -> Fixed {
        v.inner
    }
}

/// Unsigned compile-time-formatted fixed-point (`sc_ufixed<W, I>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UFx<const W: u32, const I: i32> {
    inner: Fixed,
}

impl<const W: u32, const I: i32> UFx<W, I> {
    /// The compile-time format.
    ///
    /// # Panics
    ///
    /// Panics (at first use) if `W` is zero or exceeds
    /// [`MAX_WIDTH`](crate::MAX_WIDTH).
    pub fn format() -> Format {
        Format::new(W, I, Signedness::Unsigned).expect("invalid UFx format")
    }

    /// Zero.
    pub fn zero() -> Self {
        UFx {
            inner: Fixed::zero(Self::format()),
        }
    }

    /// Converts from `f64` with default modes (truncate, wrap).
    pub fn from_f64(v: f64) -> Self {
        UFx {
            inner: Fixed::from_f64(v, Self::format()),
        }
    }

    /// Quantizes any [`Fixed`] into this format with default modes.
    pub fn from_fixed(v: Fixed) -> Self {
        UFx {
            inner: v.cast(Self::format()),
        }
    }

    /// The exact dynamically-formatted value.
    pub fn widening(&self) -> Fixed {
        self.inner
    }

    /// The represented value as `f64`.
    pub fn to_f64(&self) -> f64 {
        self.inner.to_f64()
    }
}

impl<const W: u32, const I: i32> Default for UFx<W, I> {
    fn default() -> Self {
        Self::zero()
    }
}

impl<const W: u32, const I: i32> fmt::Display for UFx<W, I> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.inner)
    }
}

impl<const W: u32, const I: i32> From<UFx<W, I>> for Fixed {
    fn from(v: UFx<W, I>) -> Fixed {
        v.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_format_arithmetic_quantizes_back() {
        type T = Fx<8, 3>;
        let a = T::from_f64(1.25);
        let b = T::from_f64(2.5);
        assert_eq!((a + b).to_f64(), 3.75);
        assert_eq!((a - b).to_f64(), -1.25);
        assert_eq!((a * b).to_f64(), 3.125);
        assert_eq!((-a).to_f64(), -1.25);
    }

    #[test]
    fn overflow_wraps_like_c_assignment() {
        type T = Fx<4, 4>;
        let a = T::from_f64(7.0);
        let b = T::from_f64(2.0);
        // 9 wraps to -7 in 4-bit signed.
        assert_eq!((a + b).to_f64(), -7.0);
    }

    #[test]
    fn widening_escape_hatch() {
        type T = Fx<4, 4>;
        let a = T::from_f64(7.0);
        let exact = a.widening().exact_add(&a.widening());
        assert_eq!(exact.to_f64(), 14.0);
    }

    #[test]
    fn unsigned_type() {
        type U = UFx<6, 6>;
        let x = U::from_f64(63.0);
        assert_eq!(x.to_f64(), 63.0);
        assert_eq!(U::from_f64(64.0).to_f64(), 0.0); // wraps
    }

    #[test]
    fn default_and_display() {
        assert_eq!(Fx::<8, 3>::default().to_f64(), 0.0);
        assert_eq!(format!("{}", Fx::<8, 3>::from_f64(1.5)), "1.5");
    }
}
