//! Bit-accurate integer and fixed-point datatypes with SystemC semantics.
//!
//! This crate reproduces the datatype substrate of *C Based Hardware Design
//! for Wireless Applications* (DATE 2005): the SystemC `sc_fixed`/`sc_ufixed`
//! fixed-point types (with all quantization and overflow modes), the
//! `sc_int`/`mc_int` bit-accurate integers, and the automatic-bit-reduction
//! width analysis behind the paper's Figure 2.
//!
//! # Types
//!
//! - [`Format`] — a fixed-point format `<width, int_bits>` with signedness.
//! - [`Fixed`] — a dynamically-formatted fixed-point value; arithmetic is
//!   exact (full precision) and precision is lost only at explicit casts.
//! - [`Fx`] / [`UFx`] — const-generic wrappers for statically-known formats.
//! - [`BitInt`] — bit-accurate integer with wrap-on-assign semantics.
//! - [`Quantization`] / [`Overflow`] — the SystemC rounding and saturation
//!   modes (`SC_TRN`, `SC_RND_ZERO`, `SC_SAT`, …).
//!
//! # Example: the paper's slicer cast
//!
//! The 64-QAM slicer casts the equalizer output with `SC_RND_ZERO` rounding
//! and `SC_SAT` saturation into a 3-bit integer part:
//!
//! ```
//! use fixpt::{Fixed, Format, Quantization, Overflow};
//!
//! let y = Fixed::from_f64(2.73, Format::signed(20, 4));
//! let sliced = y.cast_with(Format::signed(3, 3), Quantization::RndZero, Overflow::Sat);
//! assert_eq!(sliced.to_f64(), 3.0);
//!
//! let out_of_range = Fixed::from_f64(9.9, Format::signed(20, 8));
//! let sat = out_of_range.cast_with(Format::signed(3, 3), Quantization::RndZero, Overflow::Sat);
//! assert_eq!(sat.to_f64(), 3.0); // saturated to the 3-bit max
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitint;
mod fixed;
mod format;
mod fx;
mod modes;

pub use bitint::BitInt;
pub use fixed::{Fixed, RawOutOfRangeError};
pub use format::{Format, FormatError, Signedness, MAX_WIDTH};
pub use fx::{Fx, UFx};
pub use modes::{overflow_raw, quantize_raw, Overflow, Quantization};
