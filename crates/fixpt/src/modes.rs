//! Quantization (rounding) and overflow (saturation) modes.
//!
//! These reproduce the SystemC LRM fixed-point semantics cited by the paper:
//! `SC_TRN`, `SC_RND`, `SC_RND_ZERO`, … for quantization and `SC_WRAP`,
//! `SC_SAT`, … for overflow. The default SystemC modes are truncation and
//! wrapping, matching `Quantization::Trn` / `Overflow::Wrap` here.

use std::fmt;

/// Quantization (rounding) behaviour when fractional bits are discarded.
///
/// The names follow SystemC: `Trn` ↔ `SC_TRN`, `RndZero` ↔ `SC_RND_ZERO`, etc.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Quantization {
    /// Truncate toward negative infinity (`SC_TRN`, the SystemC default).
    #[default]
    Trn,
    /// Truncate toward zero (`SC_TRN_ZERO`).
    TrnZero,
    /// Round to nearest; ties toward positive infinity (`SC_RND`).
    Rnd,
    /// Round to nearest; ties toward zero (`SC_RND_ZERO`).
    RndZero,
    /// Round to nearest; ties toward negative infinity (`SC_RND_MIN_INF`).
    RndMinInf,
    /// Round to nearest; ties away from zero (`SC_RND_INF`).
    RndInf,
    /// Round to nearest; ties to even (`SC_RND_CONV`, convergent rounding).
    RndConv,
}

impl Quantization {
    /// All quantization modes, for exhaustive testing.
    pub const ALL: [Quantization; 7] = [
        Quantization::Trn,
        Quantization::TrnZero,
        Quantization::Rnd,
        Quantization::RndZero,
        Quantization::RndMinInf,
        Quantization::RndInf,
        Quantization::RndConv,
    ];
}

impl fmt::Display for Quantization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Quantization::Trn => "SC_TRN",
            Quantization::TrnZero => "SC_TRN_ZERO",
            Quantization::Rnd => "SC_RND",
            Quantization::RndZero => "SC_RND_ZERO",
            Quantization::RndMinInf => "SC_RND_MIN_INF",
            Quantization::RndInf => "SC_RND_INF",
            Quantization::RndConv => "SC_RND_CONV",
        };
        f.write_str(s)
    }
}

/// Overflow behaviour when a value exceeds the destination range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Overflow {
    /// Two's-complement wrap-around (`SC_WRAP`, the SystemC default).
    #[default]
    Wrap,
    /// Saturate to the nearest representable bound (`SC_SAT`).
    Sat,
    /// Saturate to zero on overflow (`SC_SAT_ZERO`).
    SatZero,
    /// Symmetric saturation: signed minimum is `-(2^(w-1) - 1)` (`SC_SAT_SYM`).
    SatSym,
}

impl Overflow {
    /// All overflow modes, for exhaustive testing.
    pub const ALL: [Overflow; 4] = [
        Overflow::Wrap,
        Overflow::Sat,
        Overflow::SatZero,
        Overflow::SatSym,
    ];
}

impl fmt::Display for Overflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Overflow::Wrap => "SC_WRAP",
            Overflow::Sat => "SC_SAT",
            Overflow::SatZero => "SC_SAT_ZERO",
            Overflow::SatSym => "SC_SAT_SYM",
        };
        f.write_str(s)
    }
}

/// Drops the low `shift` bits of `raw` according to `mode`, returning the
/// quantized value at the coarser scale.
///
/// This is exact integer arithmetic: `raw` is interpreted as a fixed-point
/// mantissa whose `shift` LSBs are being discarded.
///
/// # Panics
///
/// Panics if `shift >= 127` (cannot occur for formats within
/// [`MAX_WIDTH`](crate::MAX_WIDTH)).
pub fn quantize_raw(raw: i128, shift: u32, mode: Quantization) -> i128 {
    assert!(shift < 127, "quantization shift {shift} out of range");
    if shift == 0 {
        return raw;
    }
    let floor = raw >> shift; // arithmetic shift: toward -inf
    let rem = raw - (floor << shift); // in [0, 2^shift)
    if rem == 0 {
        return floor;
    }
    let half = 1i128 << (shift - 1);
    match mode {
        Quantization::Trn => floor,
        Quantization::TrnZero => {
            if raw < 0 {
                floor + 1 // toward zero for negatives with a remainder
            } else {
                floor
            }
        }
        Quantization::Rnd => {
            if rem >= half {
                floor + 1
            } else {
                floor
            }
        }
        Quantization::RndZero => {
            if rem > half || (rem == half && raw < 0) {
                floor + 1
            } else {
                floor
            }
        }
        Quantization::RndMinInf => {
            if rem > half {
                floor + 1
            } else {
                floor
            }
        }
        Quantization::RndInf => {
            if rem > half || (rem == half && raw > 0) {
                floor + 1
            } else {
                floor
            }
        }
        Quantization::RndConv => {
            if rem > half || (rem == half && (floor & 1) != 0) {
                floor + 1
            } else {
                floor
            }
        }
    }
}

/// Fits `value` into a `width`-bit (two's-complement if `signed`) range
/// according to `mode`.
pub fn overflow_raw(value: i128, width: u32, signed: bool, mode: Overflow) -> i128 {
    debug_assert!((1..=126).contains(&width));
    let (min, max) = if signed {
        (-(1i128 << (width - 1)), (1i128 << (width - 1)) - 1)
    } else {
        (0, (1i128 << width) - 1)
    };
    if (min..=max).contains(&value) {
        return value;
    }
    match mode {
        Overflow::Wrap => {
            let mask = (1i128 << width) - 1;
            let low = value & mask;
            if signed && (low & (1i128 << (width - 1))) != 0 {
                low - (1i128 << width)
            } else {
                low
            }
        }
        Overflow::Sat => {
            if value > max {
                max
            } else {
                min
            }
        }
        Overflow::SatZero => 0,
        Overflow::SatSym => {
            if value > max {
                max
            } else if signed {
                -max
            } else {
                min
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Helper: quantize value v (given with 3 fractional bits) down to 0
    // fractional bits, i.e. shift = 3. v8 is v * 8.
    fn q(v8: i128, mode: Quantization) -> i128 {
        quantize_raw(v8, 3, mode)
    }

    #[test]
    fn trn_floors() {
        assert_eq!(q(21, Quantization::Trn), 2); // 2.625 -> 2
        assert_eq!(q(-21, Quantization::Trn), -3); // -2.625 -> -3
        assert_eq!(q(16, Quantization::Trn), 2); // exact stays
        assert_eq!(q(-16, Quantization::Trn), -2);
    }

    #[test]
    fn trn_zero_truncates_magnitude() {
        assert_eq!(q(21, Quantization::TrnZero), 2); // 2.625 -> 2
        assert_eq!(q(-21, Quantization::TrnZero), -2); // -2.625 -> -2
        assert_eq!(q(-24, Quantization::TrnZero), -3); // exact -3 stays
    }

    #[test]
    fn rnd_ties_up() {
        assert_eq!(q(20, Quantization::Rnd), 3); // 2.5 -> 3
        assert_eq!(q(-20, Quantization::Rnd), -2); // -2.5 -> -2 (toward +inf)
        assert_eq!(q(19, Quantization::Rnd), 2); // 2.375 -> 2
        assert_eq!(q(-19, Quantization::Rnd), -2); // -2.375 -> -2
    }

    #[test]
    fn rnd_zero_ties_toward_zero() {
        assert_eq!(q(20, Quantization::RndZero), 2); // 2.5 -> 2
        assert_eq!(q(-20, Quantization::RndZero), -2); // -2.5 -> -2
        assert_eq!(q(21, Quantization::RndZero), 3); // 2.625 -> 3
        assert_eq!(q(-21, Quantization::RndZero), -3); // -2.625 -> -3
    }

    #[test]
    fn rnd_min_inf_ties_down() {
        assert_eq!(q(20, Quantization::RndMinInf), 2); // 2.5 -> 2
        assert_eq!(q(-20, Quantization::RndMinInf), -3); // -2.5 -> -3
    }

    #[test]
    fn rnd_inf_ties_away() {
        assert_eq!(q(20, Quantization::RndInf), 3); // 2.5 -> 3
        assert_eq!(q(-20, Quantization::RndInf), -3); // -2.5 -> -3
    }

    #[test]
    fn rnd_conv_ties_to_even() {
        assert_eq!(q(20, Quantization::RndConv), 2); // 2.5 -> 2 (even)
        assert_eq!(q(28, Quantization::RndConv), 4); // 3.5 -> 4 (even)
        assert_eq!(q(-20, Quantization::RndConv), -2); // -2.5 -> -2 (even)
        assert_eq!(q(-28, Quantization::RndConv), -4); // -3.5 -> -4 (even)
    }

    #[test]
    fn zero_shift_is_identity() {
        for mode in Quantization::ALL {
            assert_eq!(quantize_raw(12345, 0, mode), 12345);
            assert_eq!(quantize_raw(-777, 0, mode), -777);
        }
    }

    #[test]
    fn wrap_signed() {
        // 4-bit signed range [-8, 7].
        assert_eq!(overflow_raw(8, 4, true, Overflow::Wrap), -8);
        assert_eq!(overflow_raw(-9, 4, true, Overflow::Wrap), 7);
        assert_eq!(overflow_raw(23, 4, true, Overflow::Wrap), 7);
        assert_eq!(overflow_raw(7, 4, true, Overflow::Wrap), 7);
    }

    #[test]
    fn wrap_unsigned() {
        assert_eq!(overflow_raw(16, 4, false, Overflow::Wrap), 0);
        assert_eq!(overflow_raw(17, 4, false, Overflow::Wrap), 1);
        assert_eq!(overflow_raw(-1, 4, false, Overflow::Wrap), 15);
    }

    #[test]
    fn saturate() {
        assert_eq!(overflow_raw(100, 4, true, Overflow::Sat), 7);
        assert_eq!(overflow_raw(-100, 4, true, Overflow::Sat), -8);
        assert_eq!(overflow_raw(100, 4, false, Overflow::Sat), 15);
        assert_eq!(overflow_raw(-3, 4, false, Overflow::Sat), 0);
    }

    #[test]
    fn saturate_zero_and_sym() {
        assert_eq!(overflow_raw(100, 4, true, Overflow::SatZero), 0);
        assert_eq!(overflow_raw(-100, 4, true, Overflow::SatZero), 0);
        assert_eq!(overflow_raw(-100, 4, true, Overflow::SatSym), -7);
        assert_eq!(overflow_raw(100, 4, true, Overflow::SatSym), 7);
        assert_eq!(overflow_raw(-5, 4, false, Overflow::SatSym), 0);
    }

    #[test]
    fn in_range_untouched_all_modes() {
        for mode in Overflow::ALL {
            for v in [-8i128, -1, 0, 3, 7] {
                assert_eq!(overflow_raw(v, 4, true, mode), v, "{mode} {v}");
            }
        }
    }
}
