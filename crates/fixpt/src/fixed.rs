//! Dynamically-formatted bit-accurate fixed-point values.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Add, Mul, Neg, Sub};

use crate::format::{Format, Signedness, MAX_WIDTH};
use crate::modes::{overflow_raw, quantize_raw, Overflow, Quantization};

/// Error constructing a [`Fixed`] from a raw mantissa.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawOutOfRangeError {
    /// The mantissa that did not fit.
    pub raw: i128,
    /// The destination format.
    pub format: Format,
}

impl fmt::Display for RawOutOfRangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "raw mantissa {} does not fit in format {}",
            self.raw, self.format
        )
    }
}

impl std::error::Error for RawOutOfRangeError {}

/// A bit-accurate fixed-point value with a runtime [`Format`].
///
/// `Fixed` mirrors SystemC's `sc_fixed`/`sc_ufixed`: a two's-complement
/// mantissa interpreted with a binary point placed by the format. All
/// arithmetic between `Fixed` values is *exact* (the result carries the
/// full-precision format, as SystemC expressions do before assignment);
/// precision is lost only at explicit [`cast`](Fixed::cast) /
/// [`cast_with`](Fixed::cast_with) boundaries, where a [`Quantization`] and
/// an [`Overflow`] mode apply.
///
/// # Examples
///
/// ```
/// use fixpt::{Fixed, Format, Quantization, Overflow};
///
/// let fmt = Format::signed(8, 3); // sc_fixed<8,3>
/// let a = Fixed::from_f64(1.25, fmt);
/// let b = Fixed::from_f64(0.5, fmt);
/// let product = a.exact_mul(&b); // exact: fixed<16,6>
/// assert_eq!(product.to_f64(), 0.625);
///
/// // Saturating, rounding cast back to the narrow format:
/// let narrowed = product.cast_with(fmt, Quantization::Rnd, Overflow::Sat);
/// assert_eq!(narrowed.to_f64(), 0.625);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Fixed {
    raw: i128,
    format: Format,
}

impl Fixed {
    /// The zero value in `format`.
    pub fn zero(format: Format) -> Self {
        Fixed { raw: 0, format }
    }

    /// Creates a value from a raw mantissa.
    ///
    /// # Errors
    ///
    /// Returns [`RawOutOfRangeError`] if `raw` does not fit the format.
    pub fn from_raw(raw: i128, format: Format) -> Result<Self, RawOutOfRangeError> {
        if format.contains_raw(raw) {
            Ok(Fixed { raw, format })
        } else {
            Err(RawOutOfRangeError { raw, format })
        }
    }

    /// Creates a value from a raw mantissa, wrapping it into range first
    /// (two's-complement truncation, like assigning to a SystemC variable
    /// with `SC_WRAP`).
    pub fn from_raw_wrapped(raw: i128, format: Format) -> Self {
        let raw = overflow_raw(raw, format.width(), format.is_signed(), Overflow::Wrap);
        Fixed { raw, format }
    }

    /// Converts an `f64` using the SystemC default modes (truncate, wrap).
    ///
    /// Non-finite inputs map to zero.
    pub fn from_f64(value: f64, format: Format) -> Self {
        Self::from_f64_with(value, format, Quantization::Trn, Overflow::Wrap)
    }

    /// Converts an `f64` with explicit quantization and overflow modes.
    ///
    /// Non-finite inputs map to zero.
    pub fn from_f64_with(value: f64, format: Format, q: Quantization, o: Overflow) -> Self {
        if !value.is_finite() {
            return Fixed::zero(format);
        }
        // Scale into the destination LSB grid with 30 guard bits so the
        // quantization mode sees the fractional residue.
        const GUARD: u32 = 30;
        let scaled = value * 2f64.powi(format.frac_bits() + GUARD as i32);
        // Clamp to i128 range before converting.
        let scaled = scaled.clamp(-(2f64.powi(126)), 2f64.powi(126));
        let raw_guarded = scaled.round() as i128;
        let raw = quantize_raw(raw_guarded, GUARD, q);
        let raw = overflow_raw(raw, format.width(), format.is_signed(), o);
        Fixed { raw, format }
    }

    /// Converts an integer value (binary point at the LSB of `i`) into
    /// `format` with default modes.
    pub fn from_int(i: i64, format: Format) -> Self {
        let int_fmt = Format::integer(MAX_WIDTH, Signedness::Signed);
        Fixed {
            raw: i as i128,
            format: int_fmt,
        }
        .cast(format)
    }

    /// The raw two's-complement mantissa.
    pub fn raw(&self) -> i128 {
        self.raw
    }

    /// The value's format.
    pub fn format(&self) -> Format {
        self.format
    }

    /// The represented real value as an `f64` (may round for wide formats).
    pub fn to_f64(&self) -> f64 {
        self.raw as f64 * 2f64.powi(-self.format.frac_bits())
    }

    /// The integer part, truncating toward negative infinity (SystemC
    /// `to_int` on a value whose fractional part is discarded by `SC_TRN`).
    pub fn to_i64(&self) -> i64 {
        let f = self.format.frac_bits();
        let v = if f >= 0 {
            quantize_raw(self.raw, f as u32, Quantization::Trn)
        } else {
            self.raw << (-f) as u32
        };
        v as i64
    }

    /// `true` if the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.raw == 0
    }

    /// `true` if the value is negative.
    pub fn is_negative(&self) -> bool {
        self.raw < 0
    }

    /// Sign of the value: `-1`, `0` or `1`.
    pub fn signum(&self) -> i32 {
        self.raw.signum() as i32
    }

    /// Reads mantissa bit `i` (LSB is bit 0), like `sc_fixed::operator[]`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn bit(&self, i: u32) -> bool {
        assert!(
            i < self.format.width(),
            "bit index {i} out of range for {}",
            self.format
        );
        let unsigned = overflow_raw(self.raw, self.format.width(), false, Overflow::Wrap);
        (unsigned >> i) & 1 == 1
    }

    /// Returns a copy with mantissa bit `i` set to `value`, like
    /// `offset[0] = 1` in the paper's slicer.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn with_bit(&self, i: u32, value: bool) -> Self {
        assert!(
            i < self.format.width(),
            "bit index {i} out of range for {}",
            self.format
        );
        let w = self.format.width();
        let mut unsigned = overflow_raw(self.raw, w, false, Overflow::Wrap);
        if value {
            unsigned |= 1i128 << i;
        } else {
            unsigned &= !(1i128 << i);
        }
        let raw = overflow_raw(unsigned, w, self.format.is_signed(), Overflow::Wrap);
        Fixed {
            raw,
            format: self.format,
        }
    }

    /// Casts into `format` with the SystemC default modes (truncate, wrap).
    pub fn cast(&self, format: Format) -> Self {
        self.cast_with(format, Quantization::Trn, Overflow::Wrap)
    }

    /// Casts into `format` applying `q` when fractional bits are dropped and
    /// `o` when the value exceeds the destination range.
    pub fn cast_with(&self, format: Format, q: Quantization, o: Overflow) -> Self {
        let src_frac = self.format.frac_bits();
        let dst_frac = format.frac_bits();
        let raw = if dst_frac >= src_frac {
            let shift = (dst_frac - src_frac) as u32;
            assert!(
                shift < 64,
                "cast between formats {} and {} shifts too far",
                self.format,
                format
            );
            self.raw << shift
        } else {
            quantize_raw(self.raw, (src_frac - dst_frac) as u32, q)
        };
        let raw = overflow_raw(raw, format.width(), format.is_signed(), o);
        Fixed { raw, format }
    }

    fn align(&self, other: &Fixed) -> (i128, i128, i32) {
        let f1 = self.format.frac_bits();
        let f2 = other.format.frac_bits();
        let cf = f1.max(f2);
        let s1 = (cf - f1) as u32;
        let s2 = (cf - f2) as u32;
        assert!(
            s1 < 62 && s2 < 62,
            "operands {} and {} are too far apart in scale for exact arithmetic",
            self.format,
            other.format
        );
        (self.raw << s1, other.raw << s2, cf)
    }

    /// Exact sum; the result carries the full-precision
    /// [`add_format`](Format::add_format).
    ///
    /// # Panics
    ///
    /// Panics if the exact result cannot be represented within
    /// [`MAX_WIDTH`](crate::MAX_WIDTH) bits.
    pub fn exact_add(&self, other: &Fixed) -> Fixed {
        let (a, b, _) = self.align(other);
        let format = self.format.add_format(&other.format);
        let raw = a + b;
        assert!(
            format.contains_raw(raw),
            "exact sum of {} and {} exceeds the {MAX_WIDTH}-bit limit",
            self.format,
            other.format
        );
        Fixed { raw, format }
    }

    /// Exact difference; always signed full precision.
    ///
    /// # Panics
    ///
    /// Panics if the exact result cannot be represented within
    /// [`MAX_WIDTH`](crate::MAX_WIDTH) bits.
    pub fn exact_sub(&self, other: &Fixed) -> Fixed {
        let (a, b, _) = self.align(other);
        let format = self.format.sub_format(&other.format);
        let raw = a - b;
        assert!(
            format.contains_raw(raw),
            "exact difference of {} and {} exceeds the {MAX_WIDTH}-bit limit",
            self.format,
            other.format
        );
        Fixed { raw, format }
    }

    /// Exact product; the result carries the full-precision
    /// [`mul_format`](Format::mul_format).
    ///
    /// # Panics
    ///
    /// Panics if the exact result cannot be represented within
    /// [`MAX_WIDTH`](crate::MAX_WIDTH) bits.
    pub fn exact_mul(&self, other: &Fixed) -> Fixed {
        let format = self.format.mul_format(&other.format);
        let raw = self.raw * other.raw;
        assert!(
            format.contains_raw(raw),
            "exact product of {} and {} exceeds the {MAX_WIDTH}-bit limit",
            self.format,
            other.format
        );
        Fixed { raw, format }
    }

    /// Exact negation (always signed, one extra bit).
    ///
    /// # Panics
    ///
    /// Panics if the exact result cannot be represented within
    /// [`MAX_WIDTH`](crate::MAX_WIDTH) bits (only possible when negating the
    /// minimum of a full-width format).
    pub fn negate(&self) -> Fixed {
        let format = self.format.neg_format();
        let raw = -self.raw;
        assert!(
            format.contains_raw(raw),
            "exact negation of {} exceeds the {MAX_WIDTH}-bit limit",
            self.format
        );
        Fixed { raw, format }
    }

    /// Absolute value (exact, signed format with one extra bit).
    pub fn abs(&self) -> Fixed {
        if self.raw < 0 {
            self.negate()
        } else {
            Fixed {
                raw: self.raw,
                format: self.format.neg_format(),
            }
        }
    }

    /// SystemC `>>`: shifts the *value* right by `n` places within the same
    /// format, truncating shifted-out bits (`SC_TRN`).
    pub fn shr(&self, n: u32) -> Fixed {
        let raw = if n >= 127 {
            if self.raw < 0 {
                -1
            } else {
                0
            }
        } else {
            quantize_raw(self.raw, n, Quantization::Trn)
        };
        Fixed {
            raw,
            format: self.format,
        }
    }

    /// SystemC `<<`: shifts the value left by `n` places within the same
    /// format, wrapping on overflow.
    pub fn shl(&self, n: u32) -> Fixed {
        assert!(n < 64, "left shift {n} too large");
        let raw = overflow_raw(
            self.raw << n,
            self.format.width(),
            self.format.is_signed(),
            Overflow::Wrap,
        );
        Fixed {
            raw,
            format: self.format,
        }
    }

    /// Moves the binary point: returns the exact value `self * 2^n` by
    /// adjusting `int_bits`, with no loss.
    pub fn scale_pow2(&self, n: i32) -> Fixed {
        let format = Format::new(
            self.format.width(),
            self.format.int_bits() + n,
            self.format.signedness(),
        )
        .expect("scaled format within bounds");
        Fixed {
            raw: self.raw,
            format,
        }
    }

    /// Exact value comparison across formats.
    fn cmp_exact(&self, other: &Fixed) -> Ordering {
        let s1 = self.raw.signum();
        let s2 = other.raw.signum();
        if s1 != s2 {
            return s1.cmp(&s2);
        }
        if s1 == 0 {
            return Ordering::Equal;
        }
        // Same nonzero sign: compare canonical (odd mantissa, exponent).
        let (m1, e1) = canonical(self.raw, self.format.frac_bits());
        let (m2, e2) = canonical(other.raw, other.format.frac_bits());
        // Exponent of the MSB: bitlen(|m|) + e.
        let top1 = bitlen(m1.unsigned_abs()) as i64 + e1 as i64;
        let top2 = bitlen(m2.unsigned_abs()) as i64 + e2 as i64;
        if top1 != top2 {
            return if s1 > 0 {
                top1.cmp(&top2)
            } else {
                top2.cmp(&top1)
            };
        }
        // Same MSB position: align (shift bounded by mantissa bit lengths).
        let shift1 = (e1 as i64 - e1.min(e2) as i64) as u32;
        let shift2 = (e2 as i64 - e1.min(e2) as i64) as u32;
        debug_assert!(shift1 <= 64 && shift2 <= 64);
        (m1 << shift1).cmp(&(m2 << shift2))
    }
}

/// Strips trailing zero bits: returns (odd-or-zero mantissa, adjusted
/// exponent) such that `raw * 2^-frac == m * 2^e`.
fn canonical(raw: i128, frac: i32) -> (i128, i32) {
    debug_assert!(raw != 0);
    let tz = raw.trailing_zeros();
    (raw >> tz, tz as i32 - frac)
}

fn bitlen(v: u128) -> u32 {
    128 - v.leading_zeros()
}

impl PartialEq for Fixed {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_exact(other) == Ordering::Equal
    }
}

impl Eq for Fixed {}

impl PartialOrd for Fixed {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Fixed {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_exact(other)
    }
}

impl Hash for Fixed {
    fn hash<H: Hasher>(&self, state: &mut H) {
        if self.raw == 0 {
            0i128.hash(state);
            0i32.hash(state);
        } else {
            let (m, e) = canonical(self.raw, self.format.frac_bits());
            m.hash(state);
            e.hash(state);
        }
    }
}

impl Add for Fixed {
    type Output = Fixed;
    fn add(self, rhs: Fixed) -> Fixed {
        Fixed::exact_add(&self, &rhs)
    }
}

impl Sub for Fixed {
    type Output = Fixed;
    fn sub(self, rhs: Fixed) -> Fixed {
        Fixed::exact_sub(&self, &rhs)
    }
}

impl Mul for Fixed {
    type Output = Fixed;
    fn mul(self, rhs: Fixed) -> Fixed {
        Fixed::exact_mul(&self, &rhs)
    }
}

impl Neg for Fixed {
    type Output = Fixed;
    fn neg(self) -> Fixed {
        self.negate()
    }
}

impl fmt::Display for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_f64() {
        let fmt = Format::signed(8, 3);
        for v in [-4.0, -3.96875, -0.03125, 0.0, 0.03125, 1.25, 3.96875] {
            let x = Fixed::from_f64(v, fmt);
            assert_eq!(x.to_f64(), v, "value {v}");
        }
    }

    #[test]
    fn from_f64_truncates_by_default() {
        let fmt = Format::signed(8, 3);
        assert_eq!(Fixed::from_f64(1.26, fmt).to_f64(), 1.25);
        // SC_TRN floors: -1.26 -> -1.28125
        assert_eq!(Fixed::from_f64(-1.26, fmt).to_f64(), -1.28125);
    }

    #[test]
    fn from_f64_rounds_when_asked() {
        let fmt = Format::signed(8, 3);
        let x = Fixed::from_f64_with(1.26, fmt, Quantization::Rnd, Overflow::Sat);
        assert_eq!(x.to_f64(), 1.25);
        let y = Fixed::from_f64_with(1.27, fmt, Quantization::Rnd, Overflow::Sat);
        assert_eq!(y.to_f64(), 1.28125);
    }

    #[test]
    fn from_f64_saturates() {
        let fmt = Format::signed(8, 3);
        let x = Fixed::from_f64_with(100.0, fmt, Quantization::Rnd, Overflow::Sat);
        assert_eq!(x.to_f64(), fmt.max_value());
        let y = Fixed::from_f64_with(-100.0, fmt, Quantization::Rnd, Overflow::Sat);
        assert_eq!(y.to_f64(), fmt.min_value());
    }

    #[test]
    fn non_finite_maps_to_zero() {
        let fmt = Format::signed(8, 3);
        assert!(Fixed::from_f64(f64::NAN, fmt).is_zero());
        assert!(Fixed::from_f64(f64::INFINITY, fmt).is_zero());
    }

    #[test]
    fn exact_addition_widens() {
        let fmt = Format::signed(8, 3);
        let a = Fixed::from_f64(3.96875, fmt);
        let b = Fixed::from_f64(3.96875, fmt);
        let s = a.exact_add(&b);
        assert_eq!(s.to_f64(), 7.9375);
        assert_eq!(s.format().int_bits(), 4);
        assert_eq!(s.format().width(), 9);
    }

    #[test]
    fn exact_multiplication_widens() {
        let fmt = Format::signed(8, 3);
        let a = Fixed::from_f64(-4.0, fmt);
        let b = Fixed::from_f64(-4.0, fmt);
        let p = a.exact_mul(&b);
        assert_eq!(p.to_f64(), 16.0);
        assert_eq!(p.format().width(), 16);
        assert_eq!(p.format().int_bits(), 6);
    }

    #[test]
    fn mixed_point_addition() {
        let a = Fixed::from_f64(1.5, Format::signed(8, 3)); // 5 frac
        let b = Fixed::from_f64(2.25, Format::signed(6, 4)); // 2 frac
        assert_eq!(a.exact_add(&b).to_f64(), 3.75);
        assert_eq!(b.exact_sub(&a).to_f64(), 0.75);
    }

    #[test]
    fn subtraction_is_signed() {
        let fmt = Format::unsigned(4, 4);
        let a = Fixed::from_f64(2.0, fmt);
        let b = Fixed::from_f64(5.0, fmt);
        let d = a.exact_sub(&b);
        assert!(d.format().is_signed());
        assert_eq!(d.to_f64(), -3.0);
    }

    #[test]
    fn negation() {
        let fmt = Format::signed(4, 4);
        let m = Fixed::from_f64(-8.0, fmt);
        assert_eq!(m.negate().to_f64(), 8.0); // widened, no wrap
        assert_eq!((-m).to_f64(), 8.0);
    }

    #[test]
    fn cast_wraps_by_default() {
        let wide = Format::signed(16, 8);
        let narrow = Format::signed(4, 4);
        let x = Fixed::from_f64(9.0, wide);
        // 9 wraps into 4-bit signed: 9 - 16 = -7.
        assert_eq!(x.cast(narrow).to_f64(), -7.0);
        assert_eq!(
            x.cast_with(narrow, Quantization::Trn, Overflow::Sat)
                .to_f64(),
            7.0
        );
    }

    #[test]
    fn value_equality_across_formats() {
        let a = Fixed::from_f64(1.5, Format::signed(8, 3));
        let b = Fixed::from_f64(1.5, Format::signed(16, 8));
        assert_eq!(a, b);
        assert!(a <= b);
        assert!(b >= a);
        let c = Fixed::from_f64(1.53125, Format::signed(8, 3));
        assert_ne!(a, c);
        assert!(a < c);
    }

    #[test]
    fn ordering_with_negative_values() {
        let fmt = Format::signed(10, 4);
        let vals = [-7.5, -1.0, -0.0625, 0.0, 0.0625, 1.0, 7.9375];
        for w in vals.windows(2) {
            let a = Fixed::from_f64(w[0], fmt);
            let b = Fixed::from_f64(w[1], fmt);
            assert!(a < b, "{} < {}", w[0], w[1]);
        }
    }

    #[test]
    fn ordering_across_scales() {
        // Values with very different LSB scales.
        let big = Fixed::from_f64(1024.0, Format::signed(16, 12));
        let small = Fixed::from_f64(0.001953125, Format::signed(16, 2));
        assert!(small < big);
        assert!(big > small);
        assert_eq!(big.cmp(&big), Ordering::Equal);
    }

    #[test]
    fn bit_access() {
        let fmt = Format::signed(4, 0);
        let mut offset = Fixed::zero(fmt);
        offset = offset.with_bit(0, true); // LSB = 2^-4
        assert_eq!(offset.to_f64(), 0.0625);
        assert!(offset.bit(0));
        assert!(!offset.bit(1));
        let cleared = offset.with_bit(0, false);
        assert!(cleared.is_zero());
    }

    #[test]
    fn bit_access_negative_value() {
        let fmt = Format::signed(4, 4);
        let m1 = Fixed::from_f64(-1.0, fmt); // 0b1111
        assert!(m1.bit(0) && m1.bit(1) && m1.bit(2) && m1.bit(3));
        let cleared = m1.with_bit(3, false); // 0b0111 = 7
        assert_eq!(cleared.to_f64(), 7.0);
    }

    #[test]
    fn shifts() {
        let fmt = Format::signed(12, 2); // like the paper's mu computation
        let one = Fixed::from_f64(1.0, fmt);
        let mu = one.shr(8);
        assert_eq!(mu.to_f64(), 2f64.powi(-8));
        assert_eq!(mu.shl(8).to_f64(), 1.0);
        // Value shift truncates bits that fall off.
        let tiny = Fixed::from_f64(2f64.powi(-10), fmt); // LSB
        assert!(tiny.shr(1).is_zero());
    }

    #[test]
    fn scale_pow2_is_exact() {
        let x = Fixed::from_f64(1.25, Format::signed(8, 3));
        let y = x.scale_pow2(-4);
        assert_eq!(y.to_f64(), 1.25 / 16.0);
        assert_eq!(y.format().width(), 8);
    }

    #[test]
    fn to_i64_floors() {
        let fmt = Format::signed(10, 6);
        assert_eq!(Fixed::from_f64(5.75, fmt).to_i64(), 5);
        assert_eq!(Fixed::from_f64(-5.75, fmt).to_i64(), -6);
        assert_eq!(Fixed::from_f64(-5.0, fmt).to_i64(), -5);
    }

    #[test]
    fn from_raw_validates() {
        let fmt = Format::signed(4, 4);
        assert!(Fixed::from_raw(7, fmt).is_ok());
        assert!(Fixed::from_raw(8, fmt).is_err());
        assert_eq!(Fixed::from_raw_wrapped(8, fmt).to_f64(), -8.0);
    }

    #[test]
    fn signum_and_predicates() {
        let fmt = Format::signed(8, 4);
        assert_eq!(Fixed::from_f64(2.0, fmt).signum(), 1);
        assert_eq!(Fixed::from_f64(-2.0, fmt).signum(), -1);
        assert_eq!(Fixed::zero(fmt).signum(), 0);
        assert!(Fixed::from_f64(-2.0, fmt).is_negative());
    }

    #[test]
    fn abs_widens_safely() {
        let fmt = Format::signed(4, 4);
        let m = Fixed::from_f64(-8.0, fmt);
        assert_eq!(m.abs().to_f64(), 8.0);
        assert_eq!(Fixed::from_f64(3.0, fmt).abs().to_f64(), 3.0);
    }

    #[test]
    fn from_int_conversion() {
        let fmt = Format::signed(10, 6);
        assert_eq!(Fixed::from_int(-17, fmt).to_f64(), -17.0);
        assert_eq!(Fixed::from_int(31, fmt).to_f64(), 31.0);
    }
}
